"""Record a warp execution timeline and export it for Chrome tracing.

Runs one scene's traces through a recorded RT unit and writes a
``chrome://tracing`` / Perfetto-compatible JSON, then prints an ASCII
summary: per-warp lifetimes and the latency-hiding concurrency profile.

Run:  python examples/warp_timeline.py [SCENE] [OUT.json]
"""

import sys

from repro import named_config, trace_scene
from repro.gpu.timeline import record_timeline
from repro.workloads import load_scene


def main() -> int:
    scene_name = sys.argv[1].upper() if len(sys.argv) > 1 else "CRNVL"
    out = sys.argv[2] if len(sys.argv) > 2 else "timeline.json"
    scene = load_scene(scene_name)
    workload = trace_scene(scene, width=16, height=16, max_bounces=2)
    timeline = record_timeline(
        workload.all_traces, named_config("RB_8+SH_8+SK+RA")
    )
    path = timeline.save(out)
    print(f"recorded {len(timeline.events)} warp iterations over "
          f"{timeline.total_cycles} cycles -> {path}")
    print("open chrome://tracing (or ui.perfetto.dev) and load the file\n")

    warp_ids = sorted({e.warp_id for e in timeline.events})
    total = timeline.total_cycles
    print("per-warp lifetime (80-column view):")
    for warp_id in warp_ids[:16]:
        events = timeline.events_for_warp(warp_id)
        row = [" "] * 80
        for event in events:
            lo = int(event.start / total * 79)
            hi = max(lo, int(event.end / total * 79))
            for x in range(lo, hi + 1):
                row[x] = "#"
        print(f"  w{warp_id:03d} |{''.join(row)}|")

    samples = 60
    print("\nwarps in flight over time:")
    profile = [
        timeline.concurrency_at(int(total * i / samples)) for i in range(samples)
    ]
    for level in range(max(profile), 0, -1):
        print("  " + "".join("#" if c >= level else " " for c in profile))
    print("  " + "-" * samples)
    return 0


if __name__ == "__main__":
    sys.exit(main())
