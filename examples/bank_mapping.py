"""Visualize the shared-memory bank mapping and the skewed base entries.

Reproduces the paper's Fig. 9: which banks each lane's SH stack entries
occupy, and where each lane *starts* filling its circular queue with and
without the skewed-access optimization.  Then simulates one warp-wide
access at a common logical position to show the conflict-degree
difference.

Run:  python examples/bank_mapping.py [SH_ENTRIES]
"""

import sys

from repro.gpu.config import GPUConfig
from repro.gpu.counters import Counters
from repro.gpu.sharedmem import SharedMemorySim
from repro.stack.layout import SharedStackLayout
from repro.stack.ops import MemoryOp, MemSpace, OpKind
from repro.stack.skew import base_entry_index, skew_group_size


def main() -> int:
    entries = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    layout = SharedStackLayout(entries=entries)
    print(f"SH stack: {entries} entries x 8 B per lane "
          f"({layout.lanes_per_row} lanes per 128 B bank row)\n")

    print("lane -> banks of each entry (first 8 lanes):")
    for lane in range(8):
        banks = [layout.banks_of_entry(lane, e)[0] for e in range(entries)]
        print(f"  t{lane:02d}: banks {banks}")

    k = skew_group_size(entries)
    print(f"\nskew formula: base = (TID / k) mod N with k = {k}, N = {entries}")
    print("lane -> base entry (skewed):")
    row = ", ".join(
        f"t{lane}={base_entry_index(lane, entries)}" for lane in range(0, 32, 2)
    )
    print(f"  even lanes: {row}")

    sim = SharedMemorySim(GPUConfig())

    def first_access(skewed):
        ops = []
        for lane in range(32):
            entry = base_entry_index(lane, entries, skewed=skewed)
            ops.append(
                MemoryOp(MemSpace.SHARED, OpKind.STORE,
                         layout.entry_address(lane, entry))
            )
        return ops

    plain = sim.conflict_degree(first_access(skewed=False))
    skewed = sim.conflict_degree(first_access(skewed=True))
    counters = Counters()
    plain_cost = sim.transaction_cycles(first_access(skewed=False), counters)
    skew_cost = sim.transaction_cycles(first_access(skewed=True), counters)
    print(f"\nwarp-wide first store, all lanes at their base entry:")
    print(f"  without skew: conflict degree {plain:2d} -> {plain_cost} cycles")
    print(f"  with skew:    conflict degree {skewed:2d} -> {skew_cost} cycles")
    return 0


if __name__ == "__main__":
    sys.exit(main())
