"""Render a benchmark scene to a PPM image with the functional tracer.

The reproduction's tracer is a real path tracer; this example uses the
hit results (not just the stack events) to shade a small image — direct
lighting with shadow rays — and writes it as a binary PPM next to the
script.  Handy for eyeballing that the stand-in scenes have sensible
geometry.

Run:  python examples/render_image.py [SCENE] [SIZE]
"""

import sys

import numpy as np

from repro.bvh import build_bvh
from repro.geometry.ray import Ray
from repro.geometry.vec import normalize
from repro.scene.camera import PinholeCamera
from repro.trace.path import _default_camera
from repro.trace.tracer import Tracer
from repro.workloads import load_scene


def render(scene_name: str, size: int) -> str:
    scene = load_scene(scene_name)
    bvh = build_bvh(scene)
    tracer = Tracer(bvh)
    camera = _default_camera(bvh, size, size)

    image = np.zeros((size, size, 3))
    light = scene.light_position
    for pixel, ray in camera.rays():
        px, py = pixel % size, pixel // size
        result = tracer.trace(ray)
        if not result.hit:
            image[py, px] = (0.10, 0.12, 0.18)  # background
            continue
        hit_point = ray.at(result.hit_t)
        normal = scene.triangle(result.hit_prim).normal()
        if float(np.dot(normal, ray.direction)) > 0.0:
            normal = -normal
        to_light = light - hit_point
        distance = float(np.linalg.norm(to_light))
        shadow = Ray(
            origin=hit_point + normal * 1e-4,
            direction=normalize(to_light),
            t_max=distance,
        )
        lit = not tracer.trace(shadow, any_hit=True).hit
        diffuse = max(0.0, float(np.dot(normal, normalize(to_light))))
        brightness = 0.15 + (0.85 * diffuse if lit else 0.0)
        image[py, px] = brightness * np.array([0.9, 0.85, 0.75])

    path = f"render_{scene_name.lower()}.ppm"
    data = (np.clip(image, 0, 1) * 255).astype(np.uint8)
    with open(path, "wb") as handle:
        handle.write(f"P6 {size} {size} 255\n".encode())
        handle.write(data.tobytes())
    return path


def main() -> int:
    scene_name = sys.argv[1].upper() if len(sys.argv) > 1 else "SPNZA"
    size = int(sys.argv[2]) if len(sys.argv) > 2 else 64
    path = render(scene_name, size)
    print(f"wrote {path} ({size}x{size})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
