"""Design-space sweep: RB size x SH size over a chosen scene.

Explores the two-level stack sizing space the paper carves its design
from: for each (RB entries, SH entries) pair, reports normalized IPC and
off-chip accesses.  Useful for seeing where the paper's RB_8+SH_8 choice
sits on the cost/performance frontier, and how the trade-off moves on
scenes with different depth profiles.

Run:  python examples/design_space_sweep.py [SCENE]
"""

import sys

from repro import sms_config, baseline_config, time_traces, trace_scene
from repro.workloads import load_scene

RB_SIZES = (2, 4, 8, 16)
SH_SIZES = (0, 4, 8, 16)


def main() -> int:
    scene_name = sys.argv[1].upper() if len(sys.argv) > 1 else "PARTY"
    scene = load_scene(scene_name)
    workload = trace_scene(scene, width=24, height=24, max_bounces=3)
    traces = workload.all_traces
    print(f"scene {scene.name}: {workload.ray_count} rays\n")

    baseline = time_traces(traces, baseline_config(8), scene_name=scene.name)

    corner = "RB / SH"
    header = f"{corner:>8} " + " ".join(f"{sh:>14}" for sh in SH_SIZES)
    print(header)
    print("-" * len(header))
    for rb in RB_SIZES:
        cells = []
        for sh in SH_SIZES:
            if sh == 0:
                config = baseline_config(rb)
            else:
                config = sms_config(rb_entries=rb, sh_entries=sh)
            result = time_traces(traces, config, scene_name=scene.name)
            rel_ipc = result.ipc / baseline.ipc
            rel_off = result.offchip_accesses / baseline.offchip_accesses
            cells.append(f"{rel_ipc:5.3f}/{rel_off:4.2f}x")
        print(f"{rb:>8} " + " ".join(f"{c:>14}" for c in cells))

    print(
        "\ncells are (normalized IPC / normalized off-chip accesses), "
        "both vs the RB_8 baseline; SH column 0 = no shared-memory stack."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
