"""Run a cached, multi-process measurement campaign twice.

Demonstrates the runtime subsystem end to end: the first run fans the
(scene x config) sweep out over worker processes and persists every
result in the content-addressed store; the second run does zero
simulations — every cell is served from the store — and is near-instant.
The executor metrics printed after each run show exactly what happened.

Because the simulation is deterministic, cached and parallel results are
bit-identical to a serial run.

Run:  python examples/parallel_campaign.py [JOBS] [CACHE_DIR]
      (JOBS defaults to one worker per CPU; CACHE_DIR defaults to
      ~/.cache/repro-sms or $REPRO_CACHE_DIR)
"""

import sys

from repro.analysis import Campaign
from repro.workloads import WorkloadParams


def main() -> int:
    jobs = int(sys.argv[1]) if len(sys.argv) > 1 else None
    cache_dir = sys.argv[2] if len(sys.argv) > 2 else None

    campaign = Campaign(
        configs=("RB_8", "RB_8+SH_8+SK+RA", "RB_FULL"),
        scenes=("SHIP", "CRNVL", "SPNZA"),
        params=WorkloadParams().scaled(0.5),
        jobs=jobs,
        cache_dir=cache_dir,
        progress=True,
    )

    print("first run (simulates, fills the store) ...")
    first = campaign.run()
    print(first.to_markdown())
    print(f"metrics: {first.metrics.summary()}")

    print("\nsecond run (served from the store) ...")
    second = campaign.run()
    print(f"metrics: {second.metrics.summary()}")
    hits = second.metrics.cache_hits
    total = second.metrics.jobs_total
    print(f"cache served {hits}/{total} jobs "
          f"({second.metrics.cache_hit_rate:.0%}); results identical: "
          f"{[r.counters for r in first.results] == [r.counters for r in second.results]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
