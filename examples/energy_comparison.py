"""Energy comparison: what the traversal stack costs in joules.

The paper motivates SMS partly on power grounds — on-chip storage and
off-chip traffic are the expensive pieces.  This example applies the
per-event energy model to one scene under the baseline, SMS and full
stacks, printing a full energy breakdown for each.

Run:  python examples/energy_comparison.py [SCENE]
"""

import sys

from repro import named_config, time_traces, trace_scene
from repro.gpu.energy import EnergyModel, compare_energy, estimate_energy
from repro.workloads import load_scene


def main() -> int:
    scene_name = sys.argv[1].upper() if len(sys.argv) > 1 else "PARTY"
    scene = load_scene(scene_name)
    workload = trace_scene(scene, width=24, height=24, max_bounces=3)
    print(f"scene {scene.name}: {workload.ray_count} rays\n")

    model = EnergyModel()
    reports = {}
    for name in ("RB_8", "RB_8+SH_8+SK+RA", "RB_FULL"):
        result = time_traces(
            workload.all_traces, named_config(name), scene_name=scene.name
        )
        reports[name] = estimate_energy(result.counters, model)
        print(f"--- {name} ---")
        print(reports[name].summary())
        stack_share = reports[name].stack_nj / reports[name].total_nj
        print(f"  traversal-stack share: {stack_share:.1%}\n")

    ratios = compare_energy(reports, baseline="RB_8")
    print("total energy, normalized to RB_8:")
    for name, ratio in ratios.items():
        print(f"  {name:<18} {ratio:.3f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
