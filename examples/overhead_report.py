"""Print the SMS hardware overhead analysis (paper section VI-C).

Shows the bit-level cost of the SMS bookkeeping fields and contrasts it
with the storage cost of simply enlarging the ray-buffer stack — the
272 B vs 8 KB comparison that closes the paper's implementation section.

Run:  python examples/overhead_report.py
"""

from repro.core.overhead import field_bit_table, sms_hardware_overhead
from repro.core.presets import sms_config


def main() -> int:
    print("SMS ray-buffer field widths (per thread):")
    for name, bits in field_bit_table().items():
        print(f"  {name:<10} {bits} bit{'s' if bits > 1 else ''}")

    print()
    report = sms_hardware_overhead()
    print(report.summary())

    ratio = report.rb_double_bytes / report.sms_field_bytes
    print(
        f"\nDoubling the RB stack would cost {ratio:.0f}x more on-chip "
        f"storage than the SMS fields — and the shared-memory capacity "
        f"SMS uses is carved from the existing unified SRAM, not added."
    )

    print("\nScaling with SH stack size:")
    for sh in (4, 8, 16):
        r = sms_hardware_overhead(sms_config(sh_entries=sh))
        print(
            f"  SH_{sh:<3} fields {r.sms_field_bytes:4d} B/SM, "
            f"shared carve-out {r.shared_memory_bytes // 1024} KB"
        )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
