"""Stack depth study: regenerate the paper's motivation (Figs. 4 and 5).

Traces every benchmark scene and reports per-scene max/avg/median stack
depths plus the aggregate depth distribution — the data that motivates a
two-level stack: an 8-entry primary covers most steps, but 9-16-entry
episodes are frequent enough to matter and the tail reaches ~30.

Run:  python examples/stack_depth_study.py [--quick]
"""

import sys

from repro.experiments import WorkloadCache
from repro.experiments import fig4_stack_depths, fig5_depth_distribution
from repro.workloads import DEFAULT_PARAMS


def main() -> int:
    quick = "--quick" in sys.argv
    params = DEFAULT_PARAMS.scaled(0.5) if quick else DEFAULT_PARAMS
    cache = WorkloadCache(params=params)

    print(fig4_stack_depths.render(fig4_stack_depths.run(cache)))
    print()
    result = fig5_depth_distribution.run(cache)
    print(fig5_depth_distribution.render(result))

    low, mid, high = result.fractions
    print(
        f"\nInterpretation: an 8-entry primary stack covers {low:.0%} of "
        f"traversal steps; an 8-entry shared-memory secondary stack covers "
        f"another {mid:.0%}; only {high:.1%} of steps would still spill to "
        f"global memory — the basis for the paper's RB_8+SH_8 design."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
