"""Walk through the paper's Fig. 3: a BVH6 traversal with a 4-entry stack.

Replays the figure's exact scenario on the real stack models, printing
every push, pop, spill and reload — first on the baseline short stack
(off-chip spills), then on the SMS two-level stack (shared-memory
spills), so the memory-transaction difference in Fig. 7 is visible
operation by operation.

Run:  python examples/short_stack_walkthrough.py
"""

from repro.stack import BaselineStack, SmsStack
from repro.stack.ops import MemSpace, OpKind


def describe(activity) -> str:
    if not activity.ops:
        return "(on-chip only)"
    parts = []
    for op in activity.ops:
        space = "shared" if op.space is MemSpace.SHARED else "GLOBAL"
        kind = "load" if op.kind is OpKind.LOAD else "store"
        parts.append(f"{space} {kind} @{op.address:#06x}")
    return ", ".join(parts)


def walkthrough(stack, title):
    print(f"--- {title} ---")
    # Fig. 3 step 1: the root's hit children A..C are pushed while the
    # nearest is visited; two more levels push D then E.
    labels = {}
    for step, name in enumerate(["A", "B", "C", "D"]):
        value = 0x1000 + 0x40 * step
        labels[value] = name
        activity = stack.push(0, value)
        print(f"push {name}: {describe(activity)}")
    value_e = 0x1000 + 0x40 * 4
    labels[value_e] = "E"
    activity = stack.push(0, value_e)  # stack full: A must spill (step 2-3)
    print(f"push E: {describe(activity)}   <- overflow, oldest entry spills")
    popped, activity = stack.pop(0)  # step 4-5: pop E, reload A
    print(f"pop  {labels[popped]}: {describe(activity)}   <- reload of the spilled entry")
    while stack.depth(0):
        popped, activity = stack.pop(0)
        print(f"pop  {labels[popped]}: {describe(activity)}")
    print()


def main() -> int:
    print("Paper Fig. 3: BVH6 traversal, 4-entry short stack, 5 live entries\n")
    walkthrough(BaselineStack(rb_entries=4), "baseline: spills go off-chip")
    walkthrough(
        SmsStack(rb_entries=4, sh_entries=4),
        "SMS: spills stay on-chip in shared memory",
    )
    print("Note how SMS turned every GLOBAL transaction into a shared one —")
    print("that substitution is the entire architecture (paper Fig. 7).")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
