"""Quickstart: simulate one scene under the baseline and SMS designs.

Builds a benchmark scene, path-traces it once, and replays the traces
through three stack architectures — the 8-entry baseline, the paper's
proposed SMS design, and the impractical full on-chip stack — printing
the speedups and traffic breakdown the paper's abstract summarizes.

Run:  python examples/quickstart.py [SCENE]
"""

import sys

from repro import named_config, time_traces, trace_scene
from repro.workloads import load_scene


def main() -> int:
    scene_name = sys.argv[1].upper() if len(sys.argv) > 1 else "CRNVL"
    scene = load_scene(scene_name)
    print(f"scene {scene.name}: {scene.triangle_count} triangles")

    # Phase 1 (expensive, configuration-independent): path-trace the frame.
    workload = trace_scene(scene, width=24, height=24, max_bounces=3)
    print(f"traced {workload.ray_count} rays, {workload.total_steps} node visits\n")

    # Phase 2: replay the same traces under each stack architecture.
    baseline = time_traces(workload.all_traces, named_config("RB_8"),
                           scene_name=scene.name)
    sms = time_traces(workload.all_traces, named_config("RB_8+SH_8+SK+RA"),
                      scene_name=scene.name)
    full = time_traces(workload.all_traces, named_config("RB_FULL"),
                       scene_name=scene.name)

    print(f"{'config':<18} {'IPC':>8} {'speedup':>8} {'off-chip':>9} "
          f"{'stack->global':>14} {'stack->shared':>14}")
    for result in (baseline, sms, full):
        counters = result.counters
        print(
            f"{result.label:<18} {result.ipc:8.3f} "
            f"{result.speedup_over(baseline):8.3f} "
            f"{result.offchip_accesses:9d} "
            f"{counters.stack_global_ops:14d} "
            f"{counters.stack_shared_ops:14d}"
        )

    gain = (sms.speedup_over(baseline) - 1.0) * 100
    bound = (full.speedup_over(baseline) - 1.0) * 100
    print(f"\nSMS gains {gain:+.1f}% over the baseline "
          f"(full-stack upper bound: {bound:+.1f}%).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
