"""Run a custom measurement campaign and export the results.

Shows the library's study-your-own-question entry point: pick scenes and
configurations, run the sweep once, and get CSV/JSON artifacts plus a
normalized-IPC markdown table — the workflow for anything the paper's
figure set doesn't already cover.

Run:  python examples/campaign_export.py [OUTPUT_DIR]
"""

import sys
from pathlib import Path

from repro.analysis import Campaign
from repro.workloads import WorkloadParams


def main() -> int:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    campaign = Campaign(
        configs=("RB_8", "RB_4", "RB_4+SH_8+SK+RA", "RB_8+SH_8+SK+RA", "RB_FULL"),
        scenes=("SHIP", "CRNVL", "PARTY"),
        params=WorkloadParams().scaled(0.75),
    )
    print("running", len(campaign.configs), "configs x", len(campaign.scenes),
          "scenes ...")
    result = campaign.run()

    csv_path = result.to_csv(out_dir / "campaign.csv")
    json_path = result.to_json(out_dir / "campaign.json")
    print(f"wrote {csv_path} and {json_path}\n")

    print("normalized IPC (vs RB_8):")
    print(result.to_markdown())
    print()
    for label, mean in result.normalized_means().items():
        print(f"  {label:<18} geomean {mean:.3f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
