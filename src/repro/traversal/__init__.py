"""Pluggable traversal strategies (see docs/architecture.md section 11).

A strategy owns both simulator phases of one traversal architecture:
how rays walk the BVH (phase one, trace generation) and what per-lane
state the RT unit keeps while replaying them (phase two, timing).
Built-ins:

========== ==========================================================
``sms``     config-driven stack traversal (RB / RB+SH / full / interwarp
            as the configuration selects) — the default, bit-identical
            to the pre-strategy simulator
``baseline`` RB-only: SMS knobs forced off, overflows spill to global
``interwarp`` SMS with inter-warp SH reallocation forced on
``stackless`` escape-link traversal: no stack, no spills, restart-free
``reorder``  locality-sorted warp formation over the configured stack
========== ==========================================================
"""

from repro.traversal.base import TraversalStrategy
from repro.traversal.registry import (
    available_strategies,
    register_strategy,
    resolve_strategy,
)
from repro.traversal.reorder import ReorderStrategy
from repro.traversal.stack_based import (
    BaselineStrategy,
    InterWarpStrategy,
    StackStrategy,
)
from repro.traversal.stackless import EscapeTracer, StacklessState, StacklessStrategy

__all__ = [
    "TraversalStrategy",
    "StackStrategy",
    "BaselineStrategy",
    "InterWarpStrategy",
    "StacklessStrategy",
    "StacklessState",
    "EscapeTracer",
    "ReorderStrategy",
    "available_strategies",
    "register_strategy",
    "resolve_strategy",
]
