"""Stack-based traversal strategies (the paper's architectures).

These wrap the existing stack models behind the strategy interface; the
default :class:`StackStrategy` reproduces the old RTUnit constructor's
stack wiring exactly, so ``strategy="sms"`` is bit-identical to the
pre-strategy simulator (asserted by ``tests/traversal/test_bit_identity``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.errors import ConfigError
from repro.stack.factory import make_stack_model
from repro.traversal.base import TraversalStrategy

if TYPE_CHECKING:
    from repro.gpu.config import GPUConfig
    from repro.stack.base import StackModel


class StackStrategy(TraversalStrategy):
    """Config-driven stack traversal — the default path.

    Builds exactly the stack models the RT unit used to construct for
    itself: one per-slot model from :mod:`repro.stack.factory`, or slot
    views over one shared inter-warp model when the configuration enables
    inter-warp reallocation.  Which of RB/SH/full/interwarp runs is still
    the configuration's choice, so one strategy name covers the whole
    paper ladder (``RB_8`` through ``RB_8+SH_8+SK+RA``).
    """

    name = "sms"

    def make_unit_stacks(
        self, config: "GPUConfig", sm_id: int = 0
    ) -> List["StackModel"]:
        if config.inter_warp_realloc and config.rb_stack_entries is not None:
            # One shared stack model spans every warp slot of the unit so
            # lanes can borrow SH regions across warps (the design the
            # paper rejects; see repro.stack.interwarp).
            from repro.stack.interwarp import InterWarpSmsStack, SlotView

            shared = InterWarpSmsStack(
                rb_entries=config.rb_stack_entries,
                sh_entries=config.sh_stack_entries,
                slots=config.max_warps_per_rt_unit,
                lanes_per_warp=config.warp_size,
                skewed=config.skewed_bank_access,
                max_borrows=config.max_borrows,
                max_flushes=config.max_flushes,
                unit_index=sm_id,
            )
            return [
                SlotView(shared, slot)
                for slot in range(config.max_warps_per_rt_unit)
            ]
        return [
            make_stack_model(
                config,
                warp_index=sm_id * config.max_warps_per_rt_unit + slot,
            )
            for slot in range(config.max_warps_per_rt_unit)
        ]


class BaselineStrategy(StackStrategy):
    """RB-only traversal: force the SMS machinery off.

    Same recorded traces and stack replay as :class:`StackStrategy`, but
    the configuration is adapted to the paper's baseline (no SH stacks,
    every overflow spills to global memory) regardless of what SMS knobs
    the incoming config carries — the head-to-head engine can therefore
    run ``baseline`` vs ``sms`` from one base configuration.
    """

    name = "baseline"

    def adapt_config(self, config: "GPUConfig") -> "GPUConfig":
        if config.rb_stack_entries is None:
            raise ConfigError(
                "baseline strategy needs a bounded RB stack "
                "(rb_stack_entries is None)"
            )
        return config.with_(
            sh_stack_entries=0,
            skewed_bank_access=False,
            intra_warp_realloc=False,
            inter_warp_realloc=False,
        )


class InterWarpStrategy(StackStrategy):
    """SMS with inter-warp SH reallocation forced on (paper section V-D)."""

    name = "interwarp"

    def adapt_config(self, config: "GPUConfig") -> "GPUConfig":
        if config.rb_stack_entries is None or config.sh_stack_entries <= 0:
            raise ConfigError(
                "interwarp strategy needs RB and SH stacks configured "
                "(rb_stack_entries set, sh_stack_entries > 0)"
            )
        return config.with_(inter_warp_realloc=True)
