"""Strategy registry: names -> traversal-strategy factories.

The registry maps the stable names used in job specs, the CLI and the
comparison engine onto constructor callables.  Built-ins register at
import; extensions call :func:`register_strategy` (last registration of
a name wins, mirroring the experiment-driver convention).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Union

from repro.errors import ConfigError
from repro.traversal.base import TraversalStrategy

_REGISTRY: Dict[str, Callable[[], TraversalStrategy]] = {}


def register_strategy(
    name: str, factory: Callable[[], TraversalStrategy]
) -> None:
    """Register (or replace) a strategy factory under ``name``."""
    if not name:
        raise ConfigError("strategy name must be non-empty")
    _REGISTRY[name.lower()] = factory


def available_strategies() -> List[str]:
    """Registered strategy names, sorted."""
    return sorted(_REGISTRY)


def resolve_strategy(
    spec: Union[str, TraversalStrategy, None],
) -> TraversalStrategy:
    """Resolve a name (or pass through an instance) to a strategy.

    ``None`` resolves to the default ``"sms"`` stack strategy.
    """
    if isinstance(spec, TraversalStrategy):
        return spec
    key = ("sms" if spec is None else str(spec)).lower().strip()
    factory = _REGISTRY.get(key)
    if factory is None:
        raise ConfigError(
            f"unknown traversal strategy {spec!r}; "
            f"available: {', '.join(available_strategies())}"
        )
    return factory()


def _register_builtins() -> None:
    from repro.traversal.reorder import ReorderStrategy
    from repro.traversal.stack_based import (
        BaselineStrategy,
        InterWarpStrategy,
        StackStrategy,
    )
    from repro.traversal.stackless import StacklessStrategy

    register_strategy("sms", StackStrategy)
    register_strategy("baseline", BaselineStrategy)
    register_strategy("interwarp", InterWarpStrategy)
    register_strategy("stackless", StacklessStrategy)
    register_strategy("reorder", ReorderStrategy)


_register_builtins()
