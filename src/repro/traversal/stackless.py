"""Stackless escape-link traversal (Prokopenko & Lebrun-Grandie, 2402.00665).

The backend has two halves matching the two simulator phases:

* :class:`EscapeTracer` — phase one: traces rays by following the
  precomputed skip pointers of :class:`~repro.bvh.escape.EscapeIndex`.
  One box test per visit (the node's own bounds); hit + internal enters
  ``first_child``, hit + leaf runs the primitive tests, miss (or a
  finished leaf) takes ``escape``.  The walk is the exhaustive
  depth-first order in static slot order, so closest hits match the
  reference tracer while the event stream carries **no pushes and no
  pops** — there is no stack to spill.
* :class:`StacklessState` — phase two: the lane-state model the RT unit
  replays those streams against.  It holds nothing; any stack operation
  reaching it is a structural bug (a stack-ful trace was timed under the
  stackless strategy) and raises.

Trade-off faithfully modelled: the restart-free walk visits every node
whose *own* bounds the ray hits (no nearest-first ordering, no early
subtree culling beyond the shrinking ``t``), so node fetches and box
tests go up while stack traffic drops to zero and the SH carve-out
returns to the L1D (:meth:`StacklessStrategy.adapt_config`).  Leaf
visits record their primitive-test count; the leaf's own box test is
folded into the fetch that reached it, mirroring how the reference
tracer attributes child-box tests to the parent visit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence

import numpy as np

from repro.errors import StackError
from repro.geometry.intersect import moeller_trumbore, slab_test
from repro.stack.base import StackModel
from repro.stack.ops import StackActivity
from repro.trace.events import NodeKind, RayKind, RayTrace, Step
from repro.trace.tracer import TraceResult
from repro.traversal.base import TraversalStrategy

if TYPE_CHECKING:
    from repro.bvh.wide import WideBVH
    from repro.geometry.ray import Ray
    from repro.gpu.config import GPUConfig

from repro.bvh.escape import NO_NODE


class StacklessState(StackModel):
    """Lane state of a stackless warp slot: empty by construction.

    ``has_stack = False`` is the guard layer's cue to degrade to
    structural-only checks (see
    :class:`~repro.guard.invariants.GuardedStack`).
    """

    #: No per-lane traversal stack exists under this strategy.
    has_stack = False

    #: Stackless traces carry no pushes/pops, so the canonical vector
    #: replay never touches this model — trivially slot-invariant.
    vector_replayable = True

    def push(self, lane: int, value: int) -> StackActivity:
        self._check_lane(lane)
        raise StackError(
            f"stackless traversal issued a stack push ({value:#x}) — the "
            f"replayed trace was recorded by a stack-based strategy"
        )

    def pop(self, lane: int):
        self._check_lane(lane)
        raise StackError(
            "stackless traversal issued a stack pop — the replayed trace "
            "was recorded by a stack-based strategy"
        )

    def depth(self, lane: int) -> int:
        self._check_lane(lane)
        return 0

    def contents(self, lane: int) -> List[int]:
        self._check_lane(lane)
        return []


class EscapeTracer:
    """Traces rays through one wide BVH via its escape-link index.

    Same construction and tracing surface as
    :class:`~repro.trace.tracer.Tracer`, so
    :func:`~repro.trace.path.generate_workload` swaps it in through its
    ``tracer_factory`` hook.
    """

    def __init__(self, bvh: "WideBVH") -> None:
        self.bvh = bvh
        self.scene = bvh.scene
        self.soa = bvh.soa()
        self.links = bvh.escape()

    def trace(
        self,
        ray: "Ray",
        ray_id: int = 0,
        pixel: int = 0,
        kind: RayKind = RayKind.PRIMARY,
        any_hit: bool = False,
    ) -> TraceResult:
        """Trace one ray to its closest hit (or first hit when ``any_hit``)."""
        soa = self.soa
        node_address = soa.node_address
        node_size = soa.node_size_bytes
        node_is_leaf = soa.node_is_leaf
        prim_offset = soa.prim_offset
        prim_count = soa.prim_count
        prim_ids = soa.prim_ids
        tri_a = soa.tri_a
        tri_e1 = soa.tri_e1
        tri_e2 = soa.tri_e2
        tri_e1_f = soa.tri_e1_f
        tri_e2_f = soa.tri_e2_f
        links = self.links
        first_child = links.first_child
        escape = links.escape
        node_lo = links.node_lo
        node_hi = links.node_hi

        origin = ray.origin
        direction = ray.direction
        inv = ray.inv_direction
        d0 = float(direction[0])
        d1 = float(direction[1])
        d2 = float(direction[2])
        t_min = ray.t_min
        best_t = ray.t_max
        best_prim = -1

        trace = RayTrace(ray_id=ray_id, pixel=pixel, kind=kind)
        steps = trace.steps
        current = self.bvh.root
        with np.errstate(invalid="ignore"):
            while current != NO_NODE:
                hit_mask, _ = slab_test(
                    origin, inv, t_min, best_t,
                    node_lo[current : current + 1],
                    node_hi[current : current + 1],
                )
                box_hit = bool(hit_mask[0])
                leaf = node_is_leaf[current]
                if box_hit and leaf:
                    node_kind = NodeKind.LEAF
                    p0 = prim_offset[current]
                    tests = prim_count[current]
                    for prim_id in prim_ids[p0 : p0 + tests]:
                        t = moeller_trumbore(
                            origin, d0, d1, d2, direction, t_min, best_t,
                            tri_a[prim_id], tri_e1[prim_id], tri_e2[prim_id],
                            tri_e1_f[prim_id], tri_e2_f[prim_id],
                        )
                        if t is not None and t < best_t:
                            best_t = t
                            best_prim = prim_id
                            if any_hit:
                                break
                    next_node = escape[current]
                    if any_hit and best_prim >= 0:
                        next_node = NO_NODE  # shadow ray satisfied
                else:
                    # Internal visit or box miss: one box test either way.
                    node_kind = NodeKind.INTERNAL if not leaf else NodeKind.LEAF
                    tests = 1 if not leaf else 0
                    next_node = (
                        first_child[current] if box_hit else escape[current]
                    )
                steps.append(
                    Step(
                        node_address[current], node_size[current],
                        node_kind, tests, [], False,
                    )
                )
                current = next_node

        trace.hit_prim = best_prim
        trace.hit_t = best_t if best_prim >= 0 else float("inf")
        return TraceResult(trace=trace, hit_prim=best_prim, hit_t=trace.hit_t)

    def trace_wave(
        self,
        rays: Sequence["Ray"],
        ray_ids: Sequence[int],
        pixels: Sequence[int],
        kind: RayKind = RayKind.PRIMARY,
        any_hit: bool = False,
    ) -> List[TraceResult]:
        """Trace a wavefront; link-following has no cross-ray batching."""
        return [
            self.trace(ray, ray_ids[i], pixels[i], kind=kind, any_hit=any_hit)
            for i, ray in enumerate(rays)
        ]


class StacklessStrategy(TraversalStrategy):
    """Escape-link traversal: zero stack occupancy, zero spill traffic."""

    name = "stackless"
    uses_stack = False

    def adapt_config(self, config: "GPUConfig") -> "GPUConfig":
        # No SH stacks exist, so the shared-memory carve-out returns to
        # the L1D and every SMS knob is moot.
        if not (
            config.sh_stack_entries
            or config.skewed_bank_access
            or config.intra_warp_realloc
            or config.inter_warp_realloc
        ):
            return config
        return config.with_(
            sh_stack_entries=0,
            skewed_bank_access=False,
            intra_warp_realloc=False,
            inter_warp_realloc=False,
        )

    def trace_key(self) -> str:
        return "stackless"

    def build_workload(self, bvh, **kwargs):
        from repro.trace.path import generate_workload

        return generate_workload(bvh, tracer_factory=EscapeTracer, **kwargs)

    def make_unit_stacks(
        self, config: "GPUConfig", sm_id: int = 0
    ) -> List[StackModel]:
        return [
            StacklessState(warp_size=config.warp_size)
            for _ in range(config.max_warps_per_rt_unit)
        ]
