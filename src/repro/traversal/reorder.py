"""Ray-reordering traversal strategy (scheduling-side coherence recovery).

Where SMS attacks stack spills by adding storage, reordering attacks the
*cause* — divergent rays packed into one warp — by regrouping each wave
by predicted traversal locality before warps are formed (Meister et al.,
arXiv 2506.11273 survey this hardware direction).  The per-ray event
streams are exactly the recorded reference streams; only the warp
packing changes, so the timing model sees more coherent node fetches and
better-aligned stack behaviour without any new stack hardware.

The reorder happens within each wave (a wave is what the scheduler sees
at once); ``window`` bounds how far a ray may move, modelling a finite
reorder buffer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConfigError
from repro.trace.ordering import reorder_wave_by_locality
from repro.traversal.stack_based import StackStrategy

if TYPE_CHECKING:
    from repro.bvh.wide import WideBVH
    from repro.trace.path import PathTracerWorkload


class ReorderStrategy(StackStrategy):
    """Locality-sorted warp formation over the configured stack model."""

    name = "reorder"

    def __init__(self, key_depth: int = 8, window: int = 0) -> None:
        if key_depth < 1:
            raise ConfigError("reorder key_depth must be >= 1")
        if window < 0:
            raise ConfigError("reorder window must be >= 0")
        #: Traversal-prefix length of the locality key.
        self.key_depth = key_depth
        #: Reorder-buffer size in rays (0 = whole-wave ideal sort).
        self.window = window

    def trace_key(self) -> str:
        # The permutation is part of the phase-one output, so the
        # tunables must discriminate memo and job-cache entries.
        return f"reorder/k{self.key_depth}/w{self.window}"

    def build_workload(self, bvh: "WideBVH", **kwargs) -> "PathTracerWorkload":
        workload = super().build_workload(bvh, **kwargs)
        workload.waves = [
            reorder_wave_by_locality(
                wave, key_depth=self.key_depth, window=self.window
            )
            for wave in workload.waves
        ]
        return workload
