"""The traversal-strategy interface.

A :class:`TraversalStrategy` is one traversal *architecture*: how rays
walk the BVH (what phase one records) and what per-lane state the RT
unit's stack manager keeps while replaying them (what phase two prices).
The interface is the seam extracted from the old ``RTUnit`` /
``stack.factory`` boundary, widened to cover both phases:

* :meth:`build_workload` — phase one: produce the ray-trace streams.
  Stack-based strategies record the reference tracer's event streams
  verbatim; the stackless backend re-traces with escape links (no
  pushes/pops to record); the reordering backend permutes each wave
  before warps are formed.
* :meth:`make_unit_stacks` — phase two: the per-warp-slot
  :class:`~repro.stack.base.StackModel` list one RT unit replays those
  streams against.  This is where the old RTUnit constructor's
  stack/inter-warp branching now lives.
* :meth:`adapt_config` — strategy-implied configuration changes (e.g.
  stackless frees the SH carve-out back to the L1D).
* :meth:`trace_key` — discriminates phase-one outputs in the per-process
  trace memo and the content-addressed job key.  Strategies producing
  identical traces may share a key; strategies with tunables must fold
  them in.

``uses_stack`` is the guard layer's contract: strategies that keep no
traversal stack degrade :class:`~repro.guard.invariants.GuardedStack`
to structural-only checks instead of tripping conservation laws.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, List

if TYPE_CHECKING:
    from repro.bvh.wide import WideBVH
    from repro.gpu.config import GPUConfig
    from repro.scene.camera import PinholeCamera
    from repro.stack.base import StackModel
    from repro.trace.path import PathTracerWorkload


class TraversalStrategy(ABC):
    """One traversal architecture, pluggable into both simulator phases."""

    #: Registry key (see :mod:`repro.traversal.registry`).
    name: str = ""
    #: False when the strategy keeps no per-lane traversal stack; the
    #: guard layer then runs structural-only checks (no conservation
    #: laws, zero-traffic assertions instead).
    uses_stack: bool = True

    def adapt_config(self, config: "GPUConfig") -> "GPUConfig":
        """The configuration this strategy actually runs under.

        Default: identity.  Must be a pure function of ``config`` so job
        keys stay content-addressed.
        """
        return config

    def trace_key(self) -> str:
        """Phase-one discriminator for trace memo / job cache keys.

        Strategies whose :meth:`build_workload` emits identical streams
        may share a key; anything that changes the streams (different
        tracer, reorder tunables) must change it.
        """
        return "recorded"

    def build_workload(
        self,
        bvh: "WideBVH",
        width: int = 16,
        height: int = 16,
        spp: int = 1,
        max_bounces: int = 2,
        seed: int = 0,
        camera: "PinholeCamera" = None,
    ) -> "PathTracerWorkload":
        """Phase one: path-trace the frame this strategy will time.

        Default: the recorded reference workload, unchanged.
        """
        from repro.trace.path import generate_workload

        return generate_workload(
            bvh, width=width, height=height, spp=spp,
            max_bounces=max_bounces, seed=seed, camera=camera,
        )

    @abstractmethod
    def make_unit_stacks(
        self, config: "GPUConfig", sm_id: int = 0
    ) -> List["StackModel"]:
        """Phase two: one lane-state model per warp slot of one RT unit.

        ``config`` is the already-adapted configuration; the list length
        must equal ``config.max_warps_per_rt_unit``.
        """

    def describe(self) -> str:
        """Short human-readable label."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"{type(self).__name__}(name={self.name!r})"
