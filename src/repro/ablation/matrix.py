"""Deterministic run-matrix generation from a knob space.

The matrix is the Cartesian product of the space's ranges laid over its
fixed knobs.  Iteration order is canonical — range names sorted, values
in declared order — so the matrix (and every run ID in it) is identical
no matter how the declaring dictionaries were ordered.

Each run's identity is content-derived: :func:`run_id` digests the
resolved knob assignment (sorted keys, canonical JSON), so the same
design point always gets the same ID across processes, sessions and
machines — and downstream, each (run, scene) cell becomes a
content-addressed :class:`~repro.runtime.job.SimulationJob` that
deduplicates against the persistent result store for free.

Combinations that violate :class:`~repro.gpu.config.GPUConfig`'s
structural constraints (an SH stack on RB_FULL, a carve-out larger than
the unified SRAM) are filtered out and *reported* in
:class:`RunMatrix.skipped` — never silently dropped.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import AblationError, ConfigError
from repro.gpu.config import GPUConfig
from repro.ablation.space import KnobSpace, knob_registry

#: Hex digits of the SHA-256 digest kept as the run ID.
_RUN_ID_LEN = 16


def run_id(knobs: Dict) -> str:
    """Stable content-derived ID for one resolved knob assignment.

    SHA-256 over the canonical JSON form (sorted keys, compact
    separators), truncated to 16 hex digits.  Key order of the input
    dict is irrelevant by construction.
    """
    blob = json.dumps(knobs, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:_RUN_ID_LEN]


@dataclass(frozen=True)
class RunSpec:
    """One design point of the matrix.

    ``knobs`` is the full resolved assignment (fixed plus this
    combination's range values); ``config`` is the validated
    ``GPUConfig`` it produces and ``strategy`` the traversal strategy
    name the jobs will carry.
    """

    id: str
    knobs: Dict
    config: GPUConfig
    strategy: str = "sms"

    @property
    def label(self) -> str:
        """Figure-style config label, strategy-suffixed when non-default."""
        label = self.config.describe()
        if self.strategy != "sms":
            label += f"[{self.strategy}]"
        return label


@dataclass
class RunMatrix:
    """Every valid design point of a space, plus what was filtered."""

    space: KnobSpace
    runs: List[RunSpec] = field(default_factory=list)
    #: Combinations rejected by GPUConfig validation: (knobs, reason).
    skipped: List[Tuple[Dict, str]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.runs)

    def by_id(self, spec_id: str) -> RunSpec:
        """The run with ``spec_id``; raises :class:`AblationError`."""
        for run in self.runs:
            if run.id == spec_id:
                return run
        raise AblationError(f"no run {spec_id!r} in matrix")

    def find(self, knobs: Dict) -> Optional[RunSpec]:
        """The run matching a resolved knob assignment, if it survived."""
        target = run_id(knobs)
        for run in self.runs:
            if run.id == target:
                return run
        return None


def resolve_run(knobs: Dict) -> RunSpec:
    """Build (and validate) the :class:`RunSpec` for one assignment.

    Splits the assignment into GPUConfig fields and the ``strategy``
    pseudo-knob, constructs the config — surfacing
    :class:`~repro.errors.ConfigError` unchanged so callers can decide
    whether a bad combination is fatal (a direct request) or filterable
    (one cell of a product).
    """
    registry = knob_registry()
    config_kwargs = {}
    strategy = "sms"
    for name in sorted(knobs):
        knob = registry.get(name)
        if knob is None:
            raise AblationError(f"unknown knob {name!r} in run assignment")
        knob.validate(knobs[name])
        if knob.config_field is None:
            strategy = knobs[name]
        else:
            config_kwargs[knob.config_field] = knobs[name]
    config = GPUConfig(**config_kwargs)
    return RunSpec(
        id=run_id(knobs), knobs=dict(knobs), config=config, strategy=strategy
    )


def generate_matrix(space: KnobSpace) -> RunMatrix:
    """Expand a knob space into its deterministic run matrix.

    The product is taken over ``space.range_names`` (sorted) with each
    range's values in declared order, so run order is reproducible.
    Structurally invalid combinations are recorded in ``skipped`` with
    the validation message; a space whose every combination is invalid
    raises, since an empty matrix can answer no question.
    """
    matrix = RunMatrix(space=space)
    names = space.range_names
    pools = [list(space.ranges[name]) for name in names]
    seen_ids = set()
    for combination in itertools.product(*pools):
        knobs = dict(space.fixed)
        for name, value in zip(names, combination):
            knobs[name] = value
        try:
            run = resolve_run(knobs)
        except ConfigError as error:
            matrix.skipped.append((knobs, str(error)))
            continue
        if run.id in seen_ids:
            # Unreachable when the space validated (ranges are
            # duplicate-free and disjoint from fixed), but cheap
            # insurance that the no-duplicates property always holds.
            continue
        seen_ids.add(run.id)
        matrix.runs.append(run)
    if not matrix.runs:
        reasons = "; ".join(sorted({reason for _, reason in matrix.skipped}))
        raise AblationError(
            f"space {space.name!r} produced no valid configurations "
            f"({len(matrix.skipped)} combination(s) rejected: {reasons})"
        )
    return matrix


def corner_assignment(space: KnobSpace, *, full: bool) -> Dict:
    """The all-first (reference) or all-last (full) corner of a space.

    By the declared off->on range convention the reference corner has
    every mechanism removed and the full corner every mechanism at its
    strongest setting; the importance analysis measures between them.
    """
    knobs = dict(space.fixed)
    for name in space.range_names:
        values = list(space.ranges[name])
        knobs[name] = values[-1] if full else values[0]
    return knobs
