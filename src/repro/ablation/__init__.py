"""Ablation and design-space exploration over the SMS parameter space.

Declare a :class:`KnobSpace` (pinned ``fixed`` knobs plus swept
``ranges``), expand it into a deterministic content-addressed run
matrix, execute every (design point, scene) cell through the runtime or
the simulation service, and derive per-mechanism importance (LOO + OAT
attribution of the paper's +21.9% IPC claim) and the IPC-vs-SRAM Pareto
frontier.  CLI: ``repro ablate run/report/pareto``.
"""

from repro.ablation.analysis import (
    FULL_STACK_PROXY_ENTRIES,
    KnobImportance,
    ParetoPoint,
    pareto_frontier,
    pareto_points,
    rank_importance,
    speedups_vs_reference,
    stack_sram_bytes,
)
from repro.ablation.engine import (
    REPORT_FILENAME,
    REPORT_SCHEMA,
    AblationReport,
    execute_matrix,
    load_report,
    matrix_jobs,
    run_space,
    write_report,
)
from repro.ablation.matrix import (
    RunMatrix,
    RunSpec,
    corner_assignment,
    generate_matrix,
    resolve_run,
    run_id,
)
from repro.ablation.report import (
    render_importance,
    render_json,
    render_pareto,
    render_sweep,
    render_text,
)
from repro.ablation.space import (
    Knob,
    KnobSpace,
    available_knobs,
    knob_registry,
    load_space,
)
from repro.ablation.spaces import (
    available_spaces,
    named_space,
    resolve_space,
    space_catalog,
)

__all__ = [
    "FULL_STACK_PROXY_ENTRIES",
    "REPORT_FILENAME",
    "REPORT_SCHEMA",
    "AblationReport",
    "Knob",
    "KnobImportance",
    "KnobSpace",
    "ParetoPoint",
    "RunMatrix",
    "RunSpec",
    "available_knobs",
    "available_spaces",
    "corner_assignment",
    "execute_matrix",
    "generate_matrix",
    "knob_registry",
    "load_report",
    "load_space",
    "matrix_jobs",
    "named_space",
    "pareto_frontier",
    "pareto_points",
    "rank_importance",
    "render_importance",
    "render_json",
    "render_pareto",
    "render_sweep",
    "render_text",
    "resolve_run",
    "resolve_space",
    "run_id",
    "run_space",
    "space_catalog",
    "speedups_vs_reference",
    "stack_sram_bytes",
    "write_report",
]
