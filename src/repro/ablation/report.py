"""Text and JSON reporters for ablation reports.

The text form is three tables in the repo's uniform style (shared
:func:`~repro.experiments.report.format_table` helper, same rounding
rules as ``repro compare``): the Fig. 6/8-style sweep table over every
design point, the ranked mechanism-importance table, and the
IPC-vs-SRAM Pareto frontier.  The JSON form is the canonical
:meth:`~repro.ablation.engine.AblationReport.to_dict` payload — the
same bytes ``repro ablate run --out`` persists.
"""

from __future__ import annotations

import json
from typing import List

from repro.experiments.report import format_table
from repro.ablation.engine import AblationReport


def render_json(report: AblationReport) -> str:
    """The canonical JSON payload (sorted keys, 2-space indent)."""
    return json.dumps(report.to_dict(), sort_keys=True, indent=2)


def render_sweep(report: AblationReport) -> str:
    """Every design point: knob settings, SRAM cost, speedup, energy."""
    knob_names = report.space.range_names
    headers = (
        ["run", "config"] + knob_names
        + ["SRAM KB", "speedup", "IPC geomean", "uJ total"]
    )
    precision = (
        [None, None] + [None] * len(knob_names) + [1, 3, 4, 2]
    )
    rows: List[List] = []
    for spec_id in report.run_ids:
        entry = report.runs[spec_id]
        scenes = entry["per_scene"]
        ipc_geo = 1.0
        energy = 0.0
        count = 0
        for scene in sorted(scenes):
            ipc_geo *= scenes[scene]["ipc"]
            energy += scenes[scene]["energy_uj"]
            count += 1
        ipc_geo = ipc_geo ** (1.0 / count) if count else 0.0
        rows.append(
            [spec_id[:8], entry["label"]]
            + [_knob_cell(entry["knobs"].get(name)) for name in knob_names]
            + [
                entry["sram_bytes"] / 1024.0,
                report.speedups.get(spec_id, 0.0),
                ipc_geo,
                energy,
            ]
        )
    title = (
        f"[sweep: space {report.space.name!r}, {len(report.runs)} design "
        f"points x {len(report.space.scene_names())} scenes"
        + (", guarded" if report.guard else "")
        + (f", {report.backend} backend" if report.backend != "stepped"
           else "")
        + "]"
    )
    table = format_table(headers, rows, title=title, precision=precision)
    if report.skipped:
        table += (
            f"\n({len(report.skipped)} combination(s) skipped as "
            f"structurally invalid)"
        )
    return table


def render_importance(report: AblationReport) -> str:
    """The ranked attribution table (LOO + OAT deltas, percent)."""
    rows = [
        (
            rank + 1,
            imp.knob,
            _knob_cell(imp.off_value),
            _knob_cell(imp.on_value),
            100.0 * imp.loo_delta,
            100.0 * imp.oat_delta,
        )
        for rank, imp in enumerate(report.importance)
    ]
    return format_table(
        ["rank", "knob", "off", "on", "LOO dIPC %", "OAT dIPC %"],
        rows,
        title="[mechanism importance: leave-one-out from the full design, "
              "one-at-a-time from the reference]",
        precision=(None, None, None, None, 2, 2),
    )


def render_pareto(report: AblationReport) -> str:
    """The IPC-vs-SRAM frontier, cheapest design first."""
    rows = [
        (
            point.run_id[:8],
            point.label,
            point.sram_bytes / 1024.0,
            point.speedup,
        )
        for point in report.pareto
    ]
    return format_table(
        ["run", "config", "SRAM KB", "speedup"],
        rows,
        title="[Pareto frontier: IPC speedup vs stack SRAM cost]",
        precision=(None, None, 1, 3),
    )


def render_text(report: AblationReport) -> str:
    """The full human-readable report (sweep + importance + Pareto)."""
    return "\n\n".join([
        render_sweep(report),
        render_importance(report),
        render_pareto(report),
    ])


def _knob_cell(value) -> str:
    """Compact knob-value rendering for table cells."""
    if value is None:
        return "FULL"
    if value is True:
        return "on"
    if value is False:
        return "off"
    return str(value)
