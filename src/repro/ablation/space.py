"""Declarative SMS knob spaces: ``fixed`` kwargs vs ``ranges``.

A :class:`KnobSpace` declares a design-space exploration the way the
pykeen ablation pipeline declares one — a dictionary of pinned knob
values (``fixed``) plus a dictionary of per-knob value lists
(``ranges``) whose Cartesian product is the run matrix.  Every knob
name resolves through the :data:`KNOBS` registry, which maps the SMS
parameters the paper argues about (RB/SH sizes, skew, borrow/flush
bounds, scheduler occupancy, cache geometry, latencies, spill policy)
onto :class:`~repro.gpu.config.GPUConfig` fields, plus the traversal
``strategy`` pseudo-knob from :mod:`repro.traversal`.

Validation is two-tier: each value is checked against its knob's
declared domain here (unknown knob, empty range, duplicate values,
type/bounds errors all raise :class:`~repro.errors.AblationError` with
the knob name in the message), and each *combination* is checked by
constructing the actual ``GPUConfig`` during matrix generation (see
:mod:`repro.ablation.matrix`).

Range order is semantic: by convention a range runs *off -> on* (or
small -> large), and the importance analysis treats the first value of
every range as the knob's "removed" setting and the last as its "full"
setting (see :mod:`repro.ablation.analysis`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import AblationError

#: GPUConfig defaults the knob registry validates against.
_BOOL = "bool"
_INT = "int"
_CHOICE = "choice"


@dataclass(frozen=True)
class Knob:
    """One explorable SMS parameter.

    ``kind`` is ``"bool"``, ``"int"`` or ``"choice"``; integers carry an
    inclusive ``low`` (and optionally ``high``) bound, choices carry the
    allowed value tuple.  ``nullable`` permits JSON ``null`` (used by
    ``rb_stack_entries`` where ``None`` selects RB_FULL).  ``config_field``
    is the ``GPUConfig`` attribute the knob sets; the ``strategy``
    pseudo-knob sets the job's traversal strategy instead and has
    ``config_field=None``.
    """

    name: str
    kind: str
    config_field: Optional[str] = None
    low: Optional[int] = None
    high: Optional[int] = None
    choices: Tuple = ()
    nullable: bool = False
    #: Sample pool for property-based tests and documentation examples.
    examples: Tuple = ()

    def validate(self, value) -> None:
        """Raise :class:`AblationError` unless ``value`` is in-domain."""
        if value is None:
            if not self.nullable:
                raise AblationError(
                    f"knob {self.name!r} does not accept null"
                )
            return
        if self.kind == _BOOL:
            if not isinstance(value, bool):
                raise AblationError(
                    f"knob {self.name!r} expects true/false, got {value!r}"
                )
            return
        if self.kind == _INT:
            if isinstance(value, bool) or not isinstance(value, int):
                raise AblationError(
                    f"knob {self.name!r} expects an integer, got {value!r}"
                )
            if self.low is not None and value < self.low:
                raise AblationError(
                    f"knob {self.name!r} must be >= {self.low}, got {value}"
                )
            if self.high is not None and value > self.high:
                raise AblationError(
                    f"knob {self.name!r} must be <= {self.high}, got {value}"
                )
            return
        if value not in self.choices:
            raise AblationError(
                f"knob {self.name!r} must be one of "
                f"{', '.join(repr(c) for c in self.choices)}, got {value!r}"
            )


def _strategy_choices() -> Tuple[str, ...]:
    from repro.traversal import available_strategies

    return tuple(available_strategies())


def _knob_list() -> List[Knob]:
    """The SMS knob registry (everything ``repro ablate`` can sweep)."""
    return [
        # Traversal-stack architecture.
        Knob("rb_stack_entries", _INT, "rb_stack_entries", low=1,
             nullable=True, examples=(2, 4, 8, 16, None)),
        Knob("sh_stack_entries", _INT, "sh_stack_entries", low=0,
             examples=(0, 4, 8, 16)),
        Knob("skewed_bank_access", _BOOL, "skewed_bank_access",
             examples=(False, True)),
        Knob("intra_warp_realloc", _BOOL, "intra_warp_realloc",
             examples=(False, True)),
        Knob("inter_warp_realloc", _BOOL, "inter_warp_realloc",
             examples=(False, True)),
        Knob("max_borrows", _INT, "max_borrows", low=1,
             examples=(1, 2, 4, 8)),
        Knob("max_flushes", _INT, "max_flushes", low=0,
             examples=(0, 1, 3, 6)),
        # Scheduler / occupancy.
        Knob("max_warps_per_rt_unit", _INT, "max_warps_per_rt_unit", low=1,
             examples=(1, 2, 4, 8)),
        # Cache geometry.
        Knob("unified_cache_bytes", _INT, "unified_cache_bytes", low=128,
             examples=(32 * 1024, 64 * 1024, 128 * 1024)),
        Knob("l2_bytes", _INT, "l2_bytes", low=128,
             examples=(128 * 1024, 256 * 1024, 512 * 1024)),
        Knob("l2_assoc", _INT, "l2_assoc", low=1, examples=(4, 8, 16)),
        Knob("line_bytes", _INT, "line_bytes", low=16,
             examples=(64, 128)),
        # Latencies and port occupancies.
        Knob("l1_latency", _INT, "l1_latency", low=1, examples=(10, 20, 40)),
        Knob("l2_latency", _INT, "l2_latency", low=1,
             examples=(80, 160, 320)),
        Knob("dram_latency", _INT, "dram_latency", low=1,
             examples=(110, 220, 440)),
        Knob("shared_latency", _INT, "shared_latency", low=1,
             examples=(10, 20, 40)),
        Knob("bank_conflict_penalty", _INT, "bank_conflict_penalty", low=0,
             examples=(0, 2, 4, 8)),
        Knob("l2_service_cycles", _INT, "l2_service_cycles", low=1,
             examples=(8, 16, 32)),
        Knob("dram_service_cycles", _INT, "dram_service_cycles", low=1,
             examples=(1, 2, 4)),
        # Spill cacheability and background pressure.
        Knob("spill_cache_policy", _CHOICE, "spill_cache_policy",
             choices=("uncached", "l2", "l1"),
             examples=("uncached", "l2", "l1")),
        Knob("shader_pollution_lines", _INT, "shader_pollution_lines", low=0,
             examples=(0, 24, 48, 96)),
        # Traversal strategy (job-level, not a GPUConfig field).
        Knob("strategy", _CHOICE, None, choices=_strategy_choices(),
             examples=("sms", "baseline", "stackless")),
    ]


def knob_registry() -> Dict[str, Knob]:
    """Name -> :class:`Knob` for every explorable parameter."""
    return {knob.name: knob for knob in _knob_list()}


def available_knobs() -> List[str]:
    """Sorted names of every knob ``repro ablate`` understands."""
    return sorted(knob_registry())


@dataclass(frozen=True)
class KnobSpace:
    """One declared design space: pinned knobs plus swept ranges.

    ``fixed`` holds single values (pykeen's ``kwargs``); ``ranges``
    holds value lists whose Cartesian product — over range names in
    sorted order, so declaration order of the dict never matters — is
    the run matrix (pykeen's ``kwargs_ranges``).  ``scenes`` selects the
    workload subset (``None`` = the full Table II suite).
    """

    name: str = "space"
    fixed: Dict = field(default_factory=dict)
    ranges: Dict[str, Sequence] = field(default_factory=dict)
    scenes: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        registry = knob_registry()
        if not self.ranges:
            raise AblationError(
                f"space {self.name!r} declares no ranges — nothing to sweep"
            )
        for source_name, mapping in (("fixed", self.fixed),
                                     ("ranges", self.ranges)):
            for knob_name in sorted(mapping):
                knob = registry.get(knob_name)
                if knob is None:
                    raise AblationError(
                        f"unknown knob {knob_name!r} in {source_name} of "
                        f"space {self.name!r}; known knobs: "
                        f"{', '.join(available_knobs())}"
                    )
        for knob_name in sorted(self.ranges):
            values = list(self.ranges[knob_name])
            if not values:
                raise AblationError(
                    f"empty range for knob {knob_name!r} in space "
                    f"{self.name!r} — a range needs at least one value"
                )
            seen: List = []
            for value in values:
                registry[knob_name].validate(value)
                if value in seen:
                    raise AblationError(
                        f"duplicate value {value!r} in range for knob "
                        f"{knob_name!r} of space {self.name!r}"
                    )
                seen.append(value)
            if knob_name in self.fixed:
                raise AblationError(
                    f"knob {knob_name!r} appears in both fixed and ranges "
                    f"of space {self.name!r}"
                )
        for knob_name in sorted(self.fixed):
            registry[knob_name].validate(self.fixed[knob_name])
        if self.scenes is not None:
            from repro.workloads.lumibench import SCENE_NAMES

            for scene in self.scenes:
                if scene.upper() not in SCENE_NAMES:
                    raise AblationError(
                        f"unknown scene {scene!r} in space {self.name!r}; "
                        f"known scenes: {', '.join(SCENE_NAMES)}"
                    )

    @property
    def range_names(self) -> List[str]:
        """Swept knob names in the canonical (sorted) order."""
        return sorted(self.ranges)

    @property
    def size(self) -> int:
        """Matrix cardinality before invalid-combination filtering."""
        total = 1
        for knob_name in self.range_names:
            total *= len(self.ranges[knob_name])
        return total

    def scene_names(self) -> List[str]:
        """The scenes this space sweeps (defaults to the full suite)."""
        if self.scenes is not None:
            return [scene.upper() for scene in self.scenes]
        from repro.workloads.lumibench import SCENE_NAMES

        return list(SCENE_NAMES)

    def to_dict(self) -> Dict:
        """Canonical JSON form (knobs in sorted order)."""
        return {
            "name": self.name,
            "scenes": list(self.scenes) if self.scenes is not None else None,
            "fixed": {name: self.fixed[name] for name in sorted(self.fixed)},
            "ranges": {
                name: list(self.ranges[name]) for name in self.range_names
            },
        }

    @classmethod
    def from_dict(cls, data: Dict, name: str = "space") -> "KnobSpace":
        """Build (and fully validate) a space from a parsed JSON dict."""
        if not isinstance(data, dict):
            raise AblationError(
                f"knob-space document must be a JSON object, got "
                f"{type(data).__name__}"
            )
        unknown = sorted(set(data) - {"name", "scenes", "fixed", "ranges"})
        if unknown:
            raise AblationError(
                f"unknown top-level key(s) in knob space: "
                f"{', '.join(unknown)} (expected name/scenes/fixed/ranges)"
            )
        fixed = data.get("fixed", {})
        ranges = data.get("ranges", {})
        if not isinstance(fixed, dict) or not isinstance(ranges, dict):
            raise AblationError("'fixed' and 'ranges' must be JSON objects")
        for knob_name in sorted(ranges):
            if not isinstance(ranges[knob_name], list):
                raise AblationError(
                    f"range for knob {knob_name!r} must be a JSON list"
                )
        scenes = data.get("scenes")
        if scenes is not None:
            if (not isinstance(scenes, list)
                    or not all(isinstance(s, str) for s in scenes)):
                raise AblationError("'scenes' must be a list of scene names")
            scenes = tuple(scenes)
        return cls(
            name=str(data.get("name", name)),
            fixed=dict(fixed),
            ranges={key: list(value) for key, value in ranges.items()},
            scenes=scenes,
        )


def load_space(path) -> KnobSpace:
    """Load and validate a knob-space JSON file.

    Every failure mode — missing file, malformed JSON, non-object
    document, unknown knobs, empty ranges — raises
    :class:`AblationError` with a message naming the offending input, so
    the CLI reports it structurally (exit 2) instead of a traceback.
    """
    file_path = Path(path)
    try:
        text = file_path.read_text()
    except OSError as error:
        raise AblationError(
            f"cannot read knob-space file {file_path}: {error}"
        ) from error
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise AblationError(
            f"malformed JSON in knob-space file {file_path}: {error}"
        ) from error
    return KnobSpace.from_dict(data, name=file_path.stem)
