"""Named knob spaces: the paper's sweeps as declared design spaces.

What used to be one hand-written experiment driver per figure becomes
one declaration each; ``repro ablate run --space <name>`` (or
:func:`named_space` in code) expands, executes and analyzes it through
the same engine.  Range order follows the off->on convention the
importance analysis assumes (first value = mechanism removed, last =
full strength).
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import AblationError
from repro.ablation.space import KnobSpace


def _mechanisms() -> KnobSpace:
    """The headline attribution: SH tier vs skewing vs reallocation.

    2^3 corners around the paper's proposed design.  LOO from
    RB_8+SH_8+SK+RA answers "how much of the +21.9% does each
    mechanism carry"; OAT from RB_8 answers what each buys alone.
    """
    return KnobSpace(
        name="mechanisms",
        fixed={"rb_stack_entries": 8},
        ranges={
            "sh_stack_entries": [0, 8],
            "skewed_bank_access": [False, True],
            "intra_warp_realloc": [False, True],
        },
    )


def _fig8() -> KnobSpace:
    """Fig. 8: SH stack sizing under the full SMS mechanism set."""
    return KnobSpace(
        name="fig8",
        fixed={
            "rb_stack_entries": 8,
            "skewed_bank_access": True,
            "intra_warp_realloc": True,
        },
        ranges={"sh_stack_entries": [0, 4, 8, 16]},
    )


def _fig15() -> KnobSpace:
    """Fig. 15: baseline ray-buffer sizing (spill pressure vs RB size)."""
    return KnobSpace(
        name="fig15",
        fixed={"sh_stack_entries": 0},
        ranges={"rb_stack_entries": [2, 4, 8, 16, 32]},
    )


def _bounds() -> KnobSpace:
    """The paper's fixed-by-heuristic limits: borrow and flush caps."""
    return KnobSpace(
        name="bounds",
        fixed={
            "rb_stack_entries": 8,
            "sh_stack_entries": 8,
            "skewed_bank_access": True,
            "intra_warp_realloc": True,
        },
        ranges={
            "max_borrows": [1, 2, 4, 8],
            "max_flushes": [0, 1, 3, 6],
        },
    )


def _sram_pareto() -> KnobSpace:
    """The IPC-vs-SRAM design space: RB x SH sizing x mechanisms."""
    return KnobSpace(
        name="sram_pareto",
        fixed={},
        ranges={
            "rb_stack_entries": [4, 8, 16],
            "sh_stack_entries": [0, 4, 8, 16],
            "skewed_bank_access": [False, True],
            "intra_warp_realloc": [False, True],
        },
    )


#: Name -> builder for every declared paper space.
_SPACES = {
    "mechanisms": _mechanisms,
    "fig8": _fig8,
    "fig15": _fig15,
    "bounds": _bounds,
    "sram_pareto": _sram_pareto,
}


def available_spaces() -> List[str]:
    """Sorted names of the declared paper spaces."""
    return sorted(_SPACES)


def named_space(name: str) -> KnobSpace:
    """Resolve a declared paper space by name."""
    builder = _SPACES.get(name.lower().strip())
    if builder is None:
        raise AblationError(
            f"unknown knob space {name!r}; declared spaces: "
            f"{', '.join(available_spaces())} (or pass a JSON file path)"
        )
    return builder()


def resolve_space(spec: str) -> KnobSpace:
    """A declared space name, or a path to a knob-space JSON file.

    Names resolve first; anything that looks like a path (a separator,
    a ``.json`` suffix, or an existing file) loads as a file.  A bare
    name that is neither gets the unknown-space message — with the
    declared catalog in it — rather than a file-system error.
    """
    from pathlib import Path

    cleaned = spec.lower().strip()
    if cleaned in _SPACES:
        return named_space(spec)
    looks_like_path = (
        "/" in spec or "\\" in spec or cleaned.endswith(".json")
        or Path(spec).exists()
    )
    if not looks_like_path:
        raise AblationError(
            f"unknown knob space {spec!r}; declared spaces: "
            f"{', '.join(available_spaces())} (or pass a JSON file path)"
        )
    from repro.ablation.space import load_space

    return load_space(spec)


def space_catalog() -> Dict[str, str]:
    """Name -> one-line description (for ``repro ablate run --list``)."""
    catalog: Dict[str, str] = {}
    for name in available_spaces():
        doc = _SPACES[name].__doc__ or ""
        catalog[name] = doc.strip().splitlines()[0] if doc.strip() else ""
    return catalog
