"""Per-mechanism importance and IPC-vs-SRAM Pareto analysis.

Works on plain per-run, per-scene IPC data (whatever the executor
collected, or a report reloaded from disk), so ``repro ablate report``
and ``repro ablate pareto`` never need to re-simulate.

Two attribution views, both anchored on the space's range convention
(first value = knob removed, last value = knob at full strength):

*Leave-one-out (LOO)* — from the full corner (every range at its last
value), set one knob back to its first value and measure the IPC lost.
This is "how much of the +21.9% does each mechanism carry on top of
everything else" — the attribution the paper's Fig. 13 stacking
implies.

*One-at-a-time (OAT)* — from the reference corner (every range at its
first value), set one knob to its last value and measure the IPC
gained.  This is each mechanism's solo contribution, before synergies.

Both are ratios of cross-scene geometric means, so they are invariant
to absolute workload scale.  The ranking sorts by LOO descending (ties
by knob name), which makes it deterministic given deterministic
simulation results.

The Pareto frontier trades the speedup over the reference corner
against :func:`stack_sram_bytes` — the per-SM SRAM the stack design
costs (RB entries + SH carve-out + SMS bookkeeping fields), the axis
the paper's VI-C overhead argument lives on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import AblationError
from repro.experiments.common import geomean
from repro.gpu.config import GPUConfig
from repro.ablation.matrix import RunMatrix, run_id
from repro.ablation.space import KnobSpace

#: RB entries assumed for the unbounded RB_FULL design when costing
#: SRAM (a documented proxy: deep enough for every Table II scene).
FULL_STACK_PROXY_ENTRIES = 64


def stack_sram_bytes(config: GPUConfig) -> int:
    """Per-SM SRAM bytes the traversal-stack design costs.

    Ray-buffer storage (paper VI-C arithmetic: ``ENTRY_BYTES`` x entries
    x threads), plus the shared-memory carve-out, plus the SMS
    bookkeeping fields when an SH tier exists.  ``rb_stack_entries=None``
    (RB_FULL) is costed at :data:`FULL_STACK_PROXY_ENTRIES`.
    """
    from repro.stack.base import ENTRY_BYTES
    from repro.stack.fields import overhead_bytes_per_rt_unit

    entries = (
        config.rb_stack_entries
        if config.rb_stack_entries is not None
        else FULL_STACK_PROXY_ENTRIES
    )
    threads = config.warp_size * config.max_warps_per_rt_unit
    rb_bytes = ENTRY_BYTES * entries * threads * config.rt_units_per_sm
    total = rb_bytes + config.shared_memory_bytes
    if config.sh_stack_entries:
        fields = overhead_bytes_per_rt_unit(
            sh_entries=config.sh_stack_entries,
            warp_size=config.warp_size,
            warps_per_rt_unit=config.max_warps_per_rt_unit,
            max_borrows=config.max_borrows,
            max_flushes=config.max_flushes,
        )
        total += fields["total_bytes"] * config.rt_units_per_sm
    return total


@dataclass(frozen=True)
class KnobImportance:
    """One knob's attribution between the space's two corners."""

    knob: str
    #: The removed/full settings (first/last value of the range).
    off_value: object
    on_value: object
    #: Fractional IPC lost removing the knob from the full corner.
    loo_delta: float
    #: Fractional IPC gained adding only this knob to the reference.
    oat_delta: float

    def to_dict(self) -> Dict:
        return {
            "knob": self.knob,
            "off_value": self.off_value,
            "on_value": self.on_value,
            "loo_delta": self.loo_delta,
            "oat_delta": self.oat_delta,
        }


def _geo_ipc(per_scene_ipc: Dict[str, Dict[str, float]],
             spec_id: str) -> float:
    scenes = per_scene_ipc.get(spec_id)
    if scenes is None:
        raise AblationError(
            f"importance analysis needs run {spec_id!r}, which is not in "
            f"the collected results (was its combination skipped as "
            f"invalid?)"
        )
    return geomean([scenes[name] for name in sorted(scenes)])


def _corner_id(space: KnobSpace, overrides: Optional[Dict] = None,
               *, full: bool) -> str:
    knobs = dict(space.fixed)
    for name in space.range_names:
        values = list(space.ranges[name])
        knobs[name] = values[-1] if full else values[0]
    for name in sorted(overrides or {}):
        knobs[name] = overrides[name]
    return run_id(knobs)


def rank_importance(
    space: KnobSpace,
    per_scene_ipc: Dict[str, Dict[str, float]],
) -> List[KnobImportance]:
    """LOO + OAT attribution for every ranged knob, ranked by LOO.

    ``per_scene_ipc`` maps run IDs to per-scene IPC.  The full
    Cartesian matrix contains every corner this needs; a missing corner
    (filtered as structurally invalid) raises :class:`AblationError`
    naming the run, since a partial ranking would silently misattribute.
    """
    full_ipc = _geo_ipc(per_scene_ipc, _corner_id(space, full=True))
    ref_ipc = _geo_ipc(per_scene_ipc, _corner_id(space, full=False))
    ranked: List[KnobImportance] = []
    for name in space.range_names:
        values = list(space.ranges[name])
        off_value, on_value = values[0], values[-1]
        without = _geo_ipc(
            per_scene_ipc,
            _corner_id(space, {name: off_value}, full=True),
        )
        alone = _geo_ipc(
            per_scene_ipc,
            _corner_id(space, {name: on_value}, full=False),
        )
        ranked.append(KnobImportance(
            knob=name,
            off_value=off_value,
            on_value=on_value,
            loo_delta=(full_ipc / without - 1.0) if without else 0.0,
            oat_delta=(alone / ref_ipc - 1.0) if ref_ipc else 0.0,
        ))
    ranked.sort(key=lambda imp: (-imp.loo_delta, imp.knob))
    return ranked


@dataclass(frozen=True)
class ParetoPoint:
    """One run's position in the IPC-vs-SRAM plane."""

    run_id: str
    label: str
    sram_bytes: int
    speedup: float

    def to_dict(self) -> Dict:
        return {
            "run_id": self.run_id,
            "label": self.label,
            "sram_bytes": self.sram_bytes,
            "speedup": self.speedup,
        }


def speedups_vs_reference(
    space: KnobSpace,
    per_scene_ipc: Dict[str, Dict[str, float]],
) -> Dict[str, float]:
    """Per-run geomean speedup over the reference corner.

    The paper's normalization convention: each scene's IPC is divided
    by the reference corner's IPC *on that scene*, then geomeaned.
    """
    ref = per_scene_ipc.get(_corner_id(space, full=False))
    if ref is None:
        raise AblationError(
            "speedup analysis needs the reference corner (every range at "
            "its first value), which is not in the collected results"
        )
    speedups: Dict[str, float] = {}
    for spec_id in sorted(per_scene_ipc):
        scenes = per_scene_ipc[spec_id]
        ratios = [
            scenes[name] / ref[name]
            for name in sorted(scenes)
            if ref.get(name)
        ]
        speedups[spec_id] = geomean(ratios) if ratios else 0.0
    return speedups


def pareto_frontier(points: List[ParetoPoint]) -> List[ParetoPoint]:
    """The non-dominated set: no cheaper-or-equal point is faster.

    Deterministic: candidates sort by (SRAM ascending, speedup
    descending, run ID), and a point joins the frontier only when its
    speedup strictly exceeds every cheaper point's.  Ties at identical
    SRAM keep the single best point (smallest run ID on equal speedup).
    """
    ordered = sorted(
        points, key=lambda p: (p.sram_bytes, -p.speedup, p.run_id)
    )
    frontier: List[ParetoPoint] = []
    best = float("-inf")
    for point in ordered:
        if point.speedup > best:
            frontier.append(point)
            best = point.speedup
    return frontier


def pareto_points(
    matrix: RunMatrix,
    speedups: Dict[str, float],
) -> List[ParetoPoint]:
    """Every run as a :class:`ParetoPoint` (matrix order)."""
    points: List[ParetoPoint] = []
    for run in matrix.runs:
        if run.id not in speedups:
            raise AblationError(
                f"run {run.id!r} has no collected speedup — results and "
                f"matrix disagree"
            )
        points.append(ParetoPoint(
            run_id=run.id,
            label=run.label,
            sram_bytes=stack_sram_bytes(run.config),
            speedup=speedups[run.id],
        ))
    return points
