"""Execute a run matrix and assemble the ablation report.

One (run, scene) cell is one content-addressed
:class:`~repro.runtime.job.SimulationJob` — the same job model every
other campaign path uses — so matrices fan out through
:func:`~repro.runtime.executor.run_jobs` (process pool + persistent
store; repeated design points across spaces are store hits) or through
a running ``repro serve`` instance via
:class:`~repro.service.client.ServiceClient`.  The simulation is
deterministic, so all three paths (serial, pool, service) produce
bit-identical reports.

The report itself is pure content: knob space, matrix, per-run metrics,
importance ranking and Pareto frontier — no timestamps, no host state —
so ``report.json`` is byte-stable across runs and machines and safe to
pin in golden tests.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.results import SimulationResult
from repro.errors import AblationError
from repro.gpu.energy import estimate_energy
from repro.runtime.job import SimulationJob
from repro.workloads.params import DEFAULT_PARAMS, WorkloadParams
from repro.ablation.analysis import (
    KnobImportance,
    ParetoPoint,
    pareto_frontier,
    pareto_points,
    rank_importance,
    speedups_vs_reference,
    stack_sram_bytes,
)
from repro.ablation.matrix import RunMatrix, generate_matrix
from repro.ablation.space import KnobSpace

#: Bump when the report layout changes incompatibly.
REPORT_SCHEMA = 1

#: File name ``repro ablate run --out`` writes inside the run directory.
REPORT_FILENAME = "report.json"


@dataclass
class AblationReport:
    """Everything one ablation campaign measured and derived."""

    space: KnobSpace
    params: WorkloadParams
    guard: bool
    #: run ID -> {"label", "knobs", "sram_bytes", "per_scene": {...}}.
    runs: Dict[str, Dict]
    #: Combinations rejected by config validation: {"knobs", "reason"}.
    skipped: List[Dict]
    #: Ranked attribution (LOO descending).
    importance: List[KnobImportance]
    #: The non-dominated IPC-vs-SRAM set, cheapest first.
    pareto: List[ParetoPoint]
    #: Per-run geomean speedup over the reference corner.
    speedups: Dict[str, float] = field(default_factory=dict)
    #: Timing backend every cell requested (``"stepped"`` or
    #: ``"vector"``); results are bit-identical across backends, so the
    #: field is provenance, not a knob dimension.
    backend: str = "stepped"

    @property
    def run_ids(self) -> List[str]:
        """Run IDs in matrix (generation) order."""
        return list(self.runs)

    def importance_ranking(self) -> List[str]:
        """Knob names, most important (largest LOO delta) first."""
        return [imp.knob for imp in self.importance]

    def pareto_ids(self) -> List[str]:
        """Frontier run IDs, cheapest SRAM first."""
        return [point.run_id for point in self.pareto]

    def per_scene_ipc(self) -> Dict[str, Dict[str, float]]:
        """run ID -> scene -> IPC (the analysis layer's input shape)."""
        return {
            spec_id: {
                scene: self.runs[spec_id]["per_scene"][scene]["ipc"]
                for scene in sorted(self.runs[spec_id]["per_scene"])
            }
            for spec_id in self.runs
        }

    def to_dict(self) -> Dict:
        """Canonical JSON-serializable form (content only, no clocks).

        ``backend`` is only serialized when it differs from the default,
        so reports produced before the field existed (and every stepped
        campaign) keep their exact bytes.
        """
        payload = {
            "schema": REPORT_SCHEMA,
            "space": self.space.to_dict(),
            "params": asdict(self.params),
            "guard": self.guard,
            "runs": {spec_id: self.runs[spec_id]
                     for spec_id in sorted(self.runs)},
            "run_order": list(self.runs),
            "skipped": self.skipped,
            "speedups": {spec_id: self.speedups[spec_id]
                         for spec_id in sorted(self.speedups)},
            "importance": [imp.to_dict() for imp in self.importance],
            "pareto": [point.to_dict() for point in self.pareto],
        }
        if self.backend != "stepped":
            payload["backend"] = self.backend
        return payload

    @classmethod
    def from_dict(cls, data: Dict) -> "AblationReport":
        """Rebuild a report from :meth:`to_dict` output."""
        if not isinstance(data, dict) or "space" not in data:
            raise AblationError(
                "not an ablation report (expected an object with a "
                "'space' key)"
            )
        schema = data.get("schema")
        if schema != REPORT_SCHEMA:
            raise AblationError(
                f"unsupported ablation report schema {schema!r} "
                f"(this build reads schema {REPORT_SCHEMA})"
            )
        space = KnobSpace.from_dict(data["space"])
        order = data.get("run_order") or sorted(data.get("runs", {}))
        runs_raw = data.get("runs", {})
        runs = {spec_id: runs_raw[spec_id] for spec_id in order}
        return cls(
            space=space,
            params=WorkloadParams(**data.get("params", {})),
            guard=bool(data.get("guard", False)),
            runs=runs,
            skipped=list(data.get("skipped", [])),
            importance=[
                KnobImportance(
                    knob=imp["knob"],
                    off_value=imp["off_value"],
                    on_value=imp["on_value"],
                    loo_delta=imp["loo_delta"],
                    oat_delta=imp["oat_delta"],
                )
                for imp in data.get("importance", [])
            ],
            pareto=[
                ParetoPoint(
                    run_id=point["run_id"],
                    label=point["label"],
                    sram_bytes=point["sram_bytes"],
                    speedup=point["speedup"],
                )
                for point in data.get("pareto", [])
            ],
            speedups=dict(data.get("speedups", {})),
            backend=data.get("backend", "stepped"),
        )


def matrix_jobs(
    matrix: RunMatrix,
    params: WorkloadParams = DEFAULT_PARAMS,
    guard: bool = False,
    backend: str = "stepped",
) -> List[SimulationJob]:
    """Every (scene, run) cell as a content-addressed job.

    Scene-major order, so a worker that draws several design points of
    one scene serves them from its per-process trace memo.
    """
    jobs: List[SimulationJob] = []
    for scene in matrix.space.scene_names():
        for run in matrix.runs:
            job = SimulationJob.from_params(
                scene, run.config, params=params, strategy=run.strategy,
                backend=backend,
            )
            if guard:
                job = replace(job, guard=True)
            jobs.append(job)
    return jobs


def _scene_cell(result: SimulationResult) -> Dict:
    """The per-(run, scene) metrics kept in the report."""
    counters = result.counters
    energy = estimate_energy(counters, num_sms=result.config.num_sms)
    return {
        "ipc": result.ipc,
        "cycles": result.cycles,
        "offchip_accesses": counters.offchip_accesses,
        "stack_global_ops": counters.stack_global_ops,
        "stack_shared_ops": counters.stack_shared_ops,
        "bank_conflict_delay_cycles": counters.bank_conflict_delay_cycles,
        "energy_uj": energy.total_nj / 1e3,
    }


def execute_matrix(
    matrix: RunMatrix,
    params: WorkloadParams = DEFAULT_PARAMS,
    *,
    guard: bool = False,
    cache=None,
    service=None,
    backend: str = "stepped",
) -> AblationReport:
    """Run every cell and derive importance + Pareto.

    ``cache`` is a :class:`~repro.runtime.cache.CachedWorkloadCache`
    (or anything exposing ``store``/``policy``/``metrics``): its policy
    sizes the worker pool and its store absorbs repeats.  ``service``
    routes the matrix to a running ``repro serve`` instance instead —
    pass a :class:`~repro.service.client.ServiceClient` or an
    ``http://host:port`` URL.  With neither, cells run serially
    in-process.
    """
    jobs = matrix_jobs(matrix, params=params, guard=guard, backend=backend)
    if service is not None:
        if isinstance(service, str):
            from repro.service.client import ServiceClient

            service = ServiceClient.from_url(service)
        results = service.run_jobs(jobs)
    else:
        policy = getattr(cache, "policy", None)
        if policy is not None:
            from repro.runtime.executor import run_jobs

            report = run_jobs(
                jobs, store=getattr(cache, "store", None), policy=policy
            )
            metrics = getattr(cache, "metrics", None)
            if metrics is not None:
                metrics.merge(report.metrics)
            results = report.results
        else:
            results = [job.run() for job in jobs]
    return _assemble(matrix, params, guard, results, backend=backend)


def run_space(
    space: KnobSpace,
    params: WorkloadParams = DEFAULT_PARAMS,
    *,
    guard: bool = False,
    cache=None,
    service=None,
    backend: str = "stepped",
) -> AblationReport:
    """Expand ``space`` and execute it (the one-call entry point)."""
    return execute_matrix(
        generate_matrix(space), params=params, guard=guard,
        cache=cache, service=service, backend=backend,
    )


def _assemble(
    matrix: RunMatrix,
    params: WorkloadParams,
    guard: bool,
    results: List[SimulationResult],
    backend: str = "stepped",
) -> AblationReport:
    """Fold flat scene-major results into the derived report."""
    scenes = matrix.space.scene_names()
    expected = len(scenes) * len(matrix.runs)
    if len(results) != expected:
        raise AblationError(
            f"executor returned {len(results)} results for "
            f"{expected} cells"
        )
    runs: Dict[str, Dict] = {
        run.id: {
            "label": run.label,
            "knobs": {name: run.knobs[name] for name in sorted(run.knobs)},
            "sram_bytes": stack_sram_bytes(run.config),
            "per_scene": {},
        }
        for run in matrix.runs
    }
    flat = iter(results)
    for scene in scenes:
        for run in matrix.runs:
            runs[run.id]["per_scene"][scene] = _scene_cell(next(flat))
    per_scene_ipc = {
        run.id: {
            scene: runs[run.id]["per_scene"][scene]["ipc"]
            for scene in scenes
        }
        for run in matrix.runs
    }
    importance = rank_importance(matrix.space, per_scene_ipc)
    speedups = speedups_vs_reference(matrix.space, per_scene_ipc)
    frontier = pareto_frontier(pareto_points(matrix, speedups))
    return AblationReport(
        space=matrix.space,
        params=params,
        guard=guard,
        runs=runs,
        skipped=[
            {"knobs": {name: knobs[name] for name in sorted(knobs)},
             "reason": reason}
            for knobs, reason in matrix.skipped
        ],
        importance=importance,
        pareto=frontier,
        speedups=speedups,
        backend=backend,
    )


def write_report(report: AblationReport, out_dir) -> Path:
    """Persist ``report.json`` into a run directory (created if needed).

    The payload is canonical (sorted keys, fixed separators), so two
    identical campaigns write byte-identical files.
    """
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / REPORT_FILENAME
    path.write_text(
        json.dumps(report.to_dict(), sort_keys=True, indent=2) + "\n"
    )
    return path


def load_report(run_dir) -> AblationReport:
    """Load ``report.json`` from a run directory.

    Missing directory, missing file and malformed JSON all raise
    :class:`AblationError` naming the path — the CLI's structured
    exit-2 path.
    """
    directory = Path(run_dir)
    path = directory / REPORT_FILENAME
    if not directory.is_dir():
        raise AblationError(
            f"no such ablation run directory: {directory} "
            f"(expected one produced by 'repro ablate run --out')"
        )
    if not path.is_file():
        raise AblationError(
            f"no {REPORT_FILENAME} in {directory} — not an ablation run "
            f"directory (run 'repro ablate run --out {directory}' first)"
        )
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise AblationError(
            f"malformed ablation report {path}: {error}"
        ) from error
    return AblationReport.from_dict(data)
