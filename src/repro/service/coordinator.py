"""The async coordinator: shard fleet, admission, failover, degradation.

:class:`SimulationService` owns a fleet of worker shards
(:mod:`repro.service.shard`) and resolves content-addressed jobs against
them with the full robustness ladder:

1. **coalesce** — submissions are keyed by content hash; an identical
   in-flight request attaches to the existing entry (single-flight), a
   completed one is served from the in-memory done cache or the
   persistent store;
2. **queue** — new work lands on bounded per-shard queues, hash-routed
   for trace-memo locality; idle shards *steal* from the longest queue
   so one hot shard never serializes a campaign;
3. **shed** — past the token bucket or the queue bounds, submission
   raises :class:`~repro.errors.ServiceOverloadError` with a
   retry-after hint instead of queuing unboundedly;
4. **recover** — heartbeat-monitored shards are restarted on crash or
   hang with deterministic seeded backoff, their in-flight job is
   redelivered (at most ``max_redeliveries`` times), corrupt payloads
   are rejected by checksum, and a per-shard circuit breaker routes
   around repeat offenders;
5. **serial fallback** — when the fleet cannot run a job (redelivery
   budget spent, every shard down), it runs serially in-process: a
   campaign always completes, because the simulation itself is
   deterministic and shard placement never changes results.

Everything time-dependent reads the injected clock, so the module stays
inside simlint's timing scope with no host-clock reads.
"""

from __future__ import annotations

import asyncio
import pickle
import queue as queue_module
from collections import OrderedDict
from typing import Any, Dict, List, Optional

from repro.errors import (
    JobExecutionError,
    ServiceError,
    ServiceOverloadError,
    ShardFailureError,
)
from repro.runtime.backoff import backoff_delay
from repro.runtime.clock import Clock, MonotonicClock
from repro.runtime.store import ResultStore
from repro.service.breaker import CircuitBreaker
from repro.service.config import ServiceConfig
from repro.service.faults import ServiceFaultSpec
from repro.service.limiter import TokenBucket
from repro.service.metrics import ServiceMetrics
from repro.service.shard import (
    MSG_DONE,
    MSG_ERROR,
    ShardHandle,
    payload_digest,
    spawn_shard,
    stop_shard,
)

#: Entry states, in lifecycle order.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


class _Entry:
    """One distinct in-flight job (possibly many coalesced tickets)."""

    __slots__ = (
        "job", "key", "state", "attempts", "redeliveries", "shard_id",
        "result", "error", "finished", "events", "stolen",
    )

    def __init__(self, job: Any, key: str) -> None:
        self.job = job
        self.key = key
        self.state = QUEUED
        self.attempts = 0
        self.redeliveries = 0
        self.shard_id: Optional[int] = None
        self.result: Any = None
        self.error: Optional[Exception] = None
        self.finished: Optional[asyncio.Event] = None
        self.events: List[Dict] = []
        self.stolen = False

    def record(self, event: str, now: float, **detail) -> None:
        entry = {"event": event, "state": self.state, "t": round(now, 6)}
        entry.update(detail)
        self.events.append(entry)


class SimulationService:
    """Async coordinator over a fleet of process shards.

    Generic over the job model exactly like the executor: anything
    picklable with ``key() -> str`` and ``run()`` works, and results
    with ``to_dict()`` are written back to the persistent ``store``.
    ``fault`` injects one deterministic serving-layer fault (chaos).
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        store: Optional[ResultStore] = None,
        clock: Optional[Clock] = None,
        fault: Optional[ServiceFaultSpec] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.store = store
        self.clock = clock or MonotonicClock()
        self.fault = fault
        self.metrics = ServiceMetrics(
            per_shard_completed=[0] * self.config.shards
        )
        self.limiter = TokenBucket(
            self.config.rate, self.config.burst, self.clock
        )
        self.shards: List[ShardHandle] = []
        self._entries: Dict[str, _Entry] = {}
        self._done: "OrderedDict[str, _Entry]" = OrderedDict()
        self._tickets: Dict[str, str] = {}
        self._ticket_sequence = 0
        self._poll_task: Optional[asyncio.Task] = None
        self._serial_lock: Optional[asyncio.Lock] = None
        self._serial_pending: List[_Entry] = []
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Spawn the shard fleet and the poll loop."""
        if self._started:
            return
        self._started = True
        self._serial_lock = asyncio.Lock()
        now = self.clock.now()
        for shard_id in range(self.config.shards):
            handle = self._spawn(shard_id, with_fault=True)
            handle.last_beat_changed = now
            self.shards.append(handle)
        self._poll_task = asyncio.ensure_future(self._poll_loop())

    async def stop(self) -> None:
        """Stop the poll loop and the fleet."""
        if not self._started:
            return
        self._started = False
        if self._poll_task is not None:
            self._poll_task.cancel()
            try:
                await self._poll_task
            except asyncio.CancelledError:
                self._poll_task = None
        for handle in self.shards:
            stop_shard(handle, kill=handle.current is not None)

    async def __aenter__(self) -> "SimulationService":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    def _spawn(self, shard_id: int, with_fault: bool) -> ShardHandle:
        fault = self.fault if with_fault else None
        if fault is not None and fault.shard != shard_id:
            fault = None
        handle = spawn_shard(
            shard_id, self.config.heartbeat_interval, fault=fault
        )
        handle.breaker = CircuitBreaker(
            self.config.breaker_threshold,
            self.config.breaker_cooldown,
            self.clock,
        )
        return handle

    # ------------------------------------------------------------------
    # submission (admission control + single-flight)
    # ------------------------------------------------------------------

    def submit(self, job: Any) -> Dict:
        """Admit one job; returns the ticket descriptor.

        Raises :class:`ServiceOverloadError` when admission control
        sheds the submission (the work was *not* accepted).
        """
        if not self._started:
            raise ServiceError("service is not started")
        self.metrics.submitted += 1
        key = job.key()
        now = self.clock.now()

        entry = self._entries.get(key)
        if entry is not None:
            # Single-flight: identical request already queued or running.
            self.metrics.coalesced += 1
            return self._ticket(entry, coalesced=True)
        done = self._done.get(key)
        if done is not None:
            self._done.move_to_end(key)
            self.metrics.memory_hits += 1
            return self._ticket(done, coalesced=False)
        if self.store is not None:
            hit = self.store.get(key)
            if hit is not None:
                self.metrics.cache_hits += 1
                entry = _Entry(job, key)
                entry.state = DONE
                entry.result = hit
                entry.record("store_hit", now)
                self._remember_done(entry)
                return self._ticket(entry, coalesced=False)

        # Admission control: token bucket, then bounded queues.
        retry_after = self.limiter.try_acquire()
        if retry_after > 0.0:
            self.metrics.shed += 1
            self.metrics.shed_rate += 1
            raise ServiceOverloadError(
                f"admission rate exceeded; retry in {retry_after:.3f}s",
                retry_after=retry_after,
                reason="rate",
            )
        depth = sum(len(handle.queue) for handle in self.shards)
        capacity = self.config.shards * self.config.queue_depth
        if depth >= capacity:
            self.metrics.shed += 1
            self.metrics.shed_queue += 1
            hint = max(self.config.poll_tick * 4, 1.0 / self.config.rate)
            raise ServiceOverloadError(
                f"all shard queues full ({depth}/{capacity}); "
                f"retry in {hint:.3f}s",
                retry_after=hint,
                reason="queue",
            )

        self.metrics.admitted += 1
        entry = _Entry(job, key)
        entry.finished = asyncio.Event()
        entry.record("admitted", now)
        self._entries[key] = entry
        self._route(entry)
        depth += 1
        self.metrics.queue_depth = depth
        if depth > self.metrics.queue_depth_peak:
            self.metrics.queue_depth_peak = depth
        return self._ticket(entry, coalesced=False)

    def _ticket(self, entry: _Entry, coalesced: bool) -> Dict:
        self._ticket_sequence += 1
        ticket = f"{entry.key[:12]}-{self._ticket_sequence}"
        self._tickets[ticket] = entry.key
        return {
            "ticket": ticket,
            "key": entry.key,
            "state": entry.state,
            "coalesced": coalesced,
        }

    def _route(self, entry: _Entry) -> None:
        """Hash-route to the job's home shard, spilling to the shortest.

        The home shard (key mod fleet) keeps trace-memo locality; a
        retired/tripped/full home queue falls through to the shortest
        healthy queue.  Work stealing rebalances later anyway — routing
        only has to be a good first guess.
        """
        home = int(entry.key[:8], 16) % self.config.shards
        order = [self.shards[home]] + [
            handle for handle in self.shards if handle.shard_id != home
        ]
        usable = [
            handle for handle in order
            if not handle.retired and handle.breaker.allow_routing()
        ]
        if not usable:
            usable = [handle for handle in order if not handle.retired]
        if not usable:
            usable = order
        target = usable[0]
        if len(target.queue) >= self.config.queue_depth:
            target = min(usable, key=lambda handle: len(handle.queue))
        target.queue.append(entry)

    # ------------------------------------------------------------------
    # lookup / waiting
    # ------------------------------------------------------------------

    def _entry_for_ticket(self, ticket: str) -> Optional[_Entry]:
        key = self._tickets.get(ticket)
        if key is None:
            return None
        entry = self._entries.get(key)
        if entry is not None:
            return entry
        return self._done.get(key)

    def status(self, ticket: str) -> Optional[Dict]:
        """The ticket's current state, or ``None`` for unknown tickets."""
        entry = self._entry_for_ticket(ticket)
        if entry is None:
            key = self._tickets.get(ticket)
            if key is not None and self.store is not None:
                # Evicted from memory but persisted: still answerable.
                hit = self.store.get(key)
                if hit is not None:
                    return {"ticket": ticket, "key": key, "state": DONE,
                            "events": []}
            return None
        return {
            "ticket": ticket,
            "key": entry.key,
            "state": entry.state,
            "shard": entry.shard_id,
            "redeliveries": entry.redeliveries,
            "events": list(entry.events),
        }

    async def result(self, ticket: str) -> Any:
        """Wait for and return the ticket's result (or raise its error)."""
        entry = self._entry_for_ticket(ticket)
        if entry is None:
            key = self._tickets.get(ticket)
            if key is not None and self.store is not None:
                hit = self.store.get(key)
                if hit is not None:
                    return hit
            raise ServiceError(f"unknown ticket {ticket!r}")
        if entry.finished is not None:
            await entry.finished.wait()
        if entry.state == FAILED:
            raise entry.error or JobExecutionError(
                f"job {entry.key} failed"
            )
        return entry.result

    async def run_jobs(self, jobs: List[Any]) -> List[Any]:
        """Submit a whole campaign, resubmitting shed jobs until done.

        The convenience path used by ``Campaign.run(service=...)`` in
        process and by the chaos flood: overloads back off for the
        server's ``retry_after`` hint and resubmit, so the campaign
        always completes.
        """
        tickets: List[Optional[str]] = [None] * len(jobs)
        for index, job in enumerate(jobs):
            while True:
                try:
                    tickets[index] = self.submit(job)["ticket"]
                    break
                except ServiceOverloadError as overload:
                    await self.clock.sleep(
                        max(overload.retry_after, self.config.poll_tick)
                    )
        results = []
        for ticket in tickets:
            results.append(await self.result(ticket))
        return results

    def healthz(self) -> Dict:
        """Liveness/degradation summary for the ``/healthz`` endpoint."""
        shards = []
        for handle in self.shards:
            shards.append({
                "shard": handle.shard_id,
                "alive": handle.alive,
                "retired": handle.retired,
                "breaker": handle.breaker.state if handle.breaker else None,
                "queued": len(handle.queue),
                "busy": handle.current is not None,
                "restarts": handle.restarts,
            })
        healthy = sum(
            1 for s in shards
            if s["alive"] and not s["retired"] and s["breaker"] != "open"
        )
        status = "ok" if healthy == len(shards) else (
            "degraded" if healthy else "serial-fallback"
        )
        return {"status": status, "healthy_shards": healthy,
                "shards": shards}

    # ------------------------------------------------------------------
    # the poll loop: responses, health, restarts, dispatch
    # ------------------------------------------------------------------

    async def _poll_loop(self) -> None:
        while True:
            self._drain_responses()
            self._check_health()
            self._restart_due_shards()
            self._dispatch()
            await self._degrade_stranded()
            self.metrics.queue_depth = sum(
                len(handle.queue) for handle in self.shards
            )
            await self.clock.sleep(self.config.poll_tick)

    def _drain_responses(self) -> None:
        for handle in self.shards:
            if handle.response_queue is None:
                continue
            while True:
                try:
                    message = handle.response_queue.get_nowait()
                except (queue_module.Empty, OSError):
                    break
                self._handle_message(handle, message)

    def _handle_message(self, handle: ShardHandle, message) -> None:
        now = self.clock.now()
        tag = message[1]
        key = message[2]
        entry = self._entries.get(key)
        if entry is None or entry.shard_id != handle.shard_id:
            return  # stale answer from a shard we already failed over
        if tag == MSG_DONE:
            _, _, _, payload, digest, evictions = message
            handle.trace_evictions = max(handle.trace_evictions, evictions)
            self.metrics.trace_evictions = sum(
                h.trace_evictions for h in self.shards
            )
            if payload_digest(payload) != digest:
                self.metrics.corrupt_payloads += 1
                entry.record("corrupt_payload", now, shard=handle.shard_id)
                self._shard_failed(
                    handle,
                    ShardFailureError(
                        f"shard {handle.shard_id} returned a corrupt "
                        f"payload for {key[:12]}",
                        shard_id=handle.shard_id,
                        reason="corrupt",
                    ),
                    kill=False,
                )
                return
            result = pickle.loads(payload)
            handle.current = None
            self._complete(entry, result, handle)
        elif tag == MSG_ERROR:
            info = message[3]
            handle.current = None
            # The *shard* behaved; the *job* failed.  Mirrors executor
            # policy: guard violations are deterministic, never retried.
            handle.breaker.record_success()
            if not info["guard"] and entry.attempts < self.config.retries:
                entry.attempts += 1
                self.metrics.retries += 1
                delay = backoff_delay(
                    entry.attempts,
                    base=self.config.backoff_base,
                    cap=self.config.backoff_cap,
                    seed=self.config.seed,
                    key=entry.key,
                )
                self.metrics.backoff_total_s += delay
                entry.state = QUEUED
                entry.shard_id = None
                entry.record("retry", now, attempt=entry.attempts,
                             backoff=round(delay, 6))
                self._route(entry)
                return
            self._fail(entry, info)

    def _complete(self, entry: _Entry, result: Any,
                  handle: Optional[ShardHandle]) -> None:
        now = self.clock.now()
        entry.state = DONE
        entry.result = result
        entry.record(
            "done", now,
            shard=handle.shard_id if handle else None,
            stolen=entry.stolen,
        )
        if handle is not None:
            handle.breaker.record_success()
            self.metrics.per_shard_completed[handle.shard_id] += 1
        self.metrics.completed += 1
        if self.store is not None and hasattr(result, "to_dict"):
            spec = entry.job.spec() if hasattr(entry.job, "spec") else None
            self.store.put(entry.key, result, spec=spec)
        self._finish(entry)

    def _fail(self, entry: _Entry, info: Dict) -> None:
        now = self.clock.now()
        entry.state = FAILED
        error = JobExecutionError(
            f"job {entry.key[:12]} failed after {entry.attempts + 1} "
            f"attempt(s): {info['type']}: {info['message']}"
        )
        error.traceback_text = info.get("traceback")
        entry.error = error
        entry.record("failed", now, error=info["type"], guard=info["guard"])
        self.metrics.failed += 1
        if info["guard"] and self.store is not None:
            spec = entry.job.spec() if hasattr(entry.job, "spec") else None
            # Persist the structured failure exactly like the executor:
            # deterministic integrity failures are evidence, not cache.
            self.store.record_failure(
                entry.key, error, spec=spec,
                traceback_text=info.get("traceback"),
            )
        self._finish(entry)

    def _finish(self, entry: _Entry) -> None:
        self._entries.pop(entry.key, None)
        self._remember_done(entry)
        if entry.finished is not None:
            entry.finished.set()
            entry.finished = None

    def _remember_done(self, entry: _Entry) -> None:
        self._done[entry.key] = entry
        self._done.move_to_end(entry.key)
        while len(self._done) > self.config.result_cache_entries:
            self._done.popitem(last=False)
            self.metrics.result_evictions += 1

    # -- health / failover ---------------------------------------------

    def _check_health(self) -> None:
        now = self.clock.now()
        for handle in self.shards:
            if handle.retired or handle.process is None:
                continue
            if handle.restart_at is not None:
                continue  # already down, waiting for its restart slot
            if not handle.alive:
                self.metrics.shard_crashes += 1
                self._shard_failed(
                    handle,
                    ShardFailureError(
                        f"shard {handle.shard_id} process died "
                        f"(exitcode {handle.process.exitcode})",
                        shard_id=handle.shard_id,
                        reason="crash",
                    ),
                    kill=False,
                )
                continue
            stale = handle.observe_heartbeat(now)
            if stale > self.config.heartbeat_timeout:
                self.metrics.heartbeat_timeouts += 1
                self._shard_failed(
                    handle,
                    ShardFailureError(
                        f"shard {handle.shard_id} heartbeat stale for "
                        f"{stale:.2f}s (timeout "
                        f"{self.config.heartbeat_timeout}s)",
                        shard_id=handle.shard_id,
                        reason="hung",
                    ),
                    kill=True,
                )

    def _shard_failed(self, handle: ShardHandle, error: ShardFailureError,
                      kill: bool) -> None:
        """Common failover path: breaker, redelivery, restart schedule."""
        now = self.clock.now()
        if handle.breaker.record_failure():
            self.metrics.breaker_trips += 1
        stop_shard(handle, kill=kill)
        handle.process = None
        entry = handle.current
        handle.current = None
        if entry is not None:
            entry.redeliveries += 1
            self.metrics.redeliveries += 1
            entry.record(
                "redelivered", now,
                shard=handle.shard_id, reason=error.reason,
                redelivery=entry.redeliveries,
            )
            entry.state = QUEUED
            entry.shard_id = None
            if entry.redeliveries > self.config.max_redeliveries:
                entry.record("serial_fallback", now)
                # Routed by _degrade_stranded on the next tick.
                entry.stolen = False
                self._serial_queue_mark(entry)
            else:
                self._route_avoiding(entry, handle.shard_id)
        handle.restarts += 1
        if handle.restarts > self.config.max_restarts:
            handle.retired = True
            handle.restart_at = None
            self._reassign_queue(handle)
        else:
            self.metrics.shard_restarts += 1
            delay = backoff_delay(
                handle.restarts,
                base=self.config.backoff_base,
                cap=self.config.backoff_cap,
                seed=self.config.seed,
                key=f"shard-{handle.shard_id}",
            )
            self.metrics.backoff_total_s += delay
            handle.restart_at = now + delay

    def _serial_queue_mark(self, entry: _Entry) -> None:
        entry.shard_id = None
        entry.state = QUEUED
        self._serial_pending.append(entry)

    def _route_avoiding(self, entry: _Entry, avoid: int) -> None:
        others = [
            handle for handle in self.shards
            if handle.shard_id != avoid and not handle.retired
        ]
        if not others:
            self._serial_queue_mark(entry)
            return
        target = min(others, key=lambda handle: len(handle.queue))
        target.queue.append(entry)

    def _reassign_queue(self, handle: ShardHandle) -> None:
        """A retired shard's queued work moves to surviving queues."""
        stranded = list(handle.queue)
        handle.queue.clear()
        for entry in stranded:
            self._route_avoiding(entry, handle.shard_id)

    def _restart_due_shards(self) -> None:
        now = self.clock.now()
        for handle in self.shards:
            if handle.retired or handle.restart_at is None:
                continue
            if now < handle.restart_at:
                continue
            # Replacement workers never carry the chaos fault: faults
            # fire once, so recovery is observable.
            fresh = self._spawn(handle.shard_id, with_fault=False)
            handle.process = fresh.process
            handle.request_queue = fresh.request_queue
            handle.response_queue = fresh.response_queue
            handle.heartbeat = fresh.heartbeat
            handle.last_beat = -1
            handle.last_beat_changed = now
            handle.restart_at = None

    # -- dispatch + stealing -------------------------------------------

    def _dispatch(self) -> None:
        now = self.clock.now()
        for handle in self.shards:
            if not handle.idle or handle.retired:
                continue
            if not handle.breaker.allow():
                continue
            entry = self._next_for(handle)
            if entry is None:
                continue
            entry.state = RUNNING
            entry.shard_id = handle.shard_id
            entry.record("dispatched", now, shard=handle.shard_id,
                         stolen=entry.stolen)
            handle.current = entry
            try:
                handle.request_queue.put(("job", entry.key, entry.job))
            except (OSError, ValueError) as error:
                self._shard_failed(
                    handle,
                    ShardFailureError(
                        f"shard {handle.shard_id} request queue broken: "
                        f"{error}",
                        shard_id=handle.shard_id,
                        reason="crash",
                    ),
                    kill=True,
                )

    def _next_for(self, handle: ShardHandle) -> Optional[_Entry]:
        if handle.queue:
            return handle.queue.pop(0)
        # Work stealing: take the *tail* of the longest other queue (the
        # victim keeps its hot head), deterministic tie-break by id.
        victims = [
            other for other in self.shards
            if other.shard_id != handle.shard_id and other.queue
        ]
        if not victims:
            return None
        victim = max(
            victims, key=lambda other: (len(other.queue), -other.shard_id)
        )
        entry = victim.queue.pop()
        entry.stolen = True
        self.metrics.steals += 1
        return entry

    # -- terminal degradation ------------------------------------------

    async def _degrade_stranded(self) -> None:
        """Serial in-process execution: the ladder's last rung."""
        pending = self._serial_pending
        fleet_dead = all(
            handle.retired or (handle.process is None
                               and handle.restart_at is None)
            for handle in self.shards
        )
        if fleet_dead:
            for handle in self.shards:
                stranded = list(handle.queue)
                handle.queue.clear()
                pending.extend(stranded)
        while pending:
            entry = pending.pop(0)
            if entry.state == DONE or entry.state == FAILED:
                continue
            await self._run_serial(entry)

    async def _run_serial(self, entry: _Entry) -> None:
        now = self.clock.now()
        entry.state = RUNNING
        entry.shard_id = None
        entry.record("serial_run", now)
        self.metrics.serial_fallbacks += 1
        loop = asyncio.get_running_loop()
        async with self._serial_lock:
            try:
                result = await loop.run_in_executor(None, entry.job.run)
            except Exception as exc:
                from repro.service.shard import _error_info

                self._fail(entry, _error_info(exc))
                return
        self._complete(entry, result, handle=None)
