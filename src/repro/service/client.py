"""Blocking HTTP client for the simulation service.

``ServiceClient`` is the consumer half of the wire protocol: it submits
jobs, honors the server's backpressure (a 429 carries the retry-after
hint; :meth:`run_jobs` sleeps it off through the injected clock and
resubmits), and rehydrates results into the same
:class:`SimulationResult` objects a local run produces — so
``Campaign.run(service=...)`` is a drop-in for the in-process executor
path and aggregates bit-identically.

Pure stdlib (``http.client``); connections are one-shot, matching the
server's ``Connection: close`` discipline.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, List, Optional

from repro.errors import (
    ConfigError,
    JobExecutionError,
    ServiceError,
    ServiceOverloadError,
)
from repro.runtime.clock import Clock, MonotonicClock
from repro.service.wire import job_to_wire, result_from_wire


class ServiceClient:
    """Talk to a ``repro serve`` instance at ``host:port``."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        timeout: float = 120.0,
        clock: Optional[Clock] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.clock = clock or MonotonicClock()

    @classmethod
    def from_url(cls, url: str, **kwargs) -> "ServiceClient":
        """``http://host:port`` (or bare ``host:port``) → client."""
        stripped = url.split("//", 1)[-1].rstrip("/")
        host, _, port = stripped.partition(":")
        if not host or not port.isdigit():
            raise ConfigError(
                f"service URL must look like http://host:port, got {url!r}"
            )
        return cls(host=host, port=int(port), **kwargs)

    # ------------------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: Optional[Dict] = None) -> Dict:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = json.dumps(payload).encode() if payload is not None \
                else None
            connection.request(
                method, path, body=body,
                headers={"Content-Type": "application/json"} if body
                else {},
            )
            response = connection.getresponse()
            raw = response.read()
        finally:
            connection.close()
        try:
            decoded = json.loads(raw.decode() or "{}")
        except json.JSONDecodeError as bad:
            raise ServiceError(
                f"{method} {path}: non-JSON response "
                f"(status {response.status}): {bad}"
            ) from bad
        if response.status == 429:
            raise ServiceOverloadError(
                decoded.get("message", "service overloaded"),
                retry_after=float(decoded.get("retry_after", 0.1)),
                reason=decoded.get("reason", "queue"),
            )
        if response.status == 400:
            raise ConfigError(decoded.get("message", "bad request"))
        if response.status == 404:
            raise ServiceError(
                decoded.get("message", f"not found: {path}")
            )
        if response.status >= 500:
            if decoded.get("error") == "job_failed":
                error = JobExecutionError(decoded.get("message", "failed"))
                error.traceback_text = decoded.get("traceback")
                raise error
            raise ServiceError(
                f"{method} {path}: {decoded.get('error', response.status)}"
                f": {decoded.get('message', '')}"
            )
        return decoded

    # ------------------------------------------------------------------

    def submit(self, job: Any) -> Dict:
        """Submit one job; returns the ticket descriptor.

        Raises :class:`ServiceOverloadError` when the server sheds —
        callers that want completion should use :meth:`run_jobs`.
        """
        return self._request("POST", "/submit", job_to_wire(job))

    def submit_with_backoff(self, job: Any, max_tries: int = 64) -> Dict:
        """Submit, sleeping off 429s via the server's retry-after hint."""
        last: Optional[ServiceOverloadError] = None
        for _ in range(max_tries):
            try:
                return self.submit(job)
            except ServiceOverloadError as overload:
                last = overload
                self.clock.block(max(overload.retry_after, 0.01))
        raise last if last is not None else ServiceError(
            "submit_with_backoff: no attempt was made"
        )

    def status(self, ticket: str) -> Dict:
        return self._request("GET", f"/status/{ticket}")

    def result(self, ticket: str) -> Any:
        """Block until the ticket settles; returns the rehydrated result."""
        decoded = self._request("GET", f"/result/{ticket}")
        payload = decoded.get("result")
        if isinstance(payload, dict) and "counters" in payload:
            return result_from_wire(payload)
        return payload

    def run_jobs(self, jobs: List[Any]) -> List[Any]:
        """Run a whole campaign against the service, honoring shedding."""
        tickets = [self.submit_with_backoff(job)["ticket"] for job in jobs]
        return [self.result(ticket) for ticket in tickets]

    def healthz(self) -> Dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict:
        return self._request("GET", "/metrics")
