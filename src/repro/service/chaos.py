"""Serving-layer fault injection — proves degradation never changes results.

The guard chaos campaign (:mod:`repro.guard.chaos`) shows the *model*
layer detects simulation bugs; this module shows the *serving* layer
survives infrastructure faults without perturbing a single bit.  For
each fault class in :data:`~repro.service.faults.SERVICE_FAULT_CLASSES`
it runs a small real-simulation campaign against a live shard fleet
with the fault armed, then verifies two things:

1. **bit-identity** — every result equals a clean in-process
   ``job.run()`` of the same spec (the service may reroute, redeliver,
   restart and degrade, but placement must never leak into results);
2. **visible degradation** — the expected ladder rung shows up in
   :class:`~repro.service.metrics.ServiceMetrics` (a crash that nothing
   counted is a fault the operator cannot see).

Faults are deterministic (n-th job on a named shard; the flood is a
fixed burst against a fixed token bucket), so a failing class replays
exactly.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.presets import named_config
from repro.errors import ConfigError
from repro.runtime.job import SimulationJob
from repro.service.config import ServiceConfig
from repro.service.coordinator import SimulationService
from repro.service.faults import (
    SERVICE_FAULT_CLASSES,
    SHARD_FAULTS,
    ServiceFaultSpec,
)

#: Metrics counters that must be nonzero for each fault class — the
#: "degradation is visible" contract, checked counter by counter.
DEGRADATION_MARKERS = {
    "shard_kill": ("shard_crashes", "redeliveries", "shard_restarts"),
    "heartbeat_freeze": ("heartbeat_timeouts", "redeliveries",
                         "shard_restarts"),
    "corrupt_result": ("corrupt_payloads", "redeliveries",
                       "shard_restarts"),
    "submission_flood": ("shed", "deduplicated"),
}


@dataclass
class ServiceFaultOutcome:
    """How one serving-layer fault class fared."""

    kind: str
    completed: int
    expected: int
    identical: bool
    markers: Dict[str, int] = field(default_factory=dict)
    missing_markers: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return (
            self.completed == self.expected
            and self.identical
            and not self.missing_markers
        )


@dataclass
class ServiceChaosReport:
    """Result of one serving-layer fault-injection campaign."""

    outcomes: List[ServiceFaultOutcome]

    @property
    def all_passed(self) -> bool:
        return all(outcome.passed for outcome in self.outcomes)

    def summary(self) -> str:
        lines = [
            f"{'fault':<18} {'done':>5} {'identical':>9}  degradation markers",
        ]
        for outcome in self.outcomes:
            markers = ", ".join(
                f"{name}={value}"
                for name, value in sorted(outcome.markers.items())
            )
            if outcome.missing_markers:
                markers += (
                    "  MISSING: " + ", ".join(outcome.missing_markers)
                )
            lines.append(
                f"{outcome.kind:<18} "
                f"{outcome.completed}/{outcome.expected:<3} "
                f"{'yes' if outcome.identical else 'NO':>9}  {markers}"
            )
        lines.append(
            "verdict: "
            + ("all faults survived bit-identically" if self.all_passed
               else "SERVICE GAP — see above")
        )
        return "\n".join(lines)


def chaos_jobs(count: int = 6, seed: int = 0) -> List[SimulationJob]:
    """Small real-simulation jobs (distinct keys, ~tens of ms each)."""
    from repro.workloads.lumibench import SCENE_NAMES

    config = named_config("RB_8+SH_8+SK+RA")
    jobs = []
    for index in range(count):
        jobs.append(SimulationJob(
            scene=SCENE_NAMES[index % len(SCENE_NAMES)],
            config=config,
            width=8,
            height=8,
            spp=1,
            max_bounces=2,
            seed=seed,
        ))
    return jobs


def _chaos_service_config(kind: str, seed: int) -> ServiceConfig:
    """Fast-recovery knobs so a fault class settles in well under a second
    of timeouts; the flood additionally gets a starved token bucket and
    shallow queues so shedding actually fires."""
    if kind == "submission_flood":
        return ServiceConfig(
            shards=2, queue_depth=2, rate=40.0, burst=3,
            heartbeat_interval=0.02, heartbeat_timeout=1.0,
            poll_tick=0.01, backoff_base=0.01, backoff_cap=0.05,
            breaker_cooldown=0.05, seed=seed,
        )
    return ServiceConfig(
        shards=2, queue_depth=16, rate=500.0, burst=128,
        heartbeat_interval=0.02, heartbeat_timeout=0.35,
        poll_tick=0.01, backoff_base=0.01, backoff_cap=0.05,
        breaker_cooldown=0.05, seed=seed,
    )


async def _run_one_fault(
    kind: str, jobs: List[SimulationJob], baseline: List[Dict], seed: int
) -> ServiceFaultOutcome:
    fault = None
    if kind in SHARD_FAULTS:
        fault = ServiceFaultSpec(kind=kind, shard=0, trigger=1)
    submissions = list(jobs)
    if kind == "submission_flood":
        # Flood: every job submitted three times over a starved bucket —
        # coalescing and shedding must both engage, results must not care.
        submissions = list(jobs) * 3
    config = _chaos_service_config(kind, seed)
    async with SimulationService(config, fault=fault) as service:
        results = await service.run_jobs(submissions)
        metrics = service.metrics.as_dict()
    # A duplicate never re-runs: it coalesces onto the in-flight entry
    # or hits the done cache, depending on timing.  Either counts.
    metrics["deduplicated"] = (
        metrics["coalesced"] + metrics["memory_hits"] + metrics["cache_hits"]
    )
    expected_dicts = baseline * 3 if kind == "submission_flood" else baseline
    identical = (
        len(results) == len(expected_dicts)
        and all(
            result is not None and result.to_dict() == expected
            for result, expected in zip(results, expected_dicts)
        )
    )
    markers = {}
    missing = []
    for name in DEGRADATION_MARKERS[kind]:
        markers[name] = metrics.get(name, 0)
        if not markers[name]:
            missing.append(name)
    return ServiceFaultOutcome(
        kind=kind,
        completed=sum(1 for result in results if result is not None),
        expected=len(submissions),
        identical=identical,
        markers=markers,
        missing_markers=missing,
    )


def run_service_chaos_campaign(
    kinds: Optional[Sequence[str]] = None,
    seed: int = 0,
    job_count: int = 6,
) -> ServiceChaosReport:
    """Inject every serving-layer fault class and verify recovery.

    Returns a :class:`ServiceChaosReport`; ``report.all_passed`` is the
    verdict the service CI job asserts.
    """
    kinds = tuple(kinds) if kinds else SERVICE_FAULT_CLASSES
    for kind in kinds:
        if kind not in SERVICE_FAULT_CLASSES:
            raise ConfigError(
                f"unknown service fault kind {kind!r}; "
                f"choose from {', '.join(SERVICE_FAULT_CLASSES)}"
            )
    jobs = chaos_jobs(count=job_count, seed=seed)
    # The clean-room truth: serial in-process runs of the same specs.
    baseline = [job.run().to_dict() for job in jobs]
    outcomes = []
    for kind in kinds:
        outcomes.append(
            asyncio.run(_run_one_fault(kind, jobs, baseline, seed))
        )
    return ServiceChaosReport(outcomes=outcomes)
