"""Worker shards: one process per shard, heartbeats, integrity digests.

A shard is a long-lived worker process (same execution semantics as the
:mod:`repro.runtime.executor` pool workers: it calls ``job.run()`` on
picklable content-addressed jobs) plus the machinery fault tolerance
needs:

- a **heartbeat counter** (a shared ``multiprocessing.Value``)
  incremented by a daemon thread every ``heartbeat_interval`` — it keeps
  beating while a long job computes, so "busy" and "hung" are
  distinguishable.  The counter deliberately carries no timestamp: the
  coordinator tracks *when the count last changed* on its own clock, so
  no cross-process clock comparison ever happens;
- an **integrity digest**: results travel back as pickled bytes plus
  their SHA-256, so a payload corrupted in flight (or by a sick worker)
  is detected before it can reach a client or the store;
- deterministic **fault injection** hooks for the ``service`` chaos
  family (:mod:`repro.service.faults`) — kill, heartbeat-freeze and
  payload corruption fire on the n-th job of the configured shard,
  exactly once (restarted replacements carry no fault).

The module is inside simlint's timing scope: it never reads the host
clock (interruptible ``Event.wait`` provides the heartbeat cadence) and
every failure is reported as a structured message, never a bare raise.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import pickle
import threading
import traceback
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import GuardViolationError
from repro.service.faults import ServiceFaultSpec

#: Exit code a chaos-killed worker dies with (distinguishable from 0).
KILL_EXIT_CODE = 17

#: Message tags on the shard's response queue.
MSG_DONE = "done"
MSG_ERROR = "error"


def payload_digest(payload: bytes) -> str:
    """The integrity checksum carried beside every result payload."""
    return hashlib.sha256(payload).hexdigest()


def _heartbeat_loop(value, interval: float, stop, frozen) -> None:
    """Daemon thread: bump the shared counter until stopped or frozen."""
    while not stop.wait(interval):
        if frozen.is_set():
            continue
        with value.get_lock():
            value.value += 1


def _error_info(exc: Exception) -> dict:
    """A structured, picklable description of a job failure."""
    diagnostics = getattr(exc, "diagnostics", None)
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "guard": isinstance(exc, GuardViolationError),
        "diagnostics": diagnostics() if callable(diagnostics) else {},
        "traceback": "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        ),
    }


def shard_main(
    shard_id: int,
    request_queue,
    response_queue,
    heartbeat,
    heartbeat_interval: float,
    fault: Optional[ServiceFaultSpec] = None,
) -> None:
    """The worker-process entry point.

    Protocol: the coordinator sends ``("job", key, job)`` and
    ``("stop",)`` on ``request_queue``; the worker answers with
    ``(shard_id, "done", key, payload, digest, trace_evictions)`` or
    ``(shard_id, "error", key, error_info)`` on ``response_queue``.
    """
    import os

    from repro.runtime.job import trace_memo_evictions

    stop = threading.Event()
    frozen = threading.Event()
    beat = threading.Thread(
        target=_heartbeat_loop,
        args=(heartbeat, heartbeat_interval, stop, frozen),
        daemon=True,
    )
    beat.start()
    jobs_executed = 0
    while True:
        message = request_queue.get()
        if message[0] == "stop":
            break
        _, key, job = message
        jobs_executed += 1
        fault_due = (
            fault is not None
            and fault.shard == shard_id
            and jobs_executed == fault.trigger
        )
        if fault_due and fault.kind == "heartbeat_freeze":
            # The hung-shard scenario: stop proving liveness and stop
            # making progress.  Only the coordinator's kill ends this.
            frozen.set()
            threading.Event().wait()
        try:
            result = job.run()
        except Exception as exc:
            response_queue.put((shard_id, MSG_ERROR, key, _error_info(exc)))
            continue
        if fault_due and fault.kind == "shard_kill":
            os._exit(KILL_EXIT_CODE)
        payload = pickle.dumps(result)
        digest = payload_digest(payload)
        if fault_due and fault.kind == "corrupt_result":
            # Flip one byte *after* digesting: the checksum must catch it.
            payload = payload[:-1] + bytes([payload[-1] ^ 0xFF])
        response_queue.put(
            (shard_id, MSG_DONE, key, payload, digest,
             trace_memo_evictions())
        )
    stop.set()


@dataclass
class ShardHandle:
    """The coordinator's view of one worker shard."""

    shard_id: int
    process: Any = None
    request_queue: Any = None
    response_queue: Any = None
    heartbeat: Any = None
    #: Last heartbeat count observed, and the coordinator-clock time it
    #: changed (liveness is "the count moved recently").
    last_beat: int = -1
    last_beat_changed: float = 0.0
    #: Jobs handed to this shard and not yet answered (at most one).
    current: Optional[Any] = None
    #: Lifetime restarts; beyond the budget the shard stays down.
    restarts: int = 0
    #: Coordinator-clock time before which the shard must not be
    #: restarted (deterministic backoff), or ``None`` when running.
    restart_at: Optional[float] = None
    #: Permanently retired (restart budget exhausted).
    retired: bool = False
    #: Highest trace-memo eviction count reported by this worker.
    trace_evictions: int = 0
    breaker: Any = None
    #: Queued jobs routed to this shard (the coordinator owns it).
    queue: list = field(default_factory=list)

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    @property
    def idle(self) -> bool:
        return self.alive and self.current is None

    def observe_heartbeat(self, now: float) -> float:
        """Update liveness bookkeeping; returns seconds since last beat."""
        count = self.heartbeat.value if self.heartbeat is not None else -1
        if count != self.last_beat:
            self.last_beat = count
            self.last_beat_changed = now
        return now - self.last_beat_changed


def spawn_shard(
    shard_id: int,
    heartbeat_interval: float,
    fault: Optional[ServiceFaultSpec] = None,
    context=None,
) -> ShardHandle:
    """Start one worker process and return its handle."""
    ctx = context if context is not None else multiprocessing.get_context()
    request_queue = ctx.Queue()
    response_queue = ctx.Queue()
    heartbeat = ctx.Value("Q", 0)
    process = ctx.Process(
        target=shard_main,
        args=(shard_id, request_queue, response_queue, heartbeat,
              heartbeat_interval, fault),
        daemon=True,
    )
    process.start()
    return ShardHandle(
        shard_id=shard_id,
        process=process,
        request_queue=request_queue,
        response_queue=response_queue,
        heartbeat=heartbeat,
    )


def stop_shard(handle: ShardHandle, kill: bool = False) -> None:
    """Shut a worker down (graceful stop, or kill for hung workers)."""
    if handle.process is None:
        return
    if not kill and handle.alive:
        try:
            handle.request_queue.put(("stop",))
        except (OSError, ValueError):
            kill = True
    if kill and handle.alive:
        handle.process.kill()
    handle.process.join(timeout=2.0)
    # A killed worker may strand its queue feeder threads; cancel them so
    # interpreter shutdown never blocks on a dead shard's buffers.
    for queue in (handle.request_queue, handle.response_queue):
        try:
            queue.cancel_join_thread()
        except (AttributeError, OSError):
            continue
