"""The ``service`` fault family: serving-layer chaos specs.

Extends the chaos methodology of :mod:`repro.guard.chaos` from the
simulator core up to the serving layer.  Each fault is deterministic —
it names a shard and a trigger (the n-th job that shard executes), so a
chaos campaign replays exactly — and each models one real operational
failure:

``shard_kill``
    the worker process exits hard (``os._exit``) mid-job, as if OOM-
    killed: the coordinator must notice the death, restart the shard and
    redeliver the in-flight job;
``heartbeat_freeze``
    the worker stops heartbeating and hangs: the health checker must
    declare it dead on schedule and recover the same way;
``corrupt_result``
    the worker flips a byte in the result payload after digesting it:
    the coordinator's checksum must reject it and redeliver;
``submission_flood``
    a client-side fault — a burst of submissions beyond the admission
    limits: the service must shed with structured
    :class:`~repro.errors.ServiceOverloadError` rather than queue
    unboundedly, and still complete every job on resubmission.

This module is import-light on purpose: :mod:`repro.guard` re-exports
the family for its fault registry without pulling in the service.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

#: Faults injected inside a worker shard.
SHARD_FAULTS = ("shard_kill", "heartbeat_freeze", "corrupt_result")

#: Faults injected at the submission boundary.
CLIENT_FAULTS = ("submission_flood",)

#: Every serving-layer fault class.
SERVICE_FAULT_CLASSES = SHARD_FAULTS + CLIENT_FAULTS


@dataclass(frozen=True)
class ServiceFaultSpec:
    """One deterministic serving-layer fault.

    ``shard`` picks the victim shard; ``trigger`` counts jobs executed
    by that shard before the fault fires (1 = its first job).  Each
    fault fires at most once — the replacement worker spawned after a
    restart carries no fault, so recovery is observable.
    """

    kind: str
    shard: int = 0
    trigger: int = 1

    def __post_init__(self) -> None:
        if self.kind not in SERVICE_FAULT_CLASSES:
            raise ConfigError(
                f"unknown service fault kind {self.kind!r}; "
                f"choose from {', '.join(SERVICE_FAULT_CLASSES)}"
            )
        if self.trigger < 1:
            raise ConfigError("service fault trigger must be >= 1")
        if self.shard < 0:
            raise ConfigError("service fault shard must be >= 0")
