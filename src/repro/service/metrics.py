"""Structured metrics for the sharded simulation service.

Every degradation decision the coordinator takes leaves a counter here,
so the chaos suite can assert not just *that* a campaign completed but
*which* path it took (retry / reroute / shed / serial-fallback), and the
``/metrics`` endpoint can serve the whole ledger as JSON.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List


@dataclass
class ServiceMetrics:
    """Counters for one service instance's lifetime."""

    #: Submissions received (including coalesced, hits and shed).
    submitted: int = 0
    #: Submissions admitted as new simulation work.
    admitted: int = 0
    #: Submissions coalesced onto an identical in-flight job.
    coalesced: int = 0
    #: Submissions served directly from the persistent result store.
    cache_hits: int = 0
    #: Submissions served from the coordinator's in-memory done cache.
    memory_hits: int = 0
    #: Submissions rejected by admission control (rate or queue bound).
    shed: int = 0
    #: ... of which by the token bucket.
    shed_rate: int = 0
    #: ... of which by full queues.
    shed_queue: int = 0

    #: Jobs completed with a result.
    completed: int = 0
    #: Jobs that ended in a (deterministic) failure.
    failed: int = 0
    #: Job-error retries (worker reported an exception; job requeued).
    retries: int = 0
    #: Jobs requeued because their shard crashed, hung or corrupted.
    redeliveries: int = 0
    #: Jobs executed by a shard that stole them from another queue.
    steals: int = 0
    #: Jobs run serially in-process as the terminal degradation mode.
    serial_fallbacks: int = 0
    #: Total seconds of deterministic backoff scheduled (restarts+retries).
    backoff_total_s: float = 0.0

    #: Shard processes found dead (crash) by the health checker.
    shard_crashes: int = 0
    #: Shards declared hung after a heartbeat timeout.
    heartbeat_timeouts: int = 0
    #: Result payloads rejected by the integrity checksum.
    corrupt_payloads: int = 0
    #: Shard worker restarts performed.
    shard_restarts: int = 0
    #: Circuit breakers tripped open.
    breaker_trips: int = 0
    #: Breakers closed again after a successful half-open probe.
    breaker_recoveries: int = 0

    #: Completed results evicted from the in-memory LRU done cache.
    result_evictions: int = 0
    #: Traced-workload memo evictions reported by worker shards.
    trace_evictions: int = 0
    #: Highest total queued depth observed.
    queue_depth_peak: int = 0
    #: Current queued depth (transient gauge).
    queue_depth: int = 0

    #: Per-shard job completion counts (index = shard id).
    per_shard_completed: List[int] = field(default_factory=list)

    def as_dict(self) -> Dict:
        """The full ledger as a JSON-ready dict (``/metrics`` payload)."""
        return asdict(self)

    def summary(self) -> str:
        """One-line human-readable account."""
        parts = [
            f"{self.submitted} submitted",
            f"{self.completed} completed",
            f"{self.cache_hits + self.memory_hits} cached",
            f"{self.coalesced} coalesced",
        ]
        if self.shed:
            parts.append(f"{self.shed} shed")
        if self.redeliveries:
            parts.append(f"{self.redeliveries} redelivered")
        if self.shard_restarts:
            parts.append(f"{self.shard_restarts} shard restarts")
        if self.serial_fallbacks:
            parts.append(f"{self.serial_fallbacks} serial fallbacks")
        if self.failed:
            parts.append(f"{self.failed} failed")
        return ", ".join(parts)
