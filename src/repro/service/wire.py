"""JSON wire format for jobs and results (HTTP API <-> client).

A submitted job travels as its resolved field dict (not the content
key): the server rebuilds the exact :class:`SimulationJob`, re-derives
the key itself, and therefore never trusts a client-supplied hash.
Results reuse :meth:`SimulationResult.to_dict` — the same payload the
persistent store holds.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict

from repro.core.presets import named_config
from repro.core.results import SimulationResult
from repro.errors import ConfigError
from repro.gpu.config import GPUConfig
from repro.runtime.job import SimulationJob

#: SimulationJob fields a submission may set (everything but the config).
_JOB_FIELDS = (
    "scene", "width", "height", "spp", "max_bounces", "seed",
    "verify_pops", "guard", "max_cycles", "strategy", "backend",
)


def job_to_wire(job: SimulationJob) -> Dict:
    """The submission payload for one job."""
    wire = {name: getattr(job, name) for name in _JOB_FIELDS}
    wire["config"] = asdict(job.config)
    return wire


def job_from_wire(wire: Dict) -> SimulationJob:
    """Rebuild a job from a submission payload.

    ``config`` may be a preset label (``"RB_8+SH_8+SK+RA"``) or a full
    field dict; unknown fields anywhere raise
    :class:`~repro.errors.ConfigError` so a bad submission is a 400, not
    a worker crash.
    """
    if not isinstance(wire, dict):
        raise ConfigError("submission body must be a JSON object")
    config_wire = wire.get("config", "RB_8+SH_8+SK+RA")
    if isinstance(config_wire, str):
        config = named_config(config_wire)
    elif isinstance(config_wire, dict):
        try:
            config = GPUConfig(**config_wire)
        except TypeError as error:
            raise ConfigError(f"bad config fields: {error}") from error
    else:
        raise ConfigError("config must be a preset label or a field dict")
    fields = {}
    for name in _JOB_FIELDS:
        if name in wire:
            fields[name] = wire[name]
    unknown = sorted(set(wire) - set(_JOB_FIELDS) - {"config"})
    if unknown:
        raise ConfigError(f"unknown job fields: {', '.join(unknown)}")
    if "scene" not in fields:
        raise ConfigError("submission needs a scene")
    scene = fields.pop("scene")
    try:
        return SimulationJob(scene=str(scene).upper(), config=config,
                             width=int(fields.pop("width", 24)),
                             height=int(fields.pop("height", 24)),
                             **fields)
    except (TypeError, ValueError) as error:
        raise ConfigError(f"bad job fields: {error}") from error


def result_to_wire(result: SimulationResult) -> Dict:
    return result.to_dict()


def result_from_wire(wire: Dict) -> SimulationResult:
    return SimulationResult.from_dict(wire)
