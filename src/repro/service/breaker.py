"""Per-shard circuit breaker.

A shard that keeps failing (crashing, hanging, corrupting payloads)
should stop receiving work *before* it has chewed through the redelivery
budget of every job routed to it.  The breaker implements the classic
three-state machine:

- **closed** — healthy; failures are counted, ``threshold`` consecutive
  ones trip the breaker;
- **open** — the shard receives no work for ``cooldown`` seconds (the
  router steals its queue and routes around it);
- **half-open** — after the cooldown one probe job is allowed through;
  success closes the breaker, failure re-opens it for another cooldown.

All transitions are driven by the injected clock, so trip/recovery
schedules are deterministic under test.
"""

from __future__ import annotations

from repro.runtime.clock import Clock

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker on an injected clock."""

    def __init__(
        self, threshold: int, cooldown: float, clock: Clock
    ) -> None:
        self.threshold = max(1, threshold)
        self.cooldown = cooldown
        self._clock = clock
        self._failures = 0
        self._state = CLOSED
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        """``closed``, ``open`` or ``half_open`` (clock-refreshed)."""
        if self._state == OPEN and (
            self._clock.now() - self._opened_at >= self.cooldown
        ):
            self._state = HALF_OPEN
            self._probing = False
        return self._state

    def allow(self) -> bool:
        """May the router hand this shard a job right now?

        In half-open state, exactly one probe is allowed per cooldown
        window; its outcome decides the next state.
        """
        state = self.state
        if state == CLOSED:
            return True
        if state == HALF_OPEN and not self._probing:
            self._probing = True
            return True
        return False

    def allow_routing(self) -> bool:
        """May new work be *queued* here?  (Open breaker: no.)

        Looser than :meth:`allow` — a half-open shard may accumulate a
        queue (the probe decides whether it drains here or is stolen).
        """
        return self.state != OPEN

    def record_success(self) -> bool:
        """A dispatched job finished cleanly; returns True on recovery."""
        recovered = self._state == HALF_OPEN
        self._state = CLOSED
        self._failures = 0
        self._probing = False
        return recovered

    def record_failure(self) -> bool:
        """A shard-level failure happened; returns True if this trips it."""
        if self._state == HALF_OPEN:
            self._state = OPEN
            self._opened_at = self._clock.now()
            self._probing = False
            return True
        self._failures += 1
        if self._state == CLOSED and self._failures >= self.threshold:
            self._state = OPEN
            self._opened_at = self._clock.now()
            return True
        return False
