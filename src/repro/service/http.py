"""Thin stdlib HTTP/JSON front end for the simulation service.

Asyncio-streams HTTP/1.1, one request per connection (``Connection:
close``), no third-party dependencies.  Endpoints:

- ``POST /submit`` — job wire dict → ``202 {ticket, key, state,
  coalesced}``; sheds with ``429`` + ``Retry-After`` when admission
  control rejects; malformed submissions are a ``400``;
- ``GET /status/<ticket>`` — state + structured event log;
- ``GET /result/<ticket>`` — blocks until done; result wire dict, or a
  ``500`` with the structured failure;
- ``GET /stream/<ticket>`` — newline-delimited JSON progress events,
  close-delimited (curl-friendly live view of the degradation ladder);
- ``GET /healthz`` — fleet liveness and degradation status;
- ``GET /metrics`` — the full :class:`ServiceMetrics` counter dict.

The server never parses more HTTP than it needs: request line, headers,
``Content-Length`` body.  It exists so campaigns can run against a
long-lived warm fleet from another process, not to be a web framework.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple

from repro.errors import (
    ConfigError,
    JobExecutionError,
    ReproError,
    ServiceError,
    ServiceOverloadError,
)
from repro.service.coordinator import DONE, FAILED, SimulationService
from repro.service.wire import job_from_wire, result_to_wire

_MAX_BODY = 1 << 20  # 1 MiB is orders of magnitude above any job spec


def _response(
    status: int,
    payload: Dict,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    body = json.dumps(payload, sort_keys=True).encode()
    reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
              404: "Not Found", 429: "Too Many Requests",
              500: "Internal Server Error"}.get(status, "OK")
    headers = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name in sorted(extra_headers or {}):
        headers.append(f"{name}: {extra_headers[name]}")
    return ("\r\n".join(headers) + "\r\n\r\n").encode() + body


class ServiceHTTPServer:
    """Serve one :class:`SimulationService` over HTTP."""

    def __init__(
        self,
        service: SimulationService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    # ------------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            method, path, body = await self._read_request(reader)
        except (asyncio.IncompleteReadError, ValueError, ConfigError):
            writer.close()
            return
        try:
            await self._dispatch(method, path, body, writer)
        except ServiceOverloadError as overload:
            writer.write(_response(
                429,
                {"error": "overloaded", "reason": overload.reason,
                 "retry_after": overload.retry_after,
                 "message": str(overload)},
                {"Retry-After": f"{overload.retry_after:.3f}"},
            ))
        except ConfigError as bad:
            writer.write(_response(400, {"error": "bad_request",
                                         "message": str(bad)}))
        except JobExecutionError as failed:
            writer.write(_response(500, {
                "error": "job_failed",
                "message": str(failed),
                "traceback": getattr(failed, "traceback_text", None),
            }))
        except ReproError as error:
            writer.write(_response(500, {"error": type(error).__name__,
                                         "message": str(error)}))
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # client went away; nothing to salvage
        writer.close()

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> Tuple[str, str, bytes]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            raise ConfigError("malformed request line")
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                content_length = int(value.strip())
        if content_length > _MAX_BODY:
            raise ConfigError("request body too large")
        body = await reader.readexactly(content_length) if content_length \
            else b""
        return method, path, body

    async def _dispatch(self, method: str, path: str, body: bytes,
                        writer: asyncio.StreamWriter) -> None:
        service = self.service
        if method == "POST" and path == "/submit":
            try:
                wire = json.loads(body.decode() or "{}")
            except json.JSONDecodeError as bad:
                raise ConfigError(f"submission is not JSON: {bad}") from bad
            ticket = service.submit(job_from_wire(wire))
            writer.write(_response(202, ticket))
            return
        if method == "GET" and path.startswith("/status/"):
            status = service.status(path[len("/status/"):])
            if status is None:
                writer.write(_response(404, {"error": "unknown_ticket"}))
            else:
                writer.write(_response(200, status))
            return
        if method == "GET" and path.startswith("/result/"):
            ticket = path[len("/result/"):]
            try:
                result = await service.result(ticket)
            except ServiceError as unknown:
                writer.write(_response(404, {"error": "unknown_ticket",
                                             "message": str(unknown)}))
                return
            payload = (result_to_wire(result)
                       if hasattr(result, "to_dict") else result)
            writer.write(_response(200, {"ticket": ticket,
                                         "result": payload}))
            return
        if method == "GET" and path.startswith("/stream/"):
            await self._stream(path[len("/stream/"):], writer)
            return
        if method == "GET" and path == "/healthz":
            writer.write(_response(200, service.healthz()))
            return
        if method == "GET" and path == "/metrics":
            writer.write(_response(200, service.metrics.as_dict()))
            return
        writer.write(_response(404, {"error": "no_such_endpoint"}))

    async def _stream(self, ticket: str,
                      writer: asyncio.StreamWriter) -> None:
        """Newline-JSON progress events until the ticket settles."""
        service = self.service
        if service.status(ticket) is None:
            writer.write(_response(404, {"error": "unknown_ticket"}))
            return
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        sent = 0
        while True:
            status = service.status(ticket)
            if status is None:
                break
            events = status.get("events", [])
            while sent < len(events):
                writer.write(
                    json.dumps(events[sent], sort_keys=True).encode()
                    + b"\n"
                )
                sent += 1
            await writer.drain()
            if status["state"] in (DONE, FAILED):
                writer.write(
                    json.dumps({"event": "settled",
                                "state": status["state"]}).encode() + b"\n"
                )
                break
            await service.clock.sleep(service.config.stream_interval)
