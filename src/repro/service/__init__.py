"""Sharded simulation service: fault-tolerant serving for repro.runtime.

The serving layer turns the batch executor into a long-lived fleet:
process shards with warm trace memos behind an asyncio coordinator
(:mod:`repro.service.coordinator`), admission control that sheds load
explicitly instead of queueing unboundedly, failover that redelivers
in-flight work from crashed or hung shards, and a stdlib HTTP/JSON API
(:mod:`repro.service.http` / :mod:`repro.service.client`) wired into
the CLI as ``repro serve``.

The degradation ladder, in order: **coalesce** (single-flight on the
content key) → **queue** (bounded, work-stealing) → **shed**
(:class:`~repro.errors.ServiceOverloadError` with a retry-after hint)
→ **serial fallback** (in-process execution when the fleet cannot).
Every rung preserves bit-identity — the chaos campaign
(:mod:`repro.service.chaos`) proves it per fault class.
"""

from repro.service.breaker import CircuitBreaker
from repro.service.chaos import (
    ServiceChaosReport,
    ServiceFaultOutcome,
    run_service_chaos_campaign,
)
from repro.service.client import ServiceClient
from repro.service.config import ServiceConfig
from repro.service.coordinator import SimulationService
from repro.service.faults import (
    CLIENT_FAULTS,
    SERVICE_FAULT_CLASSES,
    SHARD_FAULTS,
    ServiceFaultSpec,
)
from repro.service.http import ServiceHTTPServer
from repro.service.limiter import TokenBucket
from repro.service.metrics import ServiceMetrics

__all__ = [
    "CircuitBreaker",
    "CLIENT_FAULTS",
    "SERVICE_FAULT_CLASSES",
    "SHARD_FAULTS",
    "ServiceChaosReport",
    "ServiceClient",
    "ServiceConfig",
    "ServiceFaultOutcome",
    "ServiceFaultSpec",
    "ServiceHTTPServer",
    "ServiceMetrics",
    "SimulationService",
    "TokenBucket",
    "run_service_chaos_campaign",
]
