"""Token-bucket admission control.

The first rung of the service's load-shedding ladder: each admitted
submission spends one token; tokens refill continuously at ``rate`` per
second up to a ``burst`` capacity.  When the bucket is empty the caller
is told *when* to come back (``retry_after``) instead of being queued —
bounded queues plus explicit shedding is what keeps tail latency flat
under overload.

Time comes from the injected clock only, so the limiter is exactly
testable with a :class:`~repro.runtime.clock.ManualClock`.
"""

from __future__ import annotations

from repro.runtime.clock import Clock


class TokenBucket:
    """Continuous-refill token bucket on an injected clock."""

    def __init__(self, rate: float, burst: int, clock: Clock) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock.now()

    def _refill(self) -> None:
        now = self._clock.now()
        elapsed = max(0.0, now - self._updated)
        self._updated = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def try_acquire(self, tokens: float = 1.0) -> float:
        """Spend ``tokens`` if available.

        Returns ``0.0`` on success, otherwise the seconds until enough
        tokens will have refilled (the caller's retry-after hint); the
        bucket is left untouched on failure.
        """
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return 0.0
        return (tokens - self._tokens) / self.rate

    @property
    def available(self) -> float:
        """Tokens currently in the bucket (after refill)."""
        self._refill()
        return self._tokens
