"""Configuration for the sharded simulation service.

One frozen dataclass holds every serving knob: fleet size, queue and
admission bounds, failure-detection timing, retry/redelivery budgets and
the degradation ladder's parameters.  All time values are in seconds on
the injected clock's axis (:mod:`repro.runtime.clock`), so tests drive
them with a :class:`~repro.runtime.clock.ManualClock`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs for one :class:`~repro.service.coordinator.SimulationService`.

    Degradation ladder (in order): identical in-flight requests
    *coalesce* (single-flight); new work *queues* on bounded per-shard
    queues; work beyond ``rate``/``burst``/``queue_depth`` is *shed*
    with a retry-after hint; and when the fleet cannot help (shard dead
    beyond ``max_restarts``, job beyond ``max_redeliveries``) the job
    falls back to *serial in-process execution* — a campaign always
    completes.
    """

    #: Worker shard processes.
    shards: int = 2
    #: Bounded queue depth per shard; totals shards*queue_depth queued.
    queue_depth: int = 16
    #: Token-bucket refill rate (admissions per second).
    rate: float = 500.0
    #: Token-bucket capacity (burst admissions).
    burst: int = 128

    #: Worker heartbeat increment interval.
    heartbeat_interval: float = 0.05
    #: Seconds without a heartbeat change before a shard is declared hung.
    heartbeat_timeout: float = 2.0
    #: Coordinator poll-loop tick.
    poll_tick: float = 0.02

    #: Additional attempts for a job that *errors* deterministically
    #: (mirrors the executor's retry budget; guard violations skip it).
    retries: int = 2
    #: Redeliveries for a job lost to a shard failure (crash/hang/corrupt)
    #: before it degrades to serial in-process execution.
    max_redeliveries: int = 2
    #: Restarts per shard before the coordinator stops reviving it.
    max_restarts: int = 3
    #: Consecutive shard failures that trip its circuit breaker.
    breaker_threshold: int = 2
    #: Seconds a tripped breaker stays open before a half-open probe.
    breaker_cooldown: float = 1.0

    #: Backoff schedule (shared :func:`repro.runtime.backoff.backoff_delay`).
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    seed: int = 0

    #: LRU capacity of completed results held in coordinator memory for
    #: the status/result endpoints (the persistent store keeps
    #: everything; this bounds the *resident* set).
    result_cache_entries: int = 512
    #: Forwarded to workers as ``REPRO_TRACE_MEMO`` (per-process traced-
    #: workload memo capacity); ``None`` keeps the library default.
    trace_memo_entries: Optional[int] = None
    #: Interval between progress-stream snapshots on ``/stream``.
    stream_interval: float = 0.05

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigError("service needs at least one shard")
        if self.queue_depth < 1:
            raise ConfigError("queue_depth must be >= 1")
        if self.rate <= 0 or self.burst < 1:
            raise ConfigError("token bucket needs rate > 0 and burst >= 1")
        if self.heartbeat_timeout <= self.heartbeat_interval:
            raise ConfigError(
                "heartbeat_timeout must exceed heartbeat_interval"
            )
        if self.result_cache_entries < 1:
            raise ConfigError("result_cache_entries must be >= 1")
