"""Lumibench stand-in workloads (paper Table II).

The paper evaluates on 16 Lumibench scenes we cannot redistribute; this
package generates synthetic stand-ins with the same names, scaled ~1:100
in triangle count, whose BVH *shape* (depth, overlap, leaf-access ratio)
reproduces each scene's traversal character — the property that actually
drives stack behaviour.  See ``repro.workloads.lumibench`` for the
per-scene recipes and DESIGN.md for the substitution rationale.
"""

from repro.workloads.lumibench import (
    SCENE_NAMES,
    SceneRecipe,
    load_scene,
    scene_recipe,
    all_scenes,
)
from repro.workloads.params import WorkloadParams, DEFAULT_PARAMS, COMPLEX_SCENES

__all__ = [
    "SCENE_NAMES",
    "SceneRecipe",
    "load_scene",
    "scene_recipe",
    "all_scenes",
    "WorkloadParams",
    "DEFAULT_PARAMS",
    "COMPLEX_SCENES",
]
