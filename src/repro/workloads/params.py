"""Workload execution parameters (paper section VII-A).

The paper renders most scenes at 128x128 with 2 spp and the three most
complex (CHSNT, ROBOT, PARK) at 32x32 with 1 spp, noting that trends are
consistent across workload sizes.  We apply the same two-tier scheme at
our scaled-down default resolution; both tiers are configurable.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Scenes the paper runs at reduced scale due to simulation cost.
COMPLEX_SCENES = ("CHSNT", "ROBOT", "PARK")


@dataclass(frozen=True)
class WorkloadParams:
    """Resolution/sampling for one simulation campaign."""

    width: int = 32
    height: int = 32
    spp: int = 1
    max_bounces: int = 3
    complex_width: int = 16
    complex_height: int = 16
    complex_spp: int = 1
    seed: int = 0

    def for_scene(self, scene_name: str) -> "tuple[int, int, int]":
        """(width, height, spp) for a given scene."""
        if scene_name.upper() in COMPLEX_SCENES:
            return self.complex_width, self.complex_height, self.complex_spp
        return self.width, self.height, self.spp

    def scaled(self, factor: float) -> "WorkloadParams":
        """A resolution-scaled copy (for quick test runs)."""
        return WorkloadParams(
            width=max(4, int(self.width * factor)),
            height=max(4, int(self.height * factor)),
            spp=self.spp,
            max_bounces=self.max_bounces,
            complex_width=max(4, int(self.complex_width * factor)),
            complex_height=max(4, int(self.complex_height * factor)),
            complex_spp=self.complex_spp,
            seed=self.seed,
        )


#: Defaults used by the experiment drivers and benchmarks.
DEFAULT_PARAMS = WorkloadParams()
