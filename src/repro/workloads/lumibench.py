"""The 16 benchmark scenes of paper Table II, as procedural stand-ins.

Each recipe is chosen to reproduce the original scene's *traversal
character* rather than its appearance:

* architectural scenes (SPNZA, BATH, REF, CHSNT) — boxy rooms with props;
  shallow, well-separated BVHs where an 8-entry stack usually suffices
  (the paper notes REF and BATH gain least from SMS);
* organic scenes (FOX, BUNNY) — tessellated blobs, moderate depth;
* terrain (LANDS, PARK) — heightfields plus scattered detail;
* clutter (CRNVL, PARTY, FRST, SPRNG) — scattered/clustered triangles
  with heavy AABB overlap driving deep, divergent traversals;
* SHIP — long thin slivers: few primitives but huge, mostly-empty leaf
  bounds, giving the high leaf-access ratio the paper calls out;
* ROBOT, CAR, PARK — the heavyweights with the deepest stack demand.

Triangle counts default to ~1:100 of Table II (capped for build time),
which DESIGN.md records as a substitution; the depth statistics the
paper derives from these workloads (Figs. 4 and 5) are regenerated and
compared in EXPERIMENTS.md.

**Full-scale runs.** Every builder takes a *density* multiplier, and
each recipe records the ``full_density`` that brings it back up to its
Table II triangle count.  Setting ``REPRO_BENCH_SCALE=1.0`` makes
:func:`load_scene` generate scenes at the paper's true sizes (0.2M-20.6M
triangles); fractions interpolate (``0.1`` = 10% of the paper count,
floored at the default reduced size).  Density 1.0 reproduces the
reduced scenes bit-identically — same generator calls, same seeds — so
the default behavior (variable unset) is byte-stable.  The scale is
folded into the result-store cache salt
(:func:`repro.runtime.job.cache_salt`), so scaled and reduced results
can never satisfy each other's content addresses.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.errors import SceneError
from repro.scene.generators import (
    blob_mesh,
    box_mesh,
    canopy_mesh,
    grid_mesh,
    merge_meshes,
    scatter_mesh,
    sliver_mesh,
)
from repro.scene.scene import Scene

#: Environment variable selecting the geometry scale (fraction of the
#: paper's Table II triangle counts).  Values below 1.0 are the
#: benchmark suite's resolution smoke knob (``benchmarks/conftest.py``)
#: and leave geometry at the reduced default; ``1.0`` and above rebuild
#: every recipe at (scale x) the paper's true counts.
BENCH_SCALE_ENV = "REPRO_BENCH_SCALE"


def bench_scale() -> Optional[float]:
    """The requested geometry scale, or ``None`` for the reduced default.

    Only scales of 1.0 and above select paper-true geometry: sub-1.0
    values keep the historical smoke-run meaning (shrink benchmark
    *resolution*, geometry untouched), so ``REPRO_BENCH_SCALE=0.4``
    stays a quick pass rather than a 40x triangle blow-up.  Invalid or
    non-positive values are treated as unset rather than raising — an
    experiment sweep should not die on a malformed environment
    variable.
    """
    raw = os.environ.get(BENCH_SCALE_ENV)
    if raw is None:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value >= 1.0 else None


def _count(base: int, density: float) -> int:
    """Linear scaling for primitive counts (scatter, slivers, leaves)."""
    return max(base, int(round(base * density)))


def _axis(base: int, density: float) -> int:
    """Grid-axis scaling: grid triangles go with the *square* of it."""
    return max(base, int(round(base * math.sqrt(density))))


def _subdiv(base: int, density: float) -> int:
    """Blob subdivision scaling: triangles go with ``4**subdivisions``.

    Capped at +5 levels — beyond that a single blob dominates the whole
    scene budget and the build time explodes.
    """
    if density <= 1.0:
        return base
    return base + min(5, int(round(math.log(density, 4))))


@dataclass(frozen=True)
class SceneRecipe:
    """How one benchmark scene is generated."""

    name: str
    builder: Callable[[float], np.ndarray]
    paper_triangles: str  # Table II's count, for the report
    paper_bvh_mb: float   # Table II's BVH size
    complex_scene: bool = False  # CHSNT/ROBOT/PARK run at reduced scale
    #: Density multiplier that brings the reduced recipe up to its
    #: Table II triangle count (paper count / reduced count).
    full_density: float = 1.0

    def density_for(self, scale: Optional[float]) -> float:
        """The builder density for one requested geometry scale.

        ``None`` (variable unset or below 1.0) is the reduced default;
        a scale of 1.0 or more multiplies up to (scale x) the paper's
        count, floored at 1.0 so a recipe can never drop below the
        reduced baseline.
        """
        if scale is None or scale < 1.0:
            return 1.0
        return max(1.0, scale * self.full_density)


def _wknd(density: float = 1.0) -> np.ndarray:
    # Table II lists 0 triangles (procedural sky/spheres); a couple of
    # coarse blobs keep traversal trivially shallow, like the original.
    return merge_meshes([
        blob_mesh((0, 0, 0), 2.0, subdivisions=2, seed=10),
        blob_mesh((3, 0.5, -1), 1.0, subdivisions=1, seed=11),
        grid_mesh(6, 6, size=20.0, seed=12),
    ])


def _sprng(density: float = 1.0) -> np.ndarray:
    # Spring meadow: dense low clutter over terrain.
    return merge_meshes([
        grid_mesh(_axis(20, density), _axis(20, density), size=16.0,
                  height_amplitude=0.6, seed=20),
        scatter_mesh(_count(18000, density), bounds_size=14.0,
                     triangle_size=0.28, clusters=30, seed=21),
    ])


def _fox(density: float = 1.0) -> np.ndarray:
    # Organic hero model: bumpy blobs at several scales.
    return merge_meshes([
        blob_mesh((0, 1, 0), 2.2, subdivisions=_subdiv(4, density),
                  bumpiness=0.25, seed=30),
        blob_mesh((1.8, 0.6, 1.0), 1.0, subdivisions=_subdiv(3, density),
                  bumpiness=0.3, seed=31),
        blob_mesh((-1.5, 0.5, -0.8), 0.8, subdivisions=_subdiv(3, density),
                  bumpiness=0.3, seed=32),
        grid_mesh(_axis(14, density), _axis(14, density), size=12.0, seed=33),
    ])


def _lands(density: float = 1.0) -> np.ndarray:
    # Rolling landscape with rock clutter.
    return merge_meshes([
        grid_mesh(_axis(90, density), _axis(90, density), size=30.0,
                  height_amplitude=2.5, seed=40),
        scatter_mesh(_count(14000, density), bounds_size=26.0,
                     triangle_size=0.55, clusters=40, seed=41),
    ])


def _crnvl(density: float = 1.0) -> np.ndarray:
    # Carnival: mid-size clutter, moderate overlap.
    return merge_meshes([
        grid_mesh(_axis(10, density), _axis(10, density), size=14.0, seed=50),
        scatter_mesh(_count(4200, density), bounds_size=12.0,
                     triangle_size=0.45, clusters=12, seed=51),
    ])


def _spnza(density: float = 1.0) -> np.ndarray:
    # Sponza-style atrium: nested boxes (walls, columns), few props.
    rng = np.random.default_rng(60)
    parts: List[np.ndarray] = [
        box_mesh((0, 2.5, 0), (16, 5, 10)),      # hall shell
        box_mesh((0, 0.05, 0), (16, 0.1, 10)),   # floor
    ]
    for i in range(14):  # columns
        x = -7 + i % 7 * 2.3
        z = -3.5 if i < 7 else 3.5
        parts.append(box_mesh((x, 1.5, z), (0.5, 3.0, 0.5)))
    for _ in range(24):  # props
        pos = rng.uniform([-7, 0.2, -4], [7, 1.0, 4])
        parts.append(box_mesh(pos, rng.uniform(0.3, 1.2, size=3)))
    parts.append(scatter_mesh(_count(2200, density), bounds_size=12.0,
                              triangle_size=0.3, clusters=8, seed=61))
    return merge_meshes(parts)


def _bath(density: float = 1.0) -> np.ndarray:
    # Bathroom: a tight room with fixtures; shallow traversal.
    rng = np.random.default_rng(70)
    parts = [box_mesh((0, 1.5, 0), (6, 3, 5))]
    for _ in range(16):
        pos = rng.uniform([-2.5, 0.2, -2.0], [2.5, 1.2, 2.0])
        parts.append(box_mesh(pos, rng.uniform(0.2, 0.9, size=3)))
    parts.append(blob_mesh((0, 0.8, 0), 0.7,
                           subdivisions=_subdiv(3, density), seed=71))
    parts.append(scatter_mesh(_count(3600, density), bounds_size=5.0,
                              triangle_size=0.05, clusters=24, seed=72))
    return merge_meshes(parts)


def _robot(density: float = 1.0) -> np.ndarray:
    # Heaviest scene: dense multi-scale clusters, deep divergent BVH.
    return merge_meshes([
        scatter_mesh(_count(40000, density), bounds_size=12.0,
                     triangle_size=0.6, clusters=26, seed=80),
        scatter_mesh(_count(16000, density), bounds_size=5.0,
                     triangle_size=0.9, clusters=6, seed=81),
        blob_mesh((0, 0, 0), 2.5, subdivisions=_subdiv(4, density),
                  bumpiness=0.4, seed=82),
    ])


def _car(density: float = 1.0) -> np.ndarray:
    # Dense hero asset: layered shells plus fine clutter.
    return merge_meshes([
        blob_mesh((0, 1, 0), 2.8, subdivisions=_subdiv(5, density),
                  bumpiness=0.15, seed=90),
        scatter_mesh(_count(26000, density), bounds_size=8.0,
                     triangle_size=0.6, clusters=14, seed=91),
        grid_mesh(_axis(12, density), _axis(12, density), size=14.0, seed=92),
    ])


def _party(density: float = 1.0) -> np.ndarray:
    # Party: the Fig. 10 scene — mixed clutter, strongly divergent depths.
    return merge_meshes([
        box_mesh((0, 2.5, 0), (14, 5, 12)),
        scatter_mesh(_count(12000, density), bounds_size=11.0,
                     triangle_size=0.65, clusters=18, seed=100),
        scatter_mesh(_count(4500, density), bounds_size=11.0,
                     triangle_size=0.15, clusters=40, seed=101),
    ])


def _frst(density: float = 1.0) -> np.ndarray:
    # Forest: trunks and leaf clusters with deep overlap.
    return merge_meshes([
        canopy_mesh(36, _count(900, density), bounds_size=22.0,
                    leaf_size=0.24, seed=110),
        grid_mesh(_axis(20, density), _axis(20, density), size=24.0,
                  height_amplitude=0.8, seed=111),
    ])


def _bunny(density: float = 1.0) -> np.ndarray:
    return merge_meshes([
        blob_mesh((0, 1, 0), 1.6, subdivisions=_subdiv(3, density),
                  bumpiness=0.2, seed=120),
        grid_mesh(_axis(8, density), _axis(8, density), size=8.0, seed=121),
    ])


def _ship(density: float = 1.0) -> np.ndarray:
    # Long thin rigging primitives: huge sparse leaf bounds, so rays test
    # many leaves relative to internal nodes (the paper's SHIP remark).
    return merge_meshes([
        sliver_mesh(_count(900, density), length=9.0, thickness=0.02,
                    bounds_size=10.0, seed=130),
        box_mesh((0, -0.5, 0), (12, 1, 4)),
    ])


def _ref(density: float = 1.0) -> np.ndarray:
    # Reflection test room: simple separated geometry, shallow stacks.
    parts = [box_mesh((0, 2, 0), (12, 4, 8))]
    for i in range(10):
        parts.append(
            box_mesh((-4.5 + i * 1.0, 0.8, 0), (0.6, 1.6, 0.6))
        )
    parts.append(blob_mesh((0, 1.2, 2.0), 0.9,
                           subdivisions=_subdiv(3, density), seed=141))
    parts.append(scatter_mesh(_count(3800, density), bounds_size=9.0,
                              triangle_size=0.1, clusters=6, seed=142))
    return merge_meshes(parts)


def _chsnt(density: float = 1.0) -> np.ndarray:
    # Chestnut tree: one big canopy cluster.
    return merge_meshes([
        canopy_mesh(4, _count(700, density), bounds_size=6.0, leaf_size=0.3,
                    crown_size=2.6, seed=150),
        grid_mesh(_axis(10, density), _axis(10, density), size=10.0,
                  seed=151),
    ])


def _park(density: float = 1.0) -> np.ndarray:
    # Park: terrain + many trees; with ROBOT the deepest traversals.
    return merge_meshes([
        grid_mesh(_axis(40, density), _axis(40, density), size=30.0,
                  height_amplitude=1.5, seed=160),
        canopy_mesh(30, _count(1100, density), bounds_size=26.0,
                    leaf_size=0.3, seed=161),
        scatter_mesh(_count(9000, density), bounds_size=24.0,
                     triangle_size=0.7, clusters=30, seed=162),
    ])


_RECIPES: Dict[str, SceneRecipe] = {
    recipe.name: recipe
    for recipe in [
        SceneRecipe("WKND", _wknd, "0", 0.2),
        SceneRecipe("SPRNG", _sprng, "1.9M", 178.0, full_density=101.0),
        SceneRecipe("FOX", _fox, "1.6M", 648.5, full_density=462.0),
        SceneRecipe("LANDS", _lands, "3.3M", 303.5, full_density=109.0),
        SceneRecipe("CRNVL", _crnvl, "449.6K", 60.7, full_density=102.0),
        SceneRecipe("SPNZA", _spnza, "262.3K", 22.8, full_density=98.0),
        SceneRecipe("BATH", _bath, "423.6K", 112.8, full_density=98.0),
        SceneRecipe("ROBOT", _robot, "20.6M", 1869.0, complex_scene=True,
                    full_density=355.0),
        SceneRecipe("CAR", _car, "12.7M", 1328.2, full_density=368.0),
        SceneRecipe("PARTY", _party, "1.7M", 156.1, full_density=103.0),
        SceneRecipe("FRST", _frst, "4.2M", 380.5, full_density=126.0),
        SceneRecipe("BUNNY", _bunny, "144.1K", 13.2, full_density=225.0),
        SceneRecipe("SHIP", _ship, "6.3K", 0.5, full_density=6.9),
        SceneRecipe("REF", _ref, "448.9K", 40.4, full_density=101.0),
        SceneRecipe("CHSNT", _chsnt, "313.2K", 28.3, complex_scene=True,
                    full_density=104.0),
        SceneRecipe("PARK", _park, "6.0M", 542.5, complex_scene=True,
                    full_density=133.0),
    ]
}

#: Scene names in the paper's Table II order.
SCENE_NAMES = list(_RECIPES)


def scene_recipe(name: str) -> SceneRecipe:
    """Recipe for one scene name (case-insensitive)."""
    key = name.upper()
    if key not in _RECIPES:
        raise SceneError(
            f"unknown workload {name!r}; available: {', '.join(SCENE_NAMES)}"
        )
    return _RECIPES[key]


def load_scene(name: str, scale: Optional[float] = None) -> Scene:
    """Generate one benchmark scene by name.

    ``scale`` is the geometry scale (1.0 = the paper's Table II triangle
    count); when ``None`` it comes from ``REPRO_BENCH_SCALE``, and with
    that unset too the reduced default recipe is generated.
    """
    recipe = scene_recipe(name)
    if scale is None:
        scale = bench_scale()
    density = recipe.density_for(scale)
    return Scene(name=recipe.name, vertices=recipe.builder(density))


def all_scenes() -> List[Scene]:
    """Generate every benchmark scene (Table II order)."""
    return [load_scene(name) for name in SCENE_NAMES]
