"""Text and JSON renderers for lint reports.

The JSON shape is a stable contract (CI parses it and the report is
uploaded as a build artifact):

.. code-block:: json

    {
      "schema": 1,
      "tool": "repro.simlint",
      "exit_code": 1,
      "summary": {"files": 210, "errors": 1, "warnings": 0,
                  "baselined": 0, "suppressed": 4, "broken": 0},
      "findings": [{"rule": "SL101", "severity": "error",
                    "path": "src/repro/gpu/rt_unit.py", "line": 12,
                    "col": 9, "message": "...", "text": "...",
                    "baselined": false}],
      "broken": []
    }
"""

from __future__ import annotations

import json
from typing import List

from repro.simlint.engine import LintReport

REPORT_SCHEMA_VERSION = 1


def render_text(report: LintReport, show_baselined: bool = False) -> str:
    """Human-oriented rendering: one line per finding plus a summary."""
    lines: List[str] = []
    for path, message in report.broken:
        lines.append(f"{path}: cannot parse ({message})")
    for finding in report.findings:
        if finding.baselined and not show_baselined:
            continue
        tag = " [baselined]" if finding.baselined else ""
        lines.append(
            f"{finding.location()}: {finding.rule} "
            f"{finding.severity}: {finding.message}{tag}"
        )
    lines.append(summary_line(report))
    return "\n".join(lines)


def summary_line(report: LintReport) -> str:
    counts = (
        f"{report.files} file(s): {len(report.errors)} error(s), "
        f"{len(report.warnings)} warning(s), "
        f"{len(report.baselined)} baselined, {report.suppressed} suppressed"
    )
    if report.broken:
        counts += f", {len(report.broken)} unparseable"
    return counts


def render_json(report: LintReport) -> str:
    """Machine-oriented rendering; see the module docstring for schema."""
    payload = {
        "schema": REPORT_SCHEMA_VERSION,
        "tool": "repro.simlint",
        "exit_code": report.exit_code,
        "summary": {
            "files": report.files,
            "errors": len(report.errors),
            "warnings": len(report.warnings),
            "baselined": len(report.baselined),
            "suppressed": report.suppressed,
            "broken": len(report.broken),
        },
        "findings": [finding.to_dict() for finding in report.findings],
        "broken": [
            {"path": path, "message": message}
            for path, message in report.broken
        ],
    }
    return json.dumps(payload, indent=1, sort_keys=True)
