"""Text, JSON and SARIF renderers for lint reports.

The JSON shape is a stable contract (CI parses it and the report is
uploaded as a build artifact):

.. code-block:: json

    {
      "schema": 2,
      "tool": "repro.simlint",
      "exit_code": 1,
      "summary": {"files": 210, "errors": 1, "warnings": 0,
                  "baselined": 0, "suppressed": 4, "broken": 0,
                  "analyzed": 3, "reparsed": 3, "cache_hits": 414},
      "findings": [{"rule": "SL101", "severity": "error",
                    "path": "src/repro/gpu/rt_unit.py", "line": 12,
                    "col": 9, "message": "...", "text": "...",
                    "context_hash": "...", "baselined": false}],
      "broken": []
    }

The SARIF rendering targets the GitHub code-scanning subset of SARIF
2.1.0: one run, one driver, a rule catalog with the registered rules'
titles and rationales, and one result per non-baselined finding, with
the baseline context hash as a partial fingerprint so annotations track
findings across line drift the same way the baseline does.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.simlint.engine import LintReport

REPORT_SCHEMA_VERSION = 2

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(report: LintReport, show_baselined: bool = False) -> str:
    """Human-oriented rendering: one line per finding plus a summary."""
    lines: List[str] = []
    for path, message in report.broken:
        lines.append(f"{path}: cannot parse ({message})")
    for finding in report.findings:
        if finding.baselined and not show_baselined:
            continue
        tag = " [baselined]" if finding.baselined else ""
        lines.append(
            f"{finding.location()}: {finding.rule} "
            f"{finding.severity}: {finding.message}{tag}"
        )
    lines.append(summary_line(report))
    return "\n".join(lines)


def summary_line(report: LintReport) -> str:
    counts = (
        f"{report.files} file(s): {len(report.errors)} error(s), "
        f"{len(report.warnings)} warning(s), "
        f"{len(report.baselined)} baselined, {report.suppressed} suppressed"
    )
    if report.broken:
        counts += f", {len(report.broken)} unparseable"
    if report.cache_hits:
        counts += (
            f" [incremental: {report.analyzed} analyzed, "
            f"{report.reparsed} parsed, {report.cache_hits} cache hits]"
        )
    return counts


def render_json(report: LintReport) -> str:
    """Machine-oriented rendering; see the module docstring for schema."""
    payload = {
        "schema": REPORT_SCHEMA_VERSION,
        "tool": "repro.simlint",
        "exit_code": report.exit_code,
        "summary": {
            "files": report.files,
            "errors": len(report.errors),
            "warnings": len(report.warnings),
            "baselined": len(report.baselined),
            "suppressed": report.suppressed,
            "broken": len(report.broken),
            "analyzed": report.analyzed,
            "reparsed": report.reparsed,
            "cache_hits": report.cache_hits,
        },
        "findings": [finding.to_dict() for finding in report.findings],
        "broken": [
            {"path": path, "message": message}
            for path, message in report.broken
        ],
    }
    return json.dumps(payload, indent=1, sort_keys=True)


def render_sarif(report: LintReport) -> str:
    """SARIF 2.1.0 rendering for GitHub code-scanning upload.

    Baselined findings are omitted — the committed baseline already is
    the suppression mechanism, and re-announcing grandfathered findings
    in the PR view would drown the new ones the upload exists to show.
    """
    from repro.simlint.registry import all_rules

    fired = {finding.rule for finding in report.findings}
    rules = [
        {
            "id": rule.id,
            "name": rule.__class__.__name__,
            "shortDescription": {"text": rule.title},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {
                "level": _sarif_level(rule.severity),
            },
        }
        for rule in all_rules()
        if rule.id in fired
    ]
    rule_index = {entry["id"]: i for i, entry in enumerate(rules)}
    results = []
    for finding in report.findings:
        if finding.baselined:
            continue
        result: Dict = {
            "ruleId": finding.rule,
            "ruleIndex": rule_index[finding.rule],
            "level": _sarif_level(finding.severity),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
        }
        if finding.context_hash:
            result["partialFingerprints"] = {
                "contextHash/v1": finding.context_hash,
            }
        results.append(result)
    payload = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.simlint",
                        "informationUri": (
                            "https://github.com/example/repro"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=1, sort_keys=True)


def _sarif_level(severity: str) -> str:
    return "error" if severity == "error" else "warning"
