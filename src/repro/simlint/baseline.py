"""The committed baseline: grandfathered findings that do not gate CI.

Schema 2 keys every entry on ``(path, rule, context-hash)`` — a short
digest of the stripped previous/current/next source lines around the
finding (see :func:`context_hash_for`).  Line numbers drift with every
unrelated edit and the bare offending line is not unique within a file;
the three-line context window is stable under both.  Entries still
carry the offending ``text`` so the JSON reviews meaningfully.

Schema 1 keyed on ``(path, rule, stripped source line)``; loading a v1
file still works — its entries match on the text key — and the next
``repro lint --write-baseline`` migrates the file to v2.  Both schemas
are handled multiset-style: an entry absolves exactly as many findings
as were recorded for its key.

The file is JSON (one object, sorted keys) so diffs review cleanly, and
carries the schema version so an *unknown* format change reads as
"rebuild the baseline", not as silent acceptance of every finding.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import ReproError
from repro.simlint.model import Finding

BASELINE_SCHEMA_VERSION = 2

#: Schemas :func:`load_baseline` can still read.
SUPPORTED_SCHEMAS = (1, 2)


def context_hash_for(lines: Sequence[str], line: int) -> str:
    """The line-content context hash for finding at 1-based ``line``.

    A short sha256 of the stripped previous, current and next source
    lines — whitespace-only reformatting and edits elsewhere in the
    file leave it unchanged; moving or rewriting the finding's
    neighborhood does not.
    """
    window = []
    for offset in (-1, 0, 1):
        index = line - 1 + offset
        window.append(lines[index].strip() if 0 <= index < len(lines) else "")
    blob = "\n".join(window)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


class Baseline:
    """A multiset of grandfathered finding keys (context + legacy text)."""

    def __init__(self, entries: Optional[Iterable[Dict]] = None) -> None:
        self._by_context: Counter = Counter()
        self._by_text: Counter = Counter()
        for entry in entries or []:
            context = str(entry.get("context", "") or "")
            if context:
                self._by_context[self._context_key(entry["path"],
                                                   entry["rule"],
                                                   context)] += 1
            else:
                self._by_text[self._text_key(entry["path"], entry["rule"],
                                             entry["text"])] += 1
        #: Keeps the human-facing text for :meth:`entries` round-trips.
        self._texts: Dict[tuple, str] = {
            self._context_key(e["path"], e["rule"], str(e.get("context", ""))):
                str(e.get("text", ""))
            for e in (entries or [])
            if e.get("context")
        }

    @staticmethod
    def _context_key(path: str, rule: str, context: str) -> tuple:
        return ("ctx", str(path), str(rule), context)

    @staticmethod
    def _text_key(path: str, rule: str, text: str) -> tuple:
        return ("txt", str(path), str(rule), str(text).strip())

    def __len__(self) -> int:
        return sum(self._by_context.values()) + sum(self._by_text.values())

    def apply(self, findings: List[Finding]) -> int:
        """Mark baselined findings in place; returns how many matched.

        A finding first tries its context hash (schema-2 entries), then
        the legacy text key (schema-1 entries and findings built
        without source context).
        """
        remaining_ctx = Counter(self._by_context)
        remaining_txt = Counter(self._by_text)
        matched = 0
        for finding in findings:
            key = self._context_key(finding.path, finding.rule,
                                    finding.context_hash)
            if finding.context_hash and remaining_ctx[key] > 0:
                remaining_ctx[key] -= 1
                finding.baselined = True
                matched += 1
                continue
            key = self._text_key(finding.path, finding.rule, finding.text)
            if remaining_txt[key] > 0:
                remaining_txt[key] -= 1
                finding.baselined = True
                matched += 1
        return matched

    def entries(self) -> List[Dict]:
        """The baseline content in its on-disk (schema 2) shape."""
        out: List[Dict] = []
        for key, count in sorted(self._by_context.items()):
            _, path, rule, context = key
            out.extend(
                {"path": path, "rule": rule, "context": context,
                 "text": self._texts.get(key, "")}
                for _ in range(count)
            )
        for (_, path, rule, text), count in sorted(self._by_text.items()):
            out.extend(
                {"path": path, "rule": rule, "context": "", "text": text}
                for _ in range(count)
            )
        return out


def load_baseline(path) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return Baseline()
    try:
        payload = json.loads(path.read_text())
    except ValueError as error:
        raise ReproError(f"unreadable simlint baseline {path}: {error}") from None
    schema = payload.get("schema")
    if schema not in SUPPORTED_SCHEMAS:
        raise ReproError(
            f"simlint baseline {path} has schema {schema!r}; "
            f"expected one of {SUPPORTED_SCHEMAS} — regenerate with "
            f"`repro lint --write-baseline`"
        )
    entries = payload.get("entries", [])
    if not isinstance(entries, list):
        raise ReproError(f"simlint baseline {path}: entries must be a list")
    if schema == 1:
        # v1 entries key on text only; Baseline() treats a missing
        # "context" as the legacy key, so migration is just a reload.
        entries = [dict(entry, context="") for entry in entries]
    return Baseline(entries)


def write_baseline(path, findings: Iterable[Finding]) -> Baseline:
    """Persist every finding as grandfathered; always writes schema 2."""
    baseline = Baseline(
        {
            "path": f.path,
            "rule": f.rule,
            "context": f.context_hash,
            "text": f.text,
        }
        for f in findings
    )
    payload = {
        "schema": BASELINE_SCHEMA_VERSION,
        "entries": baseline.entries(),
    }
    Path(path).write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return baseline
