"""The committed baseline: grandfathered findings that do not gate CI.

Every entry keys on ``(path, rule, stripped source line)`` rather than a
line number, so edits elsewhere in a file do not churn the baseline.
Duplicate offending lines are handled multiset-style: a baseline entry
absolves exactly as many findings as were recorded for that key.

The file is JSON (one object, sorted keys) so diffs review cleanly, and
carries a schema version so a future format change reads as "rebuild the
baseline", not as silent acceptance of every finding.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.errors import ReproError
from repro.simlint.model import Finding

BASELINE_SCHEMA_VERSION = 1


class Baseline:
    """A multiset of grandfathered finding keys."""

    def __init__(self, entries: Optional[Iterable[Dict]] = None) -> None:
        self._counts: Counter = Counter(
            self._key(entry["path"], entry["rule"], entry["text"])
            for entry in (entries or [])
        )

    @staticmethod
    def _key(path: str, rule: str, text: str) -> tuple:
        return (str(path), str(rule), str(text).strip())

    def __len__(self) -> int:
        return sum(self._counts.values())

    def apply(self, findings: List[Finding]) -> int:
        """Mark baselined findings in place; returns how many matched."""
        remaining = Counter(self._counts)
        matched = 0
        for finding in findings:
            key = self._key(finding.path, finding.rule, finding.text)
            if remaining[key] > 0:
                remaining[key] -= 1
                finding.baselined = True
                matched += 1
        return matched

    def entries(self) -> List[Dict]:
        """The baseline content in its on-disk shape."""
        out: List[Dict] = []
        for (path, rule, text), count in sorted(self._counts.items()):
            out.extend(
                {"path": path, "rule": rule, "text": text}
                for _ in range(count)
            )
        return out


def load_baseline(path) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return Baseline()
    try:
        payload = json.loads(path.read_text())
    except ValueError as error:
        raise ReproError(f"unreadable simlint baseline {path}: {error}") from None
    if payload.get("schema") != BASELINE_SCHEMA_VERSION:
        raise ReproError(
            f"simlint baseline {path} has schema {payload.get('schema')!r}; "
            f"expected {BASELINE_SCHEMA_VERSION} — regenerate with "
            f"`repro lint --write-baseline`"
        )
    entries = payload.get("entries", [])
    if not isinstance(entries, list):
        raise ReproError(f"simlint baseline {path}: entries must be a list")
    return Baseline(entries)


def write_baseline(path, findings: Iterable[Finding]) -> Baseline:
    """Persist every finding as grandfathered; returns the new baseline."""
    baseline = Baseline(
        {"path": f.path, "rule": f.rule, "text": f.text} for f in findings
    )
    payload = {
        "schema": BASELINE_SCHEMA_VERSION,
        "entries": baseline.entries(),
    }
    Path(path).write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return baseline
