"""Pluggable rule registry.

A rule is a class with an ``id`` (``SLxxx``), a default severity, a
scope, a one-line ``title`` and a ``rationale`` paragraph (both feed the
rule catalog in ``docs/architecture.md`` and ``repro lint --list-rules``),
and a ``check(ctx)`` generator yielding findings.  Decorating the class
with :func:`register` makes it part of every lint run; tests can
instantiate rules directly against a context instead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Type

from repro.errors import ReproError
from repro.simlint.model import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simlint.engine import FileContext


class Rule:
    """Base class for simlint rules."""

    #: Rule identifier, e.g. ``"SL101"``.
    id: str = ""
    #: One-line summary for catalogs and reporters.
    title: str = ""
    #: Rule family: determinism / bit-identity / diagnostics / hygiene /
    #: concurrency / vector.
    category: str = ""
    #: Why this rule exists, in terms of the simulator's contracts.
    rationale: str = ""
    #: Default severity; pyproject ``[tool.simlint.severity]`` overrides.
    severity: str = Severity.ERROR
    #: Where the rule applies: ``"timing"`` (the timing-critical
    #: packages), ``"async"`` (the asyncio service packages),
    #: ``"vector"`` (the numpy timing backend), ``"repro"`` (anywhere
    #: under the ``repro`` package — plus ``tools/``, and ``tests/`` for
    #: the configured test families), or ``"all"`` (every linted file).
    scope: str = "repro"
    #: Cross-file rules consume ``ctx.project`` (the project graph);
    #: their cached findings are additionally keyed on the file's
    #: import-closure fingerprint.
    cross_file: bool = False

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        raise NotImplementedError

    def applies_to(self, ctx: "FileContext") -> bool:
        """Scope filter: does this rule run against ``ctx`` at all?"""
        if self.scope == "all":
            return True
        if ctx.module is None:
            if getattr(ctx, "is_test", False):
                # Tests get the configured families (determinism and
                # hygiene by default): the harness must not smuggle
                # entropy or stdout noise, but bit-identity/diagnostics
                # conventions are library contracts, not test contracts.
                return (
                    self.scope == "repro"
                    and self.category in ctx.config.test_families
                )
            if getattr(ctx, "is_tool", False):
                # Tools are repro-grade library code with a __main__.
                return self.scope == "repro"
            return False
        if self.scope == "timing":
            return _under_any(ctx.module, ctx.config.timing_critical)
        if self.scope == "async":
            return _under_any(ctx.module, ctx.config.async_critical)
        if self.scope == "vector":
            return _under_any(ctx.module, ctx.config.vector_packages)
        return True  # "repro": any module under the package


def _under_any(module: str, packages) -> bool:
    return any(
        module == pkg or module.startswith(pkg + ".") for pkg in packages
    )


#: The global rule registry, keyed by rule id.
RULES: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and add a rule to the registry."""
    rule = cls()
    if not rule.id or not rule.title or not rule.rationale:
        raise ReproError(
            f"simlint rule {cls.__name__} must define id, title and rationale"
        )
    if rule.id in RULES:
        raise ReproError(f"duplicate simlint rule id {rule.id}")
    # Import-time setup of the module-own registry singleton.
    RULES[rule.id] = rule  # simlint: disable=SL201
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, in id order."""
    return [RULES[rule_id] for rule_id in sorted(RULES)]


def get_rule(rule_id: str) -> Rule:
    """The registered rule with ``rule_id``; raises on unknown ids."""
    try:
        return RULES[rule_id]
    except KeyError:
        raise ReproError(f"unknown simlint rule {rule_id!r}") from None


def known_ids(ids: Iterable[str]) -> List[str]:
    """Validate a collection of rule ids, returning them sorted."""
    unknown = sorted(set(ids) - set(RULES))
    if unknown:
        raise ReproError(f"unknown simlint rule id(s): {', '.join(unknown)}")
    return sorted(set(ids))
