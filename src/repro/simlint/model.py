"""Finding and severity model shared by the engine, reporters and rules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict


class Severity:
    """Finding severities; ``ERROR`` findings drive the exit code."""

    ERROR = "error"
    WARNING = "warning"

    #: Valid values, for config validation.
    ALL = (ERROR, WARNING)


@dataclass
class Finding:
    """One rule violation at one source location.

    ``text`` is the stripped source line the finding points at.
    ``context_hash`` is a short digest of the stripped previous/current/
    next source lines, filled in by the engine: schema-2 baselines key
    on ``(path, rule, context_hash)``, so neither line-number drift nor
    a duplicate offending line elsewhere in the file can mis-match a
    grandfathered finding.  Findings constructed without source context
    (hand-built in tests, legacy baselines) leave it empty and fall back
    to ``(path, rule, text)`` matching.
    """

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    text: str = ""
    context_hash: str = field(default="", compare=False)
    baselined: bool = field(default=False, compare=False)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-reporter payload for this finding."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "text": self.text,
            "context_hash": self.context_hash,
            "baselined": self.baselined,
        }
