"""Finding and severity model shared by the engine, reporters and rules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict


class Severity:
    """Finding severities; ``ERROR`` findings drive the exit code."""

    ERROR = "error"
    WARNING = "warning"

    #: Valid values, for config validation.
    ALL = (ERROR, WARNING)


@dataclass
class Finding:
    """One rule violation at one source location.

    ``text`` is the stripped source line the finding points at; baseline
    matching keys on ``(path, rule, text)`` rather than the line number,
    so unrelated edits above a grandfathered finding do not un-baseline
    it.
    """

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    text: str = ""
    baselined: bool = field(default=False, compare=False)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-reporter payload for this finding."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "text": self.text,
            "baselined": self.baselined,
        }
