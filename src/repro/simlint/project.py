"""Whole-program analysis substrate: summaries, symbol table, call graph.

File-local AST rules cannot see a blocking call hidden one module away
or a counter fold delegated to an imported helper.  This module gives
simlint a project view without giving up the incremental property:

* :func:`summarize_file` distills one parsed file into a small,
  JSON-serializable :class:`FileSummary` — imports, function table
  (with async-ness, resolved call targets, normalized write keys and a
  structural taint summary).  Summaries are pure functions of the file
  content, so the analysis cache can persist them keyed on the content
  hash and a warm run never re-parses an unchanged file.
* :class:`ProjectGraph` assembles the summaries of one lint run into a
  symbol table with re-export (alias) resolution, a cross-module call
  graph, per-module import closures (the invalidation unit for
  cross-file rules), and transitive write surfaces.
* :class:`WriteSurfaceGraph` is the file-local write collector SL204
  always used, re-based here so the fast-forward parity check and the
  counter-parity oracle share one resolver — and so the oracle can
  optionally credit writes made by *imported* helpers through the
  project graph.

Resolution is name-based and conservative: a call through a local
object (``handle.breaker.record()``) is not resolvable and simply drops
off the graph.  Rules built on top treat "unresolvable" as "no
evidence", never as a finding.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Method names that mutate their receiver in place.  Shared by the
#: write-key normalizer below, SL201 and the SoA cache rule — defined
#: here (a leaf module) so rule modules and the substrate can both
#: import it without a cycle.
MUTATING_METHODS = {
    "append", "appendleft", "extend", "extendleft", "add", "update",
    "clear", "pop", "popleft", "popitem", "remove", "discard", "insert",
    "setdefault", "sort", "reverse",
}

#: Bump when the FileSummary shape changes: cached summaries with a
#: different version are discarded, not misread.
SUMMARY_SCHEMA_VERSION = 2

#: Only names under this root participate in cross-module resolution.
PROJECT_ROOT_PACKAGE = "repro"


# ---------------------------------------------------------------------------
# summaries


@dataclass
class FunctionSummary:
    """One function/method, reduced to what cross-file rules consume."""

    name: str                      #: qualified within the module (Cls.meth)
    lineno: int
    is_async: bool
    calls: Tuple[str, ...]         #: resolved dotted call targets
    writes: Tuple[str, ...]        #: normalized state keys written
    taint_sources: Tuple[str, ...]         #: source labels reaching a return
    taint_return_params: Tuple[int, ...]   #: param indices reaching a return
    #: Callees whose return value reaches a return, with the caller
    #: param indices passed into that call (for param-flow closure).
    taint_return_calls: Tuple[Tuple[str, Tuple[int, ...]], ...]

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "lineno": self.lineno,
            "is_async": self.is_async,
            "calls": list(self.calls),
            "writes": list(self.writes),
            "taint_sources": list(self.taint_sources),
            "taint_return_params": list(self.taint_return_params),
            "taint_return_calls": [
                [callee, list(params)]
                for callee, params in self.taint_return_calls
            ],
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "FunctionSummary":
        return cls(
            name=str(payload["name"]),
            lineno=int(payload["lineno"]),
            is_async=bool(payload["is_async"]),
            calls=tuple(payload["calls"]),
            writes=tuple(payload["writes"]),
            taint_sources=tuple(payload["taint_sources"]),
            taint_return_params=tuple(payload["taint_return_params"]),
            taint_return_calls=tuple(
                (str(callee), tuple(int(p) for p in params))
                for callee, params in payload["taint_return_calls"]
            ),
        )


@dataclass
class FileSummary:
    """Everything the project graph needs to know about one file."""

    path: str
    module: Optional[str]
    sha: str
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "schema": SUMMARY_SCHEMA_VERSION,
            "path": self.path,
            "module": self.module,
            "sha": self.sha,
            "imports": dict(self.imports),
            "functions": {
                qual: fn.to_dict() for qual, fn in self.functions.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> Optional["FileSummary"]:
        if payload.get("schema") != SUMMARY_SCHEMA_VERSION:
            return None
        return cls(
            path=str(payload["path"]),
            module=payload["module"],
            sha=str(payload["sha"]),
            imports=dict(payload["imports"]),
            functions={
                qual: FunctionSummary.from_dict(fn)
                for qual, fn in payload["functions"].items()
            },
        )


def content_hash(source: str) -> str:
    """The per-file cache key: sha256 of the exact source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def summarize_file(
    tree: ast.Module,
    path: str,
    module: Optional[str],
    imports: Dict[str, str],
    source: str,
) -> FileSummary:
    """Distill one parsed file into its :class:`FileSummary`."""
    summary = FileSummary(
        path=path, module=module, sha=content_hash(source),
        imports=dict(imports),
    )
    local_defs = {
        stmt.name
        for stmt in tree.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    for qual, node, cls_name in iter_functions(tree):
        summary.functions[qual] = _summarize_function(
            qual, node, module, imports, cls_name, local_defs
        )
    return summary


def iter_functions(
    tree: ast.Module,
) -> Iterable[Tuple[str, ast.AST, Optional[str]]]:
    """Top-level functions and class methods: (qualname, node, class).

    Nested (closure) functions are deliberately not summarized: they are
    not addressable across modules, and the file-local
    :class:`WriteSurfaceGraph` resolves them where they matter.
    """
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt.name, stmt, None
        elif isinstance(stmt, ast.ClassDef):
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield f"{stmt.name}.{item.name}", item, stmt.name


def own_statements(fn: ast.AST) -> Iterable[ast.AST]:
    """Walk a function body without descending into nested defs."""
    stack: List[ast.AST] = list(getattr(fn, "body", []))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def resolve_call_target(
    node: ast.Call,
    imports: Dict[str, str],
    module: Optional[str],
    cls_name: Optional[str],
    local_defs: Optional[Set[str]] = None,
) -> Optional[str]:
    """Dotted target of a call, made module-absolute where possible.

    ``self._tick()`` inside class C of module M → ``M.C._tick``;
    ``spawn_shard()`` under ``from repro.service.shard import spawn_shard``
    → ``repro.service.shard.spawn_shard``; a call through a local object
    → ``None``.
    """
    func = node.func
    parts: List[str] = []
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if not isinstance(func, ast.Name):
        return None
    root = func.id
    if root == "self" and cls_name is not None and module is not None:
        if len(parts) == 1:
            return f"{module}.{cls_name}.{parts[0]}"
        return None
    if root in imports:
        parts.append(imports[root])
    elif not parts and local_defs is not None and root in local_defs:
        return f"{module}.{root}" if module else root
    else:
        parts.append(root)
    return ".".join(reversed(parts))


def _summarize_function(
    qual: str,
    node: ast.AST,
    module: Optional[str],
    imports: Dict[str, str],
    cls_name: Optional[str],
    local_defs: Optional[Set[str]] = None,
) -> FunctionSummary:
    # Deferred import: taint's structural pass rides the same walk.
    from repro.simlint.taint import structural_taint

    calls: List[str] = []
    writes: Set[str] = set()
    for child in own_statements(node):
        writes.update(write_keys(child))
        if isinstance(child, ast.Call):
            target = resolve_call_target(
                child, imports, module, cls_name, local_defs
            )
            if target is not None:
                calls.append(target)
    sources, ret_params, ret_calls = structural_taint(
        node, imports, module, cls_name, local_defs
    )
    return FunctionSummary(
        name=qual,
        lineno=node.lineno,
        is_async=isinstance(node, ast.AsyncFunctionDef),
        calls=tuple(sorted(set(calls))),
        writes=tuple(sorted(writes)),
        taint_sources=tuple(sorted(sources)),
        taint_return_params=tuple(sorted(ret_params)),
        taint_return_calls=tuple(sorted(ret_calls)),
    )


# ---------------------------------------------------------------------------
# write-key normalization (shared with SL204 and the vector rules)


def write_keys(node: ast.AST) -> List[str]:
    """Normalized state keys a node writes (empty for non-writes).

    ``warp.ready_time = x`` → ``warp.ready_time``;
    ``cursors[lane] = c`` → ``cursors``;
    ``resident.clear()`` / ``resident.remove(x)`` → ``resident``;
    plain local rebinding (``completion = end``) → the name itself, so
    loop bookkeeping locals participate in the parity check too.
    """
    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        keys: List[str] = []
        for target in targets:
            keys.extend(target_keys(target))
        return keys
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in MUTATING_METHODS
    ):
        key = expr_key(node.func.value)
        return [key] if key is not None else []
    return []


def target_keys(target: ast.AST) -> List[str]:
    if isinstance(target, (ast.Tuple, ast.List)):
        keys: List[str] = []
        for element in target.elts:
            keys.extend(target_keys(element))
        return keys
    if isinstance(target, ast.Subscript):
        key = expr_key(target.value)
    else:
        key = expr_key(target)
    return [key] if key is not None else []


def expr_key(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = expr_key(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    if isinstance(node, ast.Subscript):
        return expr_key(node.value)
    return None


# ---------------------------------------------------------------------------
# the assembled project


class ProjectGraph:
    """Symbol table + call graph over the summaries of one lint run."""

    def __init__(self, summaries: Iterable[FileSummary]) -> None:
        self.files: Dict[str, FileSummary] = {}
        self.modules: Dict[str, FileSummary] = {}
        #: Fully-qualified function name → summary.
        self._functions: Dict[str, FunctionSummary] = {}
        #: Import alias seen *as* a module attribute → its dotted origin
        #: (``repro.simlint.lint_source`` → ``repro.simlint.engine.
        #: lint_source``); this is what makes re-exports resolvable.
        self._aliases: Dict[str, str] = {}
        for summary in summaries:
            self.files[summary.path] = summary
            if summary.module:
                self.modules[summary.module] = summary
        for summary in self.modules.values():
            module = summary.module
            for qual, fn in summary.functions.items():
                self._functions[f"{module}.{qual}"] = fn
            for alias, origin in summary.imports.items():
                if origin.startswith(PROJECT_ROOT_PACKAGE):
                    self._aliases[f"{module}.{alias}"] = origin
        self._deps: Dict[str, Tuple[str, ...]] = {}
        self._closure_fp: Dict[str, str] = {}
        self._taint: Optional[Dict] = None

    # -- symbols --------------------------------------------------------

    def resolve(self, dotted: Optional[str]) -> Optional[str]:
        """Canonical function name for ``dotted``, through alias chains.

        Follows re-exports (``from repro.a import f`` then ``from
        repro.pkg_a_wrapper import f``) with a visited set so import
        cycles terminate.  Returns ``None`` for anything that does not
        land on a summarized function.
        """
        seen: Set[str] = set()
        while dotted is not None and dotted not in seen:
            if dotted in self._functions:
                return dotted
            seen.add(dotted)
            dotted = self._aliases.get(dotted)
        return None

    def function(self, dotted: Optional[str]) -> Optional[FunctionSummary]:
        canonical = self.resolve(dotted)
        return self._functions.get(canonical) if canonical else None

    def functions(self) -> Dict[str, FunctionSummary]:
        return dict(self._functions)

    def is_async(self, dotted: Optional[str]) -> bool:
        fn = self.function(dotted)
        return bool(fn and fn.is_async)

    # -- dependencies ---------------------------------------------------

    def module_deps(self, module: str) -> Tuple[str, ...]:
        """Project modules ``module`` imports (direct edges only)."""
        cached = self._deps.get(module)
        if cached is not None:
            return cached
        summary = self.modules.get(module)
        deps: Set[str] = set()
        if summary is not None:
            for origin in summary.imports.values():
                dep = self._owning_module(origin)
                if dep is not None and dep != module:
                    deps.add(dep)
        out = tuple(sorted(deps))
        self._deps[module] = out
        return out

    def _owning_module(self, dotted: str) -> Optional[str]:
        """Longest known-module prefix of a dotted import origin."""
        if not dotted.startswith(PROJECT_ROOT_PACKAGE):
            return None
        parts = dotted.split(".")
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            if candidate in self.modules:
                return candidate
        return None

    def import_closure(self, module: str) -> Tuple[str, ...]:
        """``module`` plus every project module reachable via imports."""
        closure: Set[str] = set()
        frontier = [module]
        while frontier:
            current = frontier.pop()
            if current in closure or current not in self.modules:
                continue
            closure.add(current)
            frontier.extend(self.module_deps(current))
        return tuple(sorted(closure))

    def closure_fingerprint(self, path: str) -> str:
        """Invalidation key for cross-file findings of one file.

        The sha256 of the (module, content-sha) pairs of the file's
        import closure: editing any module a file can see — directly or
        transitively — invalidates its cached cross-file findings, while
        edits elsewhere in the tree leave them warm.
        """
        summary = self.files.get(path)
        if summary is None:
            return ""
        if summary.module is None:
            return summary.sha
        cached = self._closure_fp.get(path)
        if cached is not None:
            return cached
        digest = hashlib.sha256()
        for module in self.import_closure(summary.module):
            entry = self.modules[module]
            digest.update(f"{module}={entry.sha}\n".encode("utf-8"))
        fp = digest.hexdigest()
        self._closure_fp[path] = fp
        return fp

    # -- call graph -----------------------------------------------------

    def reachable(self, roots: Sequence[str]) -> Set[str]:
        """Canonical functions reachable from ``roots`` (inclusive)."""
        seen: Set[str] = set()
        frontier = [r for r in (self.resolve(root) for root in roots) if r]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            fn = self._functions[current]
            for call in fn.calls:
                target = self.resolve(call)
                if target is not None and target not in seen:
                    frontier.append(target)
        return seen

    def reachable_writes(self, root: str) -> Set[str]:
        """Union of write keys over every function reachable from root."""
        writes: Set[str] = set()
        for name in self.reachable([root]):
            writes.update(self._functions[name].writes)
        return writes

    # -- taint ----------------------------------------------------------

    def taint(self) -> Dict[str, Dict]:
        """Fixpoint inter-procedural taint summaries, computed lazily.

        Maps canonical function name → ``{"labels": set, "params": set}``
        — the source labels its return value can carry, and the
        parameter indices whose taint flows through to the return.
        """
        if self._taint is None:
            from repro.simlint.taint import propagate_taint

            self._taint = propagate_taint(self)
        return self._taint


class WriteSurfaceGraph:
    """Write-surface collector over a class + module call graph.

    The resolver SL204 has always used: methods of the same class
    (``self._drain()``), helper closures defined inside ``run`` and
    module-level functions.  With a :class:`ProjectGraph` attached, the
    *oracle* coverage check may additionally credit transitive writes of
    imported project functions (``cross_module=True``); the fast-forward
    / stepped parity diff never does — an imported helper's write keys
    are spelled in the callee's own namespace and would poison the
    key-set comparison.
    """

    def __init__(
        self,
        tree: ast.Module,
        cls: ast.ClassDef,
        run: ast.FunctionDef,
        project: Optional[ProjectGraph] = None,
        module: Optional[str] = None,
        imports: Optional[Dict[str, str]] = None,
    ) -> None:
        self._methods: Dict[str, ast.FunctionDef] = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, ast.FunctionDef)
        }
        self._module_funcs: Dict[str, ast.FunctionDef] = {
            stmt.name: stmt
            for stmt in tree.body
            if isinstance(stmt, ast.FunctionDef)
        }
        # Helper closures defined inside run() (e.g. admit()).
        self._local_funcs: Dict[str, ast.FunctionDef] = {
            node.name: node
            for node in ast.walk(run)
            if isinstance(node, ast.FunctionDef) and node is not run
        }
        self._project = project
        self._module = module
        self._imports = imports or {}

    def reachable_writes(
        self, stmts: List[ast.stmt], cross_module: bool = False
    ) -> Set[str]:
        """State keys written by ``stmts`` and every callee they reach."""
        writes: Set[str] = set()
        visited: Set[str] = set()
        self._collect(stmts, writes, visited, cross_module)
        return writes

    def _collect(
        self,
        stmts: List[ast.stmt],
        writes: Set[str],
        visited: Set[str],
        cross_module: bool,
    ) -> None:
        for stmt in stmts:
            for node in ast.walk(stmt):
                writes.update(write_keys(node))
                callee = self._callee(node)
                if callee is not None and callee[0] not in visited:
                    name, fn = callee
                    visited.add(name)
                    self._collect(fn.body, writes, visited, cross_module)
                elif callee is None and cross_module:
                    writes.update(self._imported_writes(node, visited))

    def _imported_writes(
        self, node: ast.AST, visited: Set[str]
    ) -> Set[str]:
        """Transitive writes of an imported project callee, if known."""
        if self._project is None or not isinstance(node, ast.Call):
            return set()
        dotted = resolve_call_target(
            node, self._imports, self._module, None
        )
        canonical = self._project.resolve(dotted)
        if canonical is None or canonical in visited:
            return set()
        visited.add(canonical)
        return self._project.reachable_writes(canonical)

    def _callee(
        self, node: ast.AST
    ) -> Optional[Tuple[str, ast.FunctionDef]]:
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and func.attr in self._methods
        ):
            return f"self.{func.attr}", self._methods[func.attr]
        if isinstance(func, ast.Name):
            if func.id in self._local_funcs:
                return func.id, self._local_funcs[func.id]
            if func.id in self._module_funcs:
                return func.id, self._module_funcs[func.id]
        return None
