"""The incremental analysis cache: warm re-lints parse nothing.

One JSON file maps each linted path to its content hash, its
:class:`~repro.simlint.project.FileSummary`, and two finding sets:

``local``
    Findings of file-local rules, valid whenever the file's content
    hash matches — edits elsewhere in the tree cannot change them.
``global``
    Findings of cross-file rules (``Rule.cross_file``), additionally
    keyed on the file's *import-closure fingerprint* — the hash of the
    (module, content-sha) pairs of every project module the file can
    see.  Editing a transitive dependency invalidates exactly the
    dependents; editing an unrelated module leaves them warm.

The whole cache is guarded by one run fingerprint combining the lint
configuration and the simlint package's own source hashes, so changing
a rule or a config knob discards stale results wholesale instead of
serving them.  Because summaries are cached too, the project graph of
a warm run is rebuilt from JSON alone: an unchanged tree is re-linted
with **zero** ``ast.parse`` calls — the property the warm-cache test
asserts and the CI lint job times.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields as dataclass_fields
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.simlint.config import LintConfig
from repro.simlint.model import Finding
from repro.simlint.project import SUMMARY_SCHEMA_VERSION, FileSummary

CACHE_SCHEMA_VERSION = 1


def rules_fingerprint() -> str:
    """sha256 over the simlint package's own source files.

    Any change to the engine, a rule, or this module invalidates every
    cached finding — the analysis *is* part of the key.
    """
    package = Path(__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(package.rglob("*.py")):
        digest.update(path.relative_to(package).as_posix().encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def config_fingerprint(config: LintConfig) -> str:
    """sha256 of every config field that can change findings."""
    payload: Dict[str, object] = {}
    for field in dataclass_fields(config):
        value = getattr(config, field.name)
        payload[field.name] = (
            sorted(value.items()) if isinstance(value, dict) else str(value)
        )
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def run_fingerprint(config: LintConfig) -> str:
    return hashlib.sha256(
        f"{CACHE_SCHEMA_VERSION}:{SUMMARY_SCHEMA_VERSION}:"
        f"{rules_fingerprint()}:{config_fingerprint(config)}".encode("utf-8")
    ).hexdigest()


def _dump_findings(findings: List[Finding]) -> List[Dict]:
    return [finding.to_dict() for finding in findings]


def _load_findings(payload: List[Dict]) -> List[Finding]:
    out: List[Finding] = []
    for entry in payload:
        out.append(
            Finding(
                rule=str(entry["rule"]),
                severity=str(entry["severity"]),
                path=str(entry["path"]),
                line=int(entry["line"]),
                col=int(entry["col"]),
                message=str(entry["message"]),
                text=str(entry.get("text", "")),
                context_hash=str(entry.get("context_hash", "")),
            )
        )
    return out


class AnalysisCache:
    """Per-file analysis results, keyed as the module docstring says."""

    def __init__(
        self, path: Optional[Path] = None, fingerprint: str = ""
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.fingerprint = fingerprint
        self._files: Dict[str, Dict] = {}

    @classmethod
    def load(cls, path, config: LintConfig) -> "AnalysisCache":
        """Read a cache file; anything stale or unreadable starts empty."""
        fingerprint = run_fingerprint(config)
        cache = cls(Path(path), fingerprint)
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, ValueError):
            return cache
        if (
            payload.get("schema") != CACHE_SCHEMA_VERSION
            or payload.get("fingerprint") != fingerprint
            or not isinstance(payload.get("files"), dict)
        ):
            return cache
        cache._files = payload["files"]
        return cache

    def save(self) -> None:
        if self.path is None:
            return
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "files": self._files,
        }
        self.path.write_text(json.dumps(payload, sort_keys=True) + "\n")

    # -- reads ----------------------------------------------------------

    def _entry(self, path: str, sha: str) -> Optional[Dict]:
        entry = self._files.get(path)
        if entry is None or entry.get("sha") != sha:
            return None
        return entry

    def broken_for(self, path: str, sha: str) -> Optional[str]:
        entry = self._entry(path, sha)
        if entry is None:
            return None
        message = entry.get("broken")
        return str(message) if message is not None else None

    def summary_for(self, path: str, sha: str) -> Optional[FileSummary]:
        entry = self._entry(path, sha)
        if entry is None or "summary" not in entry:
            return None
        return FileSummary.from_dict(entry["summary"])

    def local_findings(
        self, path: str, sha: str
    ) -> Optional[Tuple[List[Finding], int]]:
        entry = self._entry(path, sha)
        if entry is None or "local" not in entry:
            return None
        local = entry["local"]
        return _load_findings(local["findings"]), int(local["suppressed"])

    def global_findings(
        self, path: str, sha: str, deps_fp: str
    ) -> Optional[Tuple[List[Finding], int]]:
        entry = self._entry(path, sha)
        if entry is None or "global" not in entry:
            return None
        cached = entry["global"]
        if cached.get("deps") != deps_fp:
            return None
        return _load_findings(cached["findings"]), int(cached["suppressed"])

    # -- writes ---------------------------------------------------------

    def _fresh(self, path: str, sha: str) -> Dict:
        entry = self._files.get(path)
        if entry is None or entry.get("sha") != sha:
            entry = {"sha": sha}
            self._files[path] = entry
        return entry

    def store_broken(self, path: str, sha: str, message: str) -> None:
        self._fresh(path, sha)["broken"] = message

    def store_summary(
        self, path: str, sha: str, summary: FileSummary
    ) -> None:
        self._fresh(path, sha)["summary"] = summary.to_dict()

    def store_local(
        self, path: str, sha: str, findings: List[Finding], suppressed: int
    ) -> None:
        self._fresh(path, sha)["local"] = {
            "findings": _dump_findings(findings),
            "suppressed": suppressed,
        }

    def store_global(
        self,
        path: str,
        sha: str,
        deps_fp: str,
        findings: List[Finding],
        suppressed: int,
    ) -> None:
        self._fresh(path, sha)["global"] = {
            "deps": deps_fp,
            "findings": _dump_findings(findings),
            "suppressed": suppressed,
        }
