"""Lint configuration, driven by ``[tool.simlint]`` in pyproject.toml.

Keys (all optional — the defaults below describe this repository):

``baseline``
    Path of the committed baseline file, relative to the pyproject.
``exclude``
    Path prefixes / glob patterns never linted (rule fixtures live here).
``timing-critical``
    Packages whose code runs under the simulated clock; ``scope="timing"``
    rules only fire inside these.
``singletons``
    Module-level singleton names whose mutation SL201 flags, in addition
    to the ALL_CAPS naming convention.
``counter-owners``
    Packages allowed to write ``Counters`` fields (SL203).
``print-allowed``
    Modules where ``print()`` is the job (SL402).
``async-critical``
    Packages whose code runs on the asyncio event loop; the SL5xx
    concurrency family (``scope="async"``) only fires inside these.
``vector-packages``
    Packages holding the numpy timing backend; the SL6xx vector family
    (``scope="vector"``) only fires inside these.
``soa-cache-writers``
    Function names sanctioned to mutate the ``_vector_cache`` SoA
    mirrors (SL602).
``taint-sinks``
    Function names whose return value is a content key / cache salt —
    the determinism taint engine (SL110) rejects tainted returns here.
``test-families``
    Rule categories that also run against ``tests/`` files.
``cache``
    Path of the incremental analysis cache file, relative to the
    pyproject; unset disables caching unless ``--cache`` is passed.
``disable``
    Rule ids turned off entirely.
``[tool.simlint.severity]``
    Per-rule severity overrides (``"error"`` / ``"warning"``).

Python < 3.11 has no ``tomllib``; a minimal TOML-subset reader covers
the string/list-of-strings shape these keys use.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.simlint.model import Severity

DEFAULT_TIMING_CRITICAL = (
    "repro.gpu", "repro.stack", "repro.trace", "repro.traversal"
)
DEFAULT_SINGLETONS = (
    "EMPTY_ACTIVITY",
    "DEFAULT_PARAMS",
    "REFERENCE_MATRIX",
    "SCENE_NAMES",
    "FAULT_CLASSES",
    "RULES",
)
DEFAULT_COUNTER_OWNERS = ("repro.gpu",)
DEFAULT_PRINT_ALLOWED = ("repro.cli",)
DEFAULT_ASYNC_CRITICAL = ("repro.service",)
DEFAULT_VECTOR_PACKAGES = ("repro.gpu.vector",)
DEFAULT_SOA_CACHE_WRITERS = ("trace_cache", "pack_trace", "warp_plan")
DEFAULT_TAINT_SINKS = ("key", "spec", "content_key", "cache_key", "salt")
DEFAULT_TEST_FAMILIES = ("determinism", "hygiene")


@dataclass
class LintConfig:
    """Resolved lint settings for one run."""

    baseline_path: Optional[Path] = None
    exclude: Tuple[str, ...] = ()
    timing_critical: Tuple[str, ...] = DEFAULT_TIMING_CRITICAL
    singletons: Tuple[str, ...] = DEFAULT_SINGLETONS
    counter_owners: Tuple[str, ...] = DEFAULT_COUNTER_OWNERS
    print_allowed: Tuple[str, ...] = DEFAULT_PRINT_ALLOWED
    async_critical: Tuple[str, ...] = DEFAULT_ASYNC_CRITICAL
    vector_packages: Tuple[str, ...] = DEFAULT_VECTOR_PACKAGES
    soa_cache_writers: Tuple[str, ...] = DEFAULT_SOA_CACHE_WRITERS
    taint_sinks: Tuple[str, ...] = DEFAULT_TAINT_SINKS
    test_families: Tuple[str, ...] = DEFAULT_TEST_FAMILIES
    cache_path: Optional[Path] = None
    disabled: Tuple[str, ...] = ()
    severity: Dict[str, str] = field(default_factory=dict)

    def severity_for(self, rule) -> str:
        """The effective severity of ``rule`` under this config."""
        return self.severity.get(rule.id, rule.severity)


def load_config(pyproject: Optional[Path] = None) -> LintConfig:
    """Build a :class:`LintConfig` from ``[tool.simlint]``.

    ``pyproject=None`` looks for ``pyproject.toml`` in the current
    working directory; a missing file or section yields the defaults.
    """
    path = Path(pyproject) if pyproject is not None else Path("pyproject.toml")
    if not path.exists():
        return LintConfig()
    table = _read_tool_table(path, "simlint")
    if not table:
        return LintConfig()
    config = LintConfig()
    baseline = table.get("baseline")
    if baseline:
        config.baseline_path = path.parent / str(baseline)
    config.exclude = _str_tuple(table, "exclude", config.exclude)
    config.timing_critical = _str_tuple(
        table, "timing-critical", config.timing_critical
    )
    config.singletons = _str_tuple(table, "singletons", config.singletons)
    config.counter_owners = _str_tuple(
        table, "counter-owners", config.counter_owners
    )
    config.print_allowed = _str_tuple(
        table, "print-allowed", config.print_allowed
    )
    config.async_critical = _str_tuple(
        table, "async-critical", config.async_critical
    )
    config.vector_packages = _str_tuple(
        table, "vector-packages", config.vector_packages
    )
    config.soa_cache_writers = _str_tuple(
        table, "soa-cache-writers", config.soa_cache_writers
    )
    config.taint_sinks = _str_tuple(table, "taint-sinks", config.taint_sinks)
    config.test_families = _str_tuple(
        table, "test-families", config.test_families
    )
    cache = table.get("cache")
    if cache:
        config.cache_path = path.parent / str(cache)
    config.disabled = _str_tuple(table, "disable", config.disabled)
    severity = table.get("severity") or {}
    if not isinstance(severity, dict):
        raise ReproError("[tool.simlint.severity] must be a table")
    for rule_id, value in severity.items():
        if value not in Severity.ALL:
            raise ReproError(
                f"[tool.simlint.severity] {rule_id} = {value!r}: severity "
                f"must be one of {', '.join(Severity.ALL)}"
            )
        config.severity[str(rule_id)] = str(value)
    return config


def _str_tuple(table: dict, key: str, default: Tuple[str, ...]) -> Tuple[str, ...]:
    value = table.get(key)
    if value is None:
        return default
    if isinstance(value, str):
        return (value,)
    if isinstance(value, (list, tuple)) and all(
        isinstance(item, str) for item in value
    ):
        return tuple(value)
    raise ReproError(f"[tool.simlint] {key} must be a string or list of strings")


def _read_tool_table(path: Path, tool: str) -> dict:
    """The ``[tool.<tool>]`` table of a pyproject, sub-tables included."""
    text = path.read_text()
    try:
        import tomllib  # Python >= 3.11
    except ImportError:
        return _parse_toml_subset(text, f"tool.{tool}")
    data = tomllib.loads(text)
    return data.get("tool", {}).get(tool, {}) or {}


def _parse_toml_subset(text: str, section: str) -> dict:
    """Minimal TOML reader for ``[section]`` and its direct sub-tables.

    Supports ``key = "string"`` and ``key = [list, of, strings]``
    (multi-line lists included) — the only shapes ``[tool.simlint]``
    uses.  Anything fancier should run on Python 3.11+ where the real
    ``tomllib`` takes over.
    """
    table: dict = {}
    current: Optional[dict] = None
    pending_key: Optional[str] = None
    pending_items: List[str] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        header = re.match(r"^\[([^\]]+)\]$", line)
        if header:
            name = header.group(1).strip()
            pending_key = None
            if name == section:
                current = table
            elif name.startswith(section + "."):
                sub = name[len(section) + 1:]
                current = table.setdefault(sub, {})
            else:
                current = None
            continue
        if current is None:
            continue
        if pending_key is not None:
            pending_items.extend(_list_items(line))
            if line.rstrip().endswith("]"):
                current[pending_key] = pending_items
                pending_key, pending_items = None, []
            continue
        match = re.match(r"^([\w.-]+)\s*=\s*(.+)$", line)
        if not match:
            continue
        key, value = match.group(1), match.group(2).strip()
        if value.startswith("["):
            items = _list_items(value[1:])
            if value.rstrip().endswith("]"):
                current[key] = items
            else:
                pending_key, pending_items = key, items
        elif value and value[0] in "\"'":
            current[key] = value[1:-1] if value[-1] == value[0] else value[1:]
        else:
            current[key] = value
    return table


def _list_items(fragment: str) -> List[str]:
    """Quoted strings from one line of a (possibly multi-line) TOML list."""
    return [a or b for a, b in re.findall(r"\"([^\"]*)\"|'([^']*)'", fragment)]
