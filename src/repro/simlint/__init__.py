"""repro.simlint — determinism & invariant static analysis for the simulator.

The reproduction's contracts — bit-identical event streams between the
scalar and wave tracers, fast-forward ≡ stepped timing, the SMS
conservation laws, picklable ``__slots__`` hot-path records — are all
*runtime*-checkable, which means a violation is only caught when a test
happens to exercise it.  ``simlint`` rejects whole classes of hazard at
review time instead: it parses every source file into an AST and runs a
registry of purpose-built rules over it.

Rule families (see :mod:`repro.simlint.rules`):

``SL1xx`` (determinism)
    wall-clock reads, unseeded RNG, unordered-collection iteration,
    object-identity (``id()``) ordering in the timing-critical packages.
``SL2xx`` (bit-identity)
    module-level singleton mutation, ``__slots__`` pickle-contract
    violations, counter writes outside the owning package, and the
    fast-forward/stepped mutation-surface parity proof.
``SL3xx`` (diagnostics conventions)
    raw builtin exceptions where a ``DiagnosticError`` is required,
    broad ``except`` handlers that swallow without recording.
``SL4xx`` (hygiene)
    mutable default arguments, stray ``print()`` in library code.
``SL5xx`` (concurrency)
    blocking calls, unawaited coroutines, awaits under sync locks and
    stale read-modify-write across awaits in the asyncio service.
``SL6xx`` (vector)
    float64 promotion into integer counters, SoA mirror-cache mutation,
    unstable numpy sorts/reductions and unchecked CSR offsets in the
    vector timing backend.
``SL110`` (whole-program taint)
    entropy (clock/RNG/``id``/``hash``/set order) flowing — through
    helpers and module boundaries — into counters, job content keys or
    scheduler ordering decisions.

The whole-program layer (:mod:`repro.simlint.project`) summarizes every
file into a JSON-serializable form, assembles a symbol table + call
graph with re-export resolution, and persists the summaries in an
incremental cache (:mod:`repro.simlint.cache`) keyed on content hashes,
so a warm ``repro lint`` re-parses nothing and re-analyzes only files
whose content or import closure changed.

Findings can be silenced per line (``# simlint: disable=SL101``), per
file (``# simlint: disable-file=SL103``), or grandfathered through the
committed baseline file (schema 2: line-drift-stable context hashes).
Exit codes are stable: 0 clean, 1 findings, 2 usage/internal error.
Run it as ``repro lint [paths ...]`` (``--changed`` lints only the
files touched in the working tree).
"""

from repro.simlint.baseline import (
    Baseline,
    context_hash_for,
    load_baseline,
    write_baseline,
)
from repro.simlint.cache import AnalysisCache
from repro.simlint.changed import changed_python_files
from repro.simlint.config import LintConfig, load_config
from repro.simlint.engine import LintReport, lint_paths, lint_source
from repro.simlint.model import Finding, Severity
from repro.simlint.project import FileSummary, ProjectGraph, content_hash
from repro.simlint.registry import RULES, all_rules, get_rule, register
from repro.simlint import rules as _rules  # noqa: F401  (populates RULES)
from repro.simlint.reporters import render_json, render_sarif, render_text

__all__ = [
    "AnalysisCache",
    "Baseline",
    "FileSummary",
    "Finding",
    "LintConfig",
    "LintReport",
    "ProjectGraph",
    "RULES",
    "Severity",
    "all_rules",
    "changed_python_files",
    "content_hash",
    "context_hash_for",
    "get_rule",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "load_config",
    "register",
    "render_json",
    "render_sarif",
    "render_text",
    "write_baseline",
]
