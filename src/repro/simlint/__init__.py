"""repro.simlint — determinism & invariant static analysis for the simulator.

The reproduction's contracts — bit-identical event streams between the
scalar and wave tracers, fast-forward ≡ stepped timing, the SMS
conservation laws, picklable ``__slots__`` hot-path records — are all
*runtime*-checkable, which means a violation is only caught when a test
happens to exercise it.  ``simlint`` rejects whole classes of hazard at
review time instead: it parses every source file into an AST and runs a
registry of purpose-built rules over it.

Rule families (see :mod:`repro.simlint.rules`):

``SL1xx`` (determinism)
    wall-clock reads, unseeded RNG, unordered-collection iteration,
    object-identity (``id()``) ordering in the timing-critical packages.
``SL2xx`` (bit-identity)
    module-level singleton mutation, ``__slots__`` pickle-contract
    violations, counter writes outside the owning package, and the
    fast-forward/stepped mutation-surface parity proof.
``SL3xx`` (diagnostics conventions)
    raw builtin exceptions where a ``DiagnosticError`` is required,
    broad ``except`` handlers that swallow without recording.
``SL4xx`` (hygiene)
    mutable default arguments, stray ``print()`` in library code.

Findings can be silenced per line (``# simlint: disable=SL101``), per
file (``# simlint: disable-file=SL103``), or grandfathered through the
committed baseline file.  Exit codes are stable: 0 clean, 1 findings,
2 usage/internal error.  Run it as ``repro lint [paths ...]``.
"""

from repro.simlint.baseline import Baseline, load_baseline, write_baseline
from repro.simlint.config import LintConfig, load_config
from repro.simlint.engine import LintReport, lint_paths, lint_source
from repro.simlint.model import Finding, Severity
from repro.simlint.registry import RULES, all_rules, get_rule, register
from repro.simlint import rules as _rules  # noqa: F401  (populates RULES)
from repro.simlint.reporters import render_json, render_text

__all__ = [
    "Baseline",
    "Finding",
    "LintConfig",
    "LintReport",
    "RULES",
    "Severity",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "load_config",
    "register",
    "render_json",
    "render_text",
    "write_baseline",
]
