"""Determinism taint: from entropy sources to the sinks that matter.

The SL1xx rules reject *calls* to nondeterministic APIs at the call
site.  That leaves a blind spot: a wall-clock read that is allowed
somewhere (or merely missed) can still *flow* — through locals, helper
returns and module boundaries — into state that must be a pure function
of (scene, config, seed): ``Counters`` fields, ``SimulationJob``
content keys, cache salts, scheduler ordering decisions.  This module
tracks that flow.

Design, in three layers:

* :func:`classify_source` labels the roots: wall/host clocks,
  process-global RNG, OS entropy, ``id()`` / ``hash()`` address- and
  seed-dependence, and hash-order materialization (``list(set(...))``).
* :class:`TaintAnalyzer` runs a conservative, flow-insensitive-ish
  abstract interpretation over one function body (two passes, so
  loop-carried locals converge) and reports events through hooks:
  stores, returns, ordering calls.  With a ``lookup`` it consults
  cross-module function summaries, so taint follows calls it cannot
  inline.
* :func:`structural_taint` is the summary extractor (what a function's
  return can carry *structurally*: direct source labels, parameter
  pass-through, callee returns), and :func:`propagate_taint` closes
  those summaries over the project call graph to a fixpoint.

Everything here is deliberately over-approximate in the value domain
(any operation on a tainted value stays tainted) and under-approximate
in the alias domain (only named locals are tracked) — the combination
that keeps the sink rules quiet on clean code and loud on real flows.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.simlint.rules.determinism import (
    HOST_CLOCK,
    UNSEEDED_ENTROPY,
    UNSEEDED_ENTROPY_PREFIXES,
    WALL_CLOCK,
)

#: Taint labels, in the vocabulary findings use.
LABEL_CLOCK = "wall-clock"
LABEL_RNG = "process-global RNG"
LABEL_OS_ENTROPY = "OS entropy"
LABEL_ID = "id() address"
LABEL_HASH = "hash() randomization"
LABEL_SET_ORDER = "set iteration order"

#: Seeded constructors are the sanctioned RNG entry points, not sources.
_SEEDED_RNG = {
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.Generator",
}

#: Materializing an unordered collection hands hash order to the caller.
_ORDER_MATERIALIZERS = {"list", "tuple", "iter"}


def classify_source(dotted: Optional[str]) -> Optional[str]:
    """The taint label a call to ``dotted`` introduces, if any."""
    if dotted is None:
        return None
    if dotted in WALL_CLOCK or dotted in HOST_CLOCK:
        return LABEL_CLOCK
    if dotted == "id":
        return LABEL_ID
    if dotted == "hash":
        return LABEL_HASH
    if dotted == "random.SystemRandom" or dotted in UNSEEDED_ENTROPY:
        return LABEL_OS_ENTROPY
    if dotted.startswith(UNSEEDED_ENTROPY_PREFIXES):
        return LABEL_OS_ENTROPY
    if dotted.startswith("random.") and dotted not in _SEEDED_RNG:
        return LABEL_RNG
    if dotted.startswith("numpy.random.") and dotted not in _SEEDED_RNG:
        return LABEL_RNG
    return None


class Taint:
    """A taint value: source labels plus parameter pass-through."""

    __slots__ = ("labels", "params")

    def __init__(
        self,
        labels: Optional[Set[str]] = None,
        params: Optional[Set[int]] = None,
    ) -> None:
        self.labels: Set[str] = set(labels or ())
        self.params: Set[int] = set(params or ())

    def __bool__(self) -> bool:
        return bool(self.labels or self.params)

    def __or__(self, other: "Taint") -> "Taint":
        return Taint(self.labels | other.labels, self.params | other.params)

    def copy(self) -> "Taint":
        return Taint(self.labels, self.params)


CLEAN = Taint()

#: Cross-module summary shape: canonical name → labels / param indices.
SummaryLookup = Callable[[Optional[str]], Optional[Dict]]


class TaintAnalyzer:
    """Abstract interpretation of one function body.

    Statements are processed in source order twice — the first pass
    seeds the environment (so loop-carried and forward-referenced
    locals are known), the second emits events.  Branch bodies share
    one environment (path-insensitive), nested function bodies are
    skipped (they have their own summaries), and stores through
    anything other than a resolvable dotted chain are dropped.
    """

    def __init__(
        self,
        fn: ast.AST,
        imports: Dict[str, str],
        module: Optional[str] = None,
        cls_name: Optional[str] = None,
        lookup: Optional[SummaryLookup] = None,
        on_store: Optional[Callable] = None,
        on_return: Optional[Callable] = None,
        on_order: Optional[Callable] = None,
        local_defs: Optional[Set[str]] = None,
    ) -> None:
        self._fn = fn
        self._imports = imports
        self._module = module
        self._cls = cls_name
        self._local_defs = local_defs or set()
        self._lookup = lookup
        self._on_store = on_store
        self._on_return = on_return
        self._on_order = on_order
        args = fn.args
        names = [
            a.arg
            for a in (
                list(getattr(args, "posonlyargs", []))
                + list(args.args)
                + list(args.kwonlyargs)
            )
        ]
        self._params: Dict[str, int] = {n: i for i, n in enumerate(names)}
        self._env: Dict[str, Taint] = {}
        #: (callee dotted, caller params passed) for calls whose result
        #: reaches a return — the structural summary's call edges.
        self.return_calls: Set[Tuple[str, Tuple[int, ...]]] = set()
        self.return_taint = Taint()

    def run(self) -> None:
        body = list(getattr(self._fn, "body", []))
        self._walk(body, emit=False)
        self._walk(body, emit=True)

    # -- statements -----------------------------------------------------

    def _walk(self, stmts: Sequence[ast.stmt], emit: bool) -> None:
        for stmt in stmts:
            self._statement(stmt, emit)

    def _statement(self, stmt: ast.stmt, emit: bool) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, emit)
            for target in stmt.targets:
                self._store(target, value, stmt, emit)
        elif isinstance(stmt, ast.AugAssign):
            value = self._eval(stmt.value, emit) | self._eval(
                stmt.target, emit=False
            )
            self._store(stmt.target, value, stmt, emit)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._store(stmt.target, self._eval(stmt.value, emit), stmt, emit)
        elif isinstance(stmt, ast.Return):
            taint = (
                self._eval(stmt.value, emit)
                if stmt.value is not None
                else CLEAN
            )
            if emit:
                self.return_taint = self.return_taint | taint
                if stmt.value is not None:
                    self._collect_return_calls(stmt.value)
                if self._on_return is not None:
                    self._on_return(stmt, taint)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._store(stmt.target, self._eval(stmt.iter, emit), stmt,
                        emit=False)
            self._walk(stmt.body, emit)
            self._walk(stmt.orelse, emit)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self._eval(item.context_expr, emit)
                if item.optional_vars is not None:
                    self._store(item.optional_vars, taint, stmt, emit=False)
            self._walk(stmt.body, emit)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._eval(stmt.test, emit)
            self._walk(stmt.body, emit)
            self._walk(stmt.orelse, emit)
        elif isinstance(stmt, ast.Try):
            self._walk(stmt.body, emit)
            for handler in stmt.handlers:
                self._walk(handler.body, emit)
            self._walk(stmt.orelse, emit)
            self._walk(stmt.finalbody, emit)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, emit)

    def _store(
        self, target: ast.AST, value: Taint, stmt: ast.stmt, emit: bool
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._store(element, value, stmt, emit)
            return
        if isinstance(target, ast.Starred):
            self._store(target.value, value, stmt, emit)
            return
        if isinstance(target, ast.Name):
            self._env[target.id] = value.copy()
        if emit and self._on_store is not None:
            self._on_store(target, value, stmt)

    # -- expressions ----------------------------------------------------

    def _eval(self, node: Optional[ast.AST], emit: bool) -> Taint:
        if node is None or isinstance(node, ast.Constant):
            return CLEAN
        if isinstance(node, ast.Name):
            if node.id in self._env:
                return self._env[node.id]
            if node.id in self._params:
                return Taint(params={self._params[node.id]})
            return CLEAN
        if isinstance(node, ast.Call):
            return self._eval_call(node, emit)
        if isinstance(node, ast.Lambda):
            return CLEAN
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return CLEAN
        # Attribute / Subscript / BinOp / BoolOp / Compare / IfExp /
        # comprehensions / f-strings / containers: taint is the union of
        # the children — any derivation of a tainted value is tainted.
        taint = Taint()
        for child in ast.iter_child_nodes(node):
            taint = taint | self._eval(child, emit)
        return taint

    def _eval_call(self, node: ast.Call, emit: bool) -> Taint:
        dotted = self._dotted(node.func)
        args_taint = Taint()
        per_arg: List[Taint] = []
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            taint = self._eval(arg, emit)
            per_arg.append(taint)
            args_taint = args_taint | taint
        label = classify_source(dotted)
        if label is not None:
            return Taint(labels={label})
        if dotted in _ORDER_MATERIALIZERS and node.args:
            if self._is_unordered(node.args[0]):
                return args_taint | Taint(labels={LABEL_SET_ORDER})
        if (
            emit
            and dotted in ("sorted", "min", "max")
            and args_taint
            and self._on_order is not None
        ):
            self._on_order(node, args_taint)
        summary = self._lookup(dotted) if self._lookup is not None else None
        if summary is not None:
            taint = Taint(labels=set(summary.get("labels", ())))
            for index in summary.get("params", ()):
                if 0 <= index < len(per_arg):
                    taint = taint | per_arg[index]
            return taint
        # Unknown callee: conservatively, the result carries whatever
        # its arguments carried (str(now), math.floor(now), ...).
        return args_taint

    def _is_unordered(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return self._dotted(node.func) in ("set", "frozenset")
        return False

    def _dotted(self, func: ast.AST) -> Optional[str]:
        parts: List[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        if root == "self" and self._cls and self._module and len(parts) == 1:
            return f"{self._module}.{self._cls}.{parts[0]}"
        if (
            not parts
            and root not in self._imports
            and root in self._local_defs
            and self._module
        ):
            # Bare call to a same-module helper: qualify it so project
            # summaries and lookups resolve it.
            return f"{self._module}.{root}"
        parts.append(self._imports.get(root, root))
        return ".".join(reversed(parts))

    def _collect_return_calls(self, value: ast.AST) -> None:
        for node in ast.walk(value):
            if not isinstance(node, ast.Call):
                continue
            dotted = self._dotted(node.func)
            if dotted is None or classify_source(dotted) is not None:
                continue
            passed: Set[int] = set()
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                for name in ast.walk(arg):
                    if (
                        isinstance(name, ast.Name)
                        and name.id in self._params
                    ):
                        passed.add(self._params[name.id])
            self.return_calls.add((dotted, tuple(sorted(passed))))


def structural_taint(
    fn: ast.AST,
    imports: Dict[str, str],
    module: Optional[str],
    cls_name: Optional[str],
    local_defs: Optional[Set[str]] = None,
) -> Tuple[Set[str], Set[int], Set[Tuple[str, Tuple[int, ...]]]]:
    """One function's summary-level taint facts, with no project view.

    Returns ``(labels, return_params, return_calls)``: source labels
    that reach a return directly, parameter indices that flow to a
    return, and the call edges :func:`propagate_taint` closes over.
    """
    analyzer = TaintAnalyzer(fn, imports, module=module, cls_name=cls_name,
                             local_defs=local_defs)
    analyzer.run()
    return (
        analyzer.return_taint.labels,
        analyzer.return_taint.params,
        analyzer.return_calls,
    )


def propagate_taint(graph) -> Dict[str, Dict]:
    """Close structural summaries over the call graph to a fixpoint.

    Two facts propagate along ``return_calls`` edges: a callee's return
    labels become the caller's (its return feeds the caller's return),
    and if the callee passes *its* parameters through, the caller
    parameters fed into that call become pass-through too.  Cycles
    terminate because both domains only grow and are finite.
    """
    functions = graph.functions()
    labels: Dict[str, Set[str]] = {}
    params: Dict[str, Set[int]] = {}
    for name, fn in functions.items():
        labels[name] = set(fn.taint_sources)
        params[name] = set(fn.taint_return_params)
    changed = True
    while changed:
        changed = False
        for name, fn in functions.items():
            for callee, passed in fn.taint_return_calls:
                target = graph.resolve(callee)
                if target is None:
                    continue
                if not labels[target] <= labels[name]:
                    labels[name] |= labels[target]
                    changed = True
                if params[target] and not set(passed) <= params[name]:
                    params[name] |= set(passed)
                    changed = True
    return {
        name: {"labels": labels[name], "params": params[name]}
        for name in functions
    }
