"""SL6xx — numpy/vector-backend rules.

PR 9's vector timing backend is bit-identical to the stepped scheduler
only under four invariants that numpy makes easy to break silently:
counter arithmetic stays integer (float64 promotion rounds), the cached
SoA mirrors on ``RayTrace._vector_cache`` are immutable outside their
builders (a mutated mirror serves stale timing to every later run),
reductions and sorts are order-stable (quicksort ties and hash-order
operands reorder float accumulation), and CSR pack/unpack offsets are
validated before they index (a truncated ``push_off`` silently drops
pushes instead of failing).  Each rule pins one invariant.

All four are scope-limited to the configured vector packages
(``repro.gpu.vector``).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.simlint.model import Finding
from repro.simlint.project import MUTATING_METHODS, expr_key
from repro.simlint.registry import Rule, register

#: RHS call targets that produce floats from integer operands.
_FLOAT_PRODUCERS = {
    "float",
    "numpy.mean",
    "numpy.average",
    "numpy.divide",
    "numpy.true_divide",
    "numpy.float64",
    "numpy.float32",
}

#: numpy sorts whose default kind (introsort) is unstable.
_UNSTABLE_SORTS = {"numpy.argsort", "numpy.sort"}
_STABLE_KINDS = {"stable", "mergesort"}


def _counter_chain(target: ast.AST) -> Optional[str]:
    """The dotted key of a store into a Counters field, if it is one."""
    if not isinstance(target, ast.Attribute):
        return None
    key = expr_key(target)
    if key is None:
        return None
    parts = key.split(".")
    return key if "counters" in parts[:-1] or "_counters" in parts[:-1] else None


@register
class FloatPromotedCounterRule(Rule):
    id = "SL601"
    title = "float-promoting arithmetic written into an int counter"
    severity = "error"
    scope = "vector"
    category = "vector"
    rationale = (
        "Counters are integer event counts, and stepped/vector parity "
        "is bitwise equality on them.  numpy promotes int64 through "
        "true division, means and float constants to float64 — and a "
        "counter fold that rounds 9.999999999 back to 9 (or stores a "
        "float) diverges from the stepped loop on exactly the workloads "
        "big enough to accumulate error.  Counter RHS math must stay in "
        "integer ops (//, sums of ints) or wrap the final value in "
        "int() after exact arithmetic."
    )

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Assign, ast.AugAssign)):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            chains = [c for c in map(_counter_chain, targets) if c]
            if not chains:
                continue
            hazard = self._float_hazard(ctx, node.value)
            if hazard is not None:
                yield ctx.finding(
                    self, node,
                    f"write to {chains[0]} goes through {hazard} — "
                    f"float64 promotion breaks bitwise counter parity; "
                    f"keep the arithmetic integral (//) or wrap in int()",
                )

    def _float_hazard(self, ctx, value: ast.AST) -> Optional[str]:
        """A float-producing node in ``value`` not sanctioned by int()."""
        int_guarded: Set[int] = set()
        for node in ast.walk(value):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "int"
            ):
                for inner in ast.walk(node):
                    int_guarded.add(id(inner))
        for node in ast.walk(value):
            if id(node) in int_guarded:
                continue
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                return "true division (/)"
            if isinstance(node, ast.Constant) and isinstance(
                node.value, float
            ):
                return f"a float constant ({node.value!r})"
            if isinstance(node, ast.Call):
                dotted = ctx.resolve(node.func)
                if dotted in _FLOAT_PRODUCERS:
                    return f"{dotted}()"
        return None


@register
class SoACacheMutationRule(Rule):
    id = "SL602"
    title = "SoA mirror cache mutated outside its sanctioned writers"
    severity = "error"
    scope = "vector"
    category = "vector"
    rationale = (
        "pack_trace caches the SoA mirror on the trace's _vector_cache "
        "slot and every later vector run trusts it verbatim — the "
        "mirror is memoized *derived* data, never an input.  A write "
        "from anywhere else (a 'fast path' tweaking a cached column, a "
        "test poking state in) silently serves stale or divergent "
        "timing to every subsequent run over that trace.  Mutation is "
        "restricted to the configured soa-cache-writers "
        "(trace_cache/pack_trace/warp_plan, which populate fresh "
        "entries); everything else must repack."
    )

    def check(self, ctx) -> Iterator[Finding]:
        writers = set(ctx.config.soa_cache_writers)
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if fn.name in writers:
                continue
            cache_locals = self._cache_locals(ctx, fn)
            for node in self._own_walk(fn):
                yield from self._check_node(ctx, fn, node, cache_locals)

    @staticmethod
    def _own_walk(fn) -> Iterator[ast.AST]:
        stack: List[ast.AST] = list(fn.body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def _cache_locals(self, ctx, fn) -> Set[str]:
        """Locals bound from ``trace_cache(...)`` or ``._vector_cache``."""
        names: Set[str] = set()
        for node in self._own_walk(fn):
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                continue
            value = node.value
            if (
                isinstance(value, ast.Call)
                and ctx.resolve(value.func) is not None
                and ctx.resolve(value.func).rsplit(".", 1)[-1]
                == "trace_cache"
            ):
                names.add(node.targets[0].id)
            elif (
                isinstance(value, ast.Attribute)
                and value.attr == "_vector_cache"
            ):
                names.add(node.targets[0].id)
        return names

    def _check_node(self, ctx, fn, node: ast.AST, cache_locals: Set[str]):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    # Rebinding a local alias is not a cache mutation
                    # (it is how aliases are *created*).
                    continue
                if self._hits_cache(target, cache_locals):
                    yield ctx.finding(
                        self, node,
                        f"function {fn.name} writes into a cached SoA "
                        f"mirror (_vector_cache) — only the sanctioned "
                        f"writers ({', '.join(sorted(ctx.config.soa_cache_writers))}) "
                        f"may populate it; repack instead of patching",
                    )
                    return
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATING_METHODS
            and self._hits_cache(node.func.value, cache_locals)
        ):
            yield ctx.finding(
                self, node,
                f"function {fn.name} calls .{node.func.attr}() on a "
                f"cached SoA mirror (_vector_cache) — mirrors are "
                f"immutable outside the sanctioned writers",
            )

    @staticmethod
    def _hits_cache(node: ast.AST, cache_locals: Set[str]) -> bool:
        """Does this expression address the _vector_cache or an alias?"""
        probe = node
        while isinstance(probe, ast.Subscript):
            probe = probe.value
        if isinstance(probe, ast.Attribute) and probe.attr == "_vector_cache":
            return True
        if isinstance(probe, ast.Name) and probe.id in cache_locals:
            return True
        return False


@register
class UnstableReductionRule(Rule):
    id = "SL603"
    title = "nondeterministic-order numpy sort or reduction"
    severity = "error"
    scope = "vector"
    category = "vector"
    rationale = (
        "np.argsort/np.sort default to introsort, which breaks ties by "
        "memory layout — two runs over identical data can order equal "
        "keys differently, and any downstream gather or cumulative "
        "reduction then diverges bit-from-bit.  Reductions over hash-"
        "ordered operands (sets) inherit the same run-to-run "
        "instability.  Sorts must pass kind='stable', and reduction "
        "inputs must come from explicitly ordered sequences."
    )

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.resolve(node.func)
            if dotted in _UNSTABLE_SORTS:
                kind = next(
                    (kw.value for kw in node.keywords if kw.arg == "kind"),
                    None,
                )
                stable = (
                    isinstance(kind, ast.Constant)
                    and kind.value in _STABLE_KINDS
                )
                if not stable:
                    yield ctx.finding(
                        self, node,
                        f"{dotted}() without kind='stable' breaks ties "
                        f"by memory layout — equal keys reorder between "
                        f"runs and downstream gathers diverge",
                    )
            elif dotted is not None and dotted.startswith("numpy."):
                for arg in node.args:
                    if self._unordered_operand(ctx, arg):
                        yield ctx.finding(
                            self, node,
                            f"{dotted}() consumes a hash-ordered "
                            f"collection — materialize a sorted/"
                            f"explicitly ordered sequence first",
                        )
                        break

    @staticmethod
    def _unordered_operand(ctx, arg: ast.AST) -> bool:
        if isinstance(arg, (ast.Set, ast.SetComp)):
            return True
        if isinstance(arg, ast.Call):
            return ctx.resolve(arg.func) in ("set", "frozenset")
        if isinstance(arg, ast.GeneratorExp):
            return any(
                isinstance(gen.iter, (ast.Set, ast.SetComp))
                or (
                    isinstance(gen.iter, ast.Call)
                    and ctx.resolve(gen.iter.func) in ("set", "frozenset")
                )
                for gen in arg.generators
            )
        return False


@register
class UncheckedCsrBoundsRule(Rule):
    id = "SL604"
    title = "CSR offset slice without shape validation"
    severity = "error"
    scope = "vector"
    category = "vector"
    rationale = (
        "The SoA mirrors carry ragged per-step data CSR-style: "
        "``pushes[push_off[k]:push_off[k+1]]``.  Python slicing "
        "clamps: a truncated or misaligned offsets array does not "
        "raise, it silently returns short rows — dropped pushes, "
        "wrong stack depths, counters that no longer conserve.  Any "
        "function consuming CSR offsets must first validate the "
        "invariants (len(off) == n + 1, off[-1] == len(payload)) and "
        "raise a DiagnosticError on mismatch, so corruption fails loud "
        "at the boundary instead of quiet in the measurements."
    )

    def check(self, ctx) -> Iterator[Finding]:
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            slices = self._csr_slices(fn)
            if not slices:
                continue
            guarded = self._guarded_bases(fn)
            for base, node in slices:
                if base.rsplit(".", 1)[-1] not in guarded:
                    yield ctx.finding(
                        self, node,
                        f"function {fn.name} slices CSR payload with "
                        f"offsets `{base}` but never validates them — "
                        f"check len({base}) and {base}[-1] against the "
                        f"payload and raise a DiagnosticError on "
                        f"mismatch",
                    )

    @staticmethod
    def _csr_slices(fn) -> List[Tuple[str, ast.AST]]:
        """(offsets-base, slice node) for ``a[off[k]:off[k+1]]`` shapes."""
        out: List[Tuple[str, ast.AST]] = []
        for node in ast.walk(fn):
            if not (
                isinstance(node, ast.Subscript)
                and isinstance(node.slice, ast.Slice)
            ):
                continue
            lower, upper = node.slice.lower, node.slice.upper
            if not (
                isinstance(lower, ast.Subscript)
                and isinstance(upper, ast.Subscript)
            ):
                continue
            base_l = expr_key(lower.value)
            base_u = expr_key(upper.value)
            if base_l is not None and base_l == base_u:
                out.append((base_l, node))
        return out

    @staticmethod
    def _guarded_bases(fn) -> Set[str]:
        """Leaf names of offset arrays a guard statement references.

        A guard is an ``if``/``assert`` test, or a call to a helper
        whose name mentions check/validate/guard, that mentions the
        offsets array — the shapes the sanctioned validators take.
        """
        guarded: Set[str] = set()

        def leaf_names(node: ast.AST) -> Set[str]:
            names: Set[str] = set()
            for child in ast.walk(node):
                if isinstance(child, ast.Name):
                    names.add(child.id)
                elif isinstance(child, ast.Attribute):
                    names.add(child.attr)
            return names

        for node in ast.walk(fn):
            if isinstance(node, (ast.If, ast.Assert)):
                guarded.update(leaf_names(node.test))
            elif isinstance(node, ast.Call):
                name = expr_key(node.func)
                leaf = name.rsplit(".", 1)[-1].lower() if name else ""
                if any(tag in leaf for tag in ("check", "validate", "guard")):
                    for arg in node.args:
                        guarded.update(leaf_names(arg))
        return guarded
