"""Concrete simlint rules, grouped by family.

Importing this package populates :data:`repro.simlint.registry.RULES`;
each module registers its rules at import time via the ``@register``
decorator.
"""

from repro.simlint.rules import (  # noqa: F401  (registration side effect)
    bitidentity,
    concurrency,
    determinism,
    diagnostics,
    hygiene,
    mutation_surface,
    taint_flow,
    vector,
)
