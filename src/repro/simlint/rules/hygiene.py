"""SL4xx — hygiene rules.

Smaller hazards that erode the same contracts more slowly: state shared
through default arguments, and stdout pollution from library code that
corrupts machine-read output (the JSON reporters, piped CLI output).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.simlint.model import Finding
from repro.simlint.registry import Rule, register

#: Expressions that evaluate to a fresh mutable object per call site —
#: deadly when evaluated once at def time instead.
_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                     ast.SetComp)
_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict",
                  "OrderedDict", "Counter", "deque"}


@register
class MutableDefaultRule(Rule):
    id = "SL401"
    title = "mutable default argument"
    severity = "error"
    scope = "all"
    category = "hygiene"
    rationale = (
        "A mutable default is evaluated once and then shared by every "
        "call — hidden cross-call state of exactly the kind that makes "
        "two identical campaign runs diverge.  Default to None and "
        "construct inside the function."
    )

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._mutable(ctx, default):
                    yield ctx.finding(
                        self, default,
                        f"function {node.name}: mutable default argument "
                        f"is shared across calls — default to None",
                    )

    @staticmethod
    def _mutable(ctx, node: ast.AST) -> bool:
        if isinstance(node, _MUTABLE_LITERALS):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_CALLS
        )


@register
class StrayPrintRule(Rule):
    id = "SL402"
    title = "print() in library code"
    severity = "error"
    scope = "repro"
    category = "hygiene"
    rationale = (
        "Library modules run under worker pools, the JSON reporters and "
        "piped CLI commands; a stray print() interleaves with — and "
        "corrupts — machine-read stdout.  Presentation belongs to the "
        "CLI layer (config key print-allowed); diagnostics belong in "
        "logging or structured failure records."
    )

    def check(self, ctx) -> Iterator[Finding]:
        if ctx.module in ctx.config.print_allowed:
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield ctx.finding(
                    self, node,
                    "print() in library code pollutes machine-read "
                    "stdout — use logging or return the text",
                )
