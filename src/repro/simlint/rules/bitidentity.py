"""SL2xx — bit-identity rules.

PR 3's contracts (wave ≡ scalar tracing, fast-forward ≡ stepped timing)
and the runtime's content-addressed cache both assume that shared
objects are immutable and that every counter is written by exactly one
component.  These rules make those assumptions checkable at review
time.  The fast-forward mutation-surface proof (SL204) lives in
:mod:`repro.simlint.rules.mutation_surface`.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro.simlint.model import Finding
from repro.simlint.project import MUTATING_METHODS  # noqa: F401  (re-export)
from repro.simlint.registry import Rule, register

_ALL_CAPS = re.compile(r"^[A-Z][A-Z0-9_]{2,}$")


def _root_name(node: ast.AST) -> Optional[str]:
    """The leftmost Name of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


@register
class SingletonMutationRule(Rule):
    id = "SL201"
    title = "mutation of a module-level singleton"
    severity = "error"
    scope = "repro"
    category = "bit-identity"
    rationale = (
        "Module-level singletons (EMPTY_ACTIVITY, DEFAULT_PARAMS, "
        "REFERENCE_MATRIX, ...) are shared by every warp, job and worker "
        "in the process; mutating one turns a local change into "
        "action-at-a-distance that breaks bit-identity between runs that "
        "touch it in different orders.  Treat them as frozen: copy, "
        "don't patch.  (The configured name list extends the ALL_CAPS "
        "convention.)"
    )

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        name = _root_name(target)
                        if name and self._is_singleton(ctx, name):
                            yield ctx.finding(
                                self, node,
                                f"write into module-level singleton "
                                f"{name} — shared state must stay frozen",
                            )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATING_METHODS
            ):
                name = _root_name(node.func.value)
                if name and self._is_singleton(ctx, name):
                    yield ctx.finding(
                        self, node,
                        f"{name}.{node.func.attr}(...) mutates a "
                        f"module-level singleton in place",
                    )

    @staticmethod
    def _is_singleton(ctx, name: str) -> bool:
        return name in ctx.config.singletons or bool(_ALL_CAPS.match(name))


@register
class SlotsPickleRule(Rule):
    id = "SL202"
    title = "__slots__ that breaks the pickle round-trip contract"
    severity = "error"
    scope = "repro"
    category = "bit-identity"
    rationale = (
        "Hot-path records (Step, RayTrace, Warp, MemoryOp, StackActivity) "
        "are __slots__ classes that must pickle across worker-process "
        "boundaries, and the round-trip fixtures enumerate their fields "
        "from the class body.  A computed __slots__ hides fields from "
        "those fixtures; including __dict__ silently reopens per-instance "
        "dicts and voids the memory contract the slots exist for."
    )

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for stmt in node.body:
                if not (
                    isinstance(stmt, ast.Assign)
                    and any(
                        isinstance(t, ast.Name) and t.id == "__slots__"
                        for t in stmt.targets
                    )
                ):
                    continue
                names = self._literal_slots(stmt.value)
                if names is None:
                    yield ctx.finding(
                        self, stmt,
                        f"class {node.name}: __slots__ must be a literal "
                        f"tuple/list of string constants so the pickle "
                        f"round-trip fixtures can enumerate its fields",
                    )
                elif "__dict__" in names:
                    yield ctx.finding(
                        self, stmt,
                        f"class {node.name}: '__dict__' in __slots__ "
                        f"reopens the per-instance dict and voids the "
                        f"slots memory contract",
                    )

    @staticmethod
    def _literal_slots(value: ast.AST):
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            return [value.value]
        if isinstance(value, (ast.Tuple, ast.List)):
            names = []
            for element in value.elts:
                if not (
                    isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                ):
                    return None
                names.append(element.value)
            return names
        return None


@register
class CounterOwnershipRule(Rule):
    id = "SL203"
    title = "counter write outside the owning component"
    severity = "error"
    scope = "repro"
    category = "bit-identity"
    rationale = (
        "Counters is the simulator's measurement ledger: every figure in "
        "the paper reproduction is computed from it, and the guard's "
        "conservation laws cross-check it against the stack models.  "
        "Writes are owned by the timing components (repro.gpu); a counter "
        "incremented from anywhere else (experiments, runtime, guards) "
        "is unaccounted traffic the conservation laws cannot see."
    )

    def check(self, ctx) -> Iterator[Finding]:
        if ctx.module is not None and any(
            ctx.module == pkg or ctx.module.startswith(pkg + ".")
            for pkg in ctx.config.counter_owners
        ):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Assign, ast.AugAssign)):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and self._counter_receiver(target.value)
                ):
                    yield ctx.finding(
                        self, node,
                        f"write to counter field .{target.attr} outside "
                        f"the owning package "
                        f"({', '.join(ctx.config.counter_owners)})",
                    )

    @staticmethod
    def _counter_receiver(node: ast.AST) -> bool:
        """Does the attribute chain end in a ``counters`` object?"""
        if isinstance(node, ast.Name):
            return node.id in ("counters", "_counters")
        if isinstance(node, ast.Attribute):
            return node.attr in ("counters", "_counters")
        return False
