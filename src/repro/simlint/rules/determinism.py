"""SL1xx — determinism rules.

The simulator's outputs must be a pure function of (scene, config,
seed).  These rules reject the classic ways a Python codebase loses that
property: reading the host clock, consulting unseeded entropy, iterating
collections whose order is not defined by the program, and keying
behavior on CPython object addresses.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.simlint.model import Finding
from repro.simlint.registry import Rule, register

#: Wall-clock reads: banned everywhere in the package (results must not
#: depend on *when* they were computed).  Result-store metadata is the
#: one documented exemption, carried as inline SL101 suppressions in
#: ``repro/runtime/store.py``.
WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "time.asctime",
    "time.strftime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Any host-time dependence at all — including interval clocks — is
#: banned inside the timing-critical packages: the simulated clock is
#: the only clock the models may consult.
HOST_CLOCK = {
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.thread_time",
    "time.sleep",
}

#: Entropy sources with process-global or OS-held state.
UNSEEDED_ENTROPY_PREFIXES = ("secrets.",)
UNSEEDED_ENTROPY = {"os.urandom", "uuid.uuid1", "uuid.uuid4"}

#: Consumers that make iteration order irrelevant (commutative
#: reductions) or re-establish a defined order.
ORDER_SAFE_CONSUMERS = {
    "sum", "min", "max", "len", "any", "all", "sorted", "set", "frozenset",
}

#: Dict views hand iteration order straight to the caller.
_DICT_VIEWS = {"values", "keys", "items"}


@register
class WallClockRule(Rule):
    id = "SL101"
    title = "wall-clock read in simulator code"
    severity = "error"
    scope = "repro"
    category = "determinism"
    rationale = (
        "Simulation results must be a pure function of (scene, config, "
        "seed); reading the host clock makes output depend on when it ran. "
        "Inside the timing-critical packages (repro.gpu, repro.stack, "
        "repro.trace) even interval clocks (monotonic/perf_counter/sleep) "
        "are banned — the simulated clock is the only clock.  The result "
        "store's created-at metadata (repro/runtime/store.py) is the "
        "documented exemption, carried as inline suppressions."
    )

    def check(self, ctx) -> Iterator[Finding]:
        timing = _in_timing_package(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.resolve(node.func)
            if dotted is None:
                continue
            if dotted in WALL_CLOCK:
                yield ctx.finding(
                    self, node,
                    f"wall-clock read {dotted}() — simulator state may "
                    f"only depend on the simulated clock",
                )
            elif timing and dotted in HOST_CLOCK:
                yield ctx.finding(
                    self, node,
                    f"host-clock call {dotted}() inside a timing-critical "
                    f"package — use the simulated clock",
                )


@register
class UnseededRngRule(Rule):
    id = "SL102"
    title = "unseeded or process-global RNG"
    severity = "error"
    scope = "repro"
    category = "determinism"
    rationale = (
        "Every random draw must flow from an explicit seed so campaigns "
        "replay bit-identically and cache keys stay honest.  The module-"
        "level random.* API and legacy numpy.random.* API share hidden "
        "process-global state; random.Random()/default_rng() without a "
        "seed pull OS entropy.  Construct random.Random(seed) or "
        "numpy.random.default_rng(seed) and pass the generator down."
    )

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.resolve(node.func)
            if dotted is None:
                continue
            message = self._violation(dotted, node)
            if message:
                yield ctx.finding(self, node, message)

    @staticmethod
    def _violation(dotted: str, node: ast.Call) -> Optional[str]:
        seeded = bool(node.args) or bool(node.keywords)
        if dotted in ("random.Random", "random.SystemRandom"):
            if dotted.endswith("SystemRandom"):
                return "random.SystemRandom draws OS entropy — never reproducible"
            return None if seeded else "random.Random() without a seed"
        if dotted.startswith("random."):
            return (
                f"{dotted}() uses the process-global RNG — construct a "
                f"seeded random.Random and pass it explicitly"
            )
        if dotted in ("numpy.random.default_rng", "numpy.random.Generator"):
            return None if seeded else f"{dotted}() without a seed"
        if dotted.startswith("numpy.random."):
            return (
                f"legacy global-state API {dotted}() — use a seeded "
                f"numpy.random.default_rng(seed)"
            )
        if dotted in UNSEEDED_ENTROPY or dotted.startswith(
            UNSEEDED_ENTROPY_PREFIXES
        ):
            return f"{dotted}() draws OS entropy — never reproducible"
        return None


@register
class UnorderedIterationRule(Rule):
    id = "SL103"
    title = "iteration over a set or dict view in timing-critical code"
    severity = "error"
    scope = "timing"
    category = "determinism"
    rationale = (
        "Event streams and request chains are order-sensitive: iterating "
        "a set hands hash order (randomized for strings across processes) "
        "to the timing model, and a dict view hands over insertion order "
        "the caller may not control.  Commutative reductions (sum, min, "
        "max, len, any, all) and order-restoring consumers (sorted) are "
        "allowed; anything else must iterate an explicitly ordered "
        "sequence."
    )

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For):
                label = self._unordered(ctx, node.iter)
                if label:
                    yield ctx.finding(
                        self, node.iter,
                        f"for-loop over {label} feeds order-sensitive "
                        f"code — iterate a list/tuple or wrap in sorted()",
                    )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                labels = [
                    self._unordered(ctx, gen.iter) for gen in node.generators
                ]
                flagged = [lbl for lbl in labels if lbl]
                if isinstance(node, (ast.SetComp, ast.DictComp)):
                    # A keyed/unordered *product* inherits a dict view's
                    # deterministic order harmlessly; only a set source
                    # (hash order) still leaks through it.
                    flagged = [lbl for lbl in flagged if "set" in lbl]
                if flagged and not self._reduction_consumer(ctx, node):
                    yield ctx.finding(
                        self, node,
                        f"comprehension over {flagged[0]} escapes into "
                        f"order-sensitive code — sort it or feed a "
                        f"commutative reduction",
                    )

    @staticmethod
    def _unordered(ctx, expr: ast.AST) -> Optional[str]:
        """A human label when ``expr`` has no program-defined order."""
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return "a set"
        if isinstance(expr, ast.Call):
            dotted = ctx.resolve(expr.func)
            if dotted in ("set", "frozenset"):
                return f"{dotted}(...)"
            if (
                isinstance(expr.func, ast.Attribute)
                and expr.func.attr in _DICT_VIEWS
                and not expr.args
            ):
                return f"a dict .{expr.func.attr}() view"
        return None

    @staticmethod
    def _reduction_consumer(ctx, node: ast.AST) -> bool:
        parent = ctx.parent(node)
        return (
            isinstance(parent, ast.Call)
            and node in parent.args
            and ctx.resolve(parent.func) in ORDER_SAFE_CONSUMERS
        )


@register
class IdentityOrderingRule(Rule):
    id = "SL104"
    title = "id()-based comparison, hashing or ordering of model objects"
    severity = "error"
    scope = "timing"
    category = "determinism"
    rationale = (
        "id() is a CPython heap address: it differs between runs, "
        "interpreters and workers, so sorting, hashing or keying on it "
        "injects address-space layout into the simulation.  Identity "
        "checks should use `is` / an explicit registry; ordering should "
        "key on stable model fields (lane, warp_id, address)."
    )

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
                and "id" not in ctx.imports
            ):
                yield ctx.finding(
                    self, node,
                    "id() leaks a per-process heap address into model "
                    "code — compare with `is` or key on stable fields",
                )


def _in_timing_package(ctx) -> bool:
    if ctx.module is None:
        return False
    return any(
        ctx.module == pkg or ctx.module.startswith(pkg + ".")
        for pkg in ctx.config.timing_critical
    )
