"""SL110 — whole-program determinism taint flow.

The SL1xx call-site rules reject *direct* uses of nondeterministic APIs
inside timing-critical packages.  SL110 closes the flow gap: a
wall-clock read, process-global RNG draw, ``id()``/``hash()`` value or
hash-ordered materialization that happens *anywhere* — including
through helper returns in other modules — must not reach the state the
reproduction contract declares pure: ``Counters`` fields,
``SimulationJob`` content keys / cache salts (the configured
``taint-sinks`` function names), or scheduler ordering decisions in the
timing- and async-critical packages.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional

from repro.simlint.model import Finding
from repro.simlint.project import (
    ProjectGraph,
    expr_key,
    iter_functions,
    summarize_file,
)
from repro.simlint.registry import Rule, register
from repro.simlint.taint import TaintAnalyzer


def _counter_key(target: ast.AST) -> Optional[str]:
    """Dotted key when ``target`` stores into a Counters field."""
    if not isinstance(target, ast.Attribute):
        return None
    key = expr_key(target)
    if key is None:
        return None
    parts = key.split(".")
    return key if "counters" in parts[:-1] or "_counters" in parts[:-1] else None


def _labels(taint) -> str:
    return ", ".join(sorted(taint.labels))


@register
class TaintFlowRule(Rule):
    id = "SL110"
    title = "nondeterministic value flows into reproducibility-bearing state"
    severity = "error"
    scope = "repro"
    category = "determinism"
    cross_file = True
    rationale = (
        "Counters, job content keys and scheduler ordering must be pure "
        "functions of (scene, config, seed) — that is the whole "
        "bit-identity contract.  Banning direct clock/RNG calls in the "
        "timing packages (SL101-104) does not stop a tainted value from "
        "*flowing* there through a local, a helper return, or an import "
        "boundary: `salt = make_token()` is one hop away from "
        "`os.urandom`.  SL110 tracks source labels through assignments, "
        "calls and cross-module function summaries, and fires where a "
        "labelled value reaches a counter store, a configured key/salt "
        "sink function's return, or a sorted()/min()/max() ordering "
        "decision in the timing- or async-critical packages."
    )

    def check(self, ctx) -> Iterator[Finding]:
        project = ctx.project
        if project is None:
            # lint_source / single-file runs: a mini-graph of this file
            # alone still resolves same-file helper flows.
            project = ProjectGraph([
                summarize_file(
                    ctx.tree, ctx.path, ctx.module, ctx.imports, ctx.source
                )
            ])
        summaries = project.taint()

        def lookup(dotted: Optional[str]) -> Optional[Dict]:
            canonical = project.resolve(dotted)
            return summaries.get(canonical) if canonical else None

        sinks = set(ctx.config.taint_sinks)
        order_scoped = ctx.module is not None and any(
            ctx.module == pkg or ctx.module.startswith(pkg + ".")
            for pkg in (
                tuple(ctx.config.timing_critical)
                + tuple(ctx.config.async_critical)
            )
        )

        local_defs = {
            stmt.name
            for stmt in ctx.tree.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        findings: List[Finding] = []
        for qual, fn, cls_name in iter_functions(ctx.tree):
            leaf = qual.rsplit(".", 1)[-1]

            def on_store(target, value, stmt):
                key = _counter_key(target)
                if key is not None and value.labels:
                    findings.append(ctx.finding(
                        self, stmt,
                        f"counter store {key} is tainted by "
                        f"{_labels(value)} — counters must be a pure "
                        f"function of (scene, config, seed)",
                    ))

            def on_return(stmt, taint):
                if leaf in sinks and taint.labels:
                    findings.append(ctx.finding(
                        self, stmt,
                        f"{leaf}() returns a value tainted by "
                        f"{_labels(taint)} — key/salt sinks must be "
                        f"derived only from declared inputs",
                    ))

            def on_order(node, taint):
                if order_scoped and taint.labels:
                    findings.append(ctx.finding(
                        self, node,
                        f"ordering decision keyed on a value tainted "
                        f"by {_labels(taint)} — scheduler order must "
                        f"not depend on entropy",
                    ))

            TaintAnalyzer(
                fn,
                ctx.imports,
                module=ctx.module,
                cls_name=cls_name,
                lookup=lookup,
                on_store=on_store,
                on_return=on_return,
                on_order=on_order,
                local_defs=local_defs,
            ).run()
        yield from findings
