"""SL204 — fast-forward ≡ stepped mutation-surface parity.

PR 3's equivalence tests prove at runtime that the event-driven
fast-forward drain in ``RTUnit.run`` produces bit-identical counters and
cycles to the stepped scheduler loop.  That proof is only as good as the
workloads the tests happen to run; this rule turns it into a static
obligation on the *write surface*:

    every piece of state the fast-forward branch can write must also be
    written somewhere on the stepped path.

The check walks the call graph rooted at each branch (methods of the
same class, locally defined helper functions, and module-level
functions), collecting normalized "state keys" for attribute stores,
subscript stores, augmented assignments and in-place mutating method
calls (``resident.clear()`` and ``resident.remove(...)`` both write
``resident``).  A key reachable from the fast-forward branch but not
from the stepped loop is exactly a way the two schedules can diverge
that no equivalence test will catch until a workload trips it — so it
is rejected here instead.

The rule fires on any class whose ``run`` method guards a branch on a
``fast_forward`` attribute, which makes it testable on miniature
fixtures and automatically covers future RT-unit variants.

PR 9 adds a second obligation for whole-backend parity (stepped ≡
vector).  A timing backend that reimplements the RT unit cannot share
the stepped loop's write surface — it has its own ``run`` — so instead
it *declares its oracle*: a class-level

    COUNTER_PARITY_ORACLE = "../counters.py"

names the file whose counter dataclass defines the complete counter
surface, and the rule then requires every declared field (minus an
optional ``COUNTER_PARITY_EXEMPT`` tuple) to be written somewhere in the
call graph reachable from the class's ``run``.  A counter the backend
never touches is exactly the kind of silent divergence the runtime
equivalence tests only catch when a workload happens to exercise it —
here it is a static finding the moment the write is dropped.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List, Optional, Set, Tuple

from repro.simlint.model import Finding
from repro.simlint.project import WriteSurfaceGraph
from repro.simlint.registry import Rule, register


@register
class FastForwardParityRule(Rule):
    id = "SL204"
    title = "fast-forward drain writes state the stepped loop does not"
    severity = "error"
    scope = "timing"
    category = "bit-identity"
    # The oracle coverage check credits writes of *imported* project
    # helpers through ctx.project, so cached findings must invalidate
    # when anything in the import closure changes.
    cross_file = True
    rationale = (
        "The fast-forward drain skips scheduler arbitration on the "
        "promise that it is observationally identical to the stepped "
        "loop.  Any state written only on the fast-forward path is a "
        "divergence the runtime equivalence tests can miss (they sample "
        "workloads; this is a property of the code).  Writes must be a "
        "subset of the stepped path's writes — new fast-forward "
        "bookkeeping needs a stepped-path counterpart or a redesign.  "
        "Alternative timing backends declare a COUNTER_PARITY_ORACLE "
        "instead: every counter field the oracle file defines must be "
        "written by code reachable from the backend's run(), so a "
        "counter the backend silently stops maintaining is a lint error "
        "rather than a workload-dependent test escape."
    )

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            run = next(
                (
                    stmt for stmt in node.body
                    if isinstance(stmt, ast.FunctionDef) and stmt.name == "run"
                ),
                None,
            )
            if run is None:
                continue
            split = _split_fast_forward(run)
            if split is not None:
                ff_stmts, stepped_stmts, anchor = split
                # The parity diff is deliberately file-local even when a
                # project graph is attached: an imported helper's write
                # keys are spelled in the callee's own namespace and
                # would poison the key-set comparison.
                graph = WriteSurfaceGraph(ctx.tree, node, run)
                ff_writes = graph.reachable_writes(ff_stmts)
                stepped_writes = graph.reachable_writes(stepped_stmts)
                outside_reads = _name_reads(run, skip=anchor)
                for key in sorted(ff_writes - stepped_writes):
                    if "." not in key and key not in outside_reads:
                        # A bare local the rest of run() never reads is
                        # branch-private scratch, not shared schedule
                        # state.
                        continue
                    yield ctx.finding(
                        self, anchor,
                        f"class {node.name}: fast-forward drain writes "
                        f"`{key}` but the stepped loop never does — the "
                        f"two schedules can diverge",
                    )
            yield from self._check_counter_oracle(ctx, node, run)

    def _check_counter_oracle(
        self, ctx, node: ast.ClassDef, run: ast.FunctionDef
    ) -> Iterator[Finding]:
        """Backend parity: ``run`` must write every oracle counter field.

        Applies only to classes that opt in with a class-level
        ``COUNTER_PARITY_ORACLE = "<relative path>"`` declaration (the
        vector backend's :class:`~repro.gpu.vector.unit.VectorRTUnit`).
        The oracle path resolves relative to the linted file, so the
        check follows the source tree wherever it is checked out.
        """
        oracle = _class_literal(node, "COUNTER_PARITY_ORACLE")
        if oracle is None:
            return
        anchor, relpath = oracle
        fields = (
            _oracle_fields(Path(ctx.path).parent / relpath)
            if isinstance(relpath, str)
            else None
        )
        if fields is None:
            yield ctx.finding(
                self, anchor,
                f"class {node.name}: counter-parity oracle {relpath!r} "
                f"could not be read or declares no counter fields",
            )
            return
        exempt: Set[str] = set()
        declared = _class_literal(node, "COUNTER_PARITY_EXEMPT")
        if declared is not None and isinstance(declared[1], (tuple, list)):
            exempt = {item for item in declared[1] if isinstance(item, str)}
        # Coverage (unlike the parity diff) may credit writes delegated
        # to imported project helpers: the question is "does *anything*
        # reachable from run() maintain this counter", so the callee-
        # local key spelling is exactly what _writes_counter matches.
        graph = WriteSurfaceGraph(
            ctx.tree, node, run,
            project=ctx.project, module=ctx.module, imports=ctx.imports,
        )
        writes = graph.reachable_writes(run.body, cross_module=True)
        for field in fields:
            if field in exempt or _writes_counter(writes, field):
                continue
            yield ctx.finding(
                self, anchor,
                f"class {node.name}: oracle {relpath} declares counter "
                f"`{field}` but no code reachable from run() writes "
                f"`counters.{field}` — the backends can silently "
                f"diverge",
            )


def _split_fast_forward(
    run: ast.FunctionDef,
) -> Optional[Tuple[List[ast.stmt], List[ast.stmt], ast.AST]]:
    """(fast-forward stmts, stepped stmts, anchor) of ``run``, if any.

    The fast-forward branch is the top-level ``if`` inside ``run``'s
    scheduler loop whose condition mentions a ``fast_forward`` attribute
    or name; the stepped path is everything else in that loop body plus
    the branch's ``else``.
    """
    for loop in ast.walk(run):
        if not isinstance(loop, (ast.While, ast.For)):
            continue
        for stmt in loop.body:
            if isinstance(stmt, ast.If) and _mentions_fast_forward(stmt.test):
                stepped = [s for s in loop.body if s is not stmt]
                stepped.extend(stmt.orelse)
                return list(stmt.body), stepped, stmt
    return None


def _name_reads(run: ast.FunctionDef, skip: ast.AST) -> Set[str]:
    """Names loaded anywhere in ``run`` outside the ``skip`` branch body.

    Used to tell branch-private scratch locals apart from loop-carried
    state: a name the fast-forward branch writes is only schedule state
    if some code outside that branch reads it.
    """
    reads: Set[str] = set()

    def visit(node: ast.AST) -> None:
        if node is skip:
            # Keep the branch condition and else-arm, drop the body.
            for child in ast.iter_child_nodes(node):
                if child not in node.body:
                    visit(child)
            return
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            reads.add(node.id)
        for child in ast.iter_child_nodes(node):
            visit(child)

    visit(run)
    return reads


def _class_literal(
    cls: ast.ClassDef, name: str
) -> Optional[Tuple[ast.AST, object]]:
    """A class-level ``name = <literal>`` declaration, if present.

    Returns the assignment node (the finding anchor) and the evaluated
    literal — or ``(node, None)`` when the value is not a pure literal,
    which callers treat the same as an unreadable declaration.
    """
    for stmt in cls.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == name
        ):
            try:
                return stmt, ast.literal_eval(stmt.value)
            except ValueError:
                return stmt, None
    return None


def _oracle_fields(path: Path) -> Optional[List[str]]:
    """Counter field names the oracle file declares, or ``None``.

    The counter surface is the first class in the file carrying
    annotated field declarations (the ``Counters`` dataclass); a file
    that cannot be read or parsed, or that holds no such class, yields
    ``None`` so the caller reports the oracle itself as broken.
    """
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except (OSError, SyntaxError, ValueError):
        return None
    for cls in tree.body:
        if not isinstance(cls, ast.ClassDef):
            continue
        fields = [
            stmt.target.id
            for stmt in cls.body
            if isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
        ]
        if fields:
            return fields
    return None


def _writes_counter(writes: Set[str], field: str) -> bool:
    """Does any write key store to ``counters.<field>``?

    Matches both the ``self.counters.x`` spelling and writes through a
    local alias (``counters = self.counters; counters.x += n``), which
    is how the hot paths spell it.
    """
    leaf = f"counters.{field}"
    return any(key == leaf or key.endswith("." + leaf) for key in writes)


def _mentions_fast_forward(test: ast.AST) -> bool:
    for node in ast.walk(test):
        if isinstance(node, ast.Attribute) and node.attr == "fast_forward":
            return True
        if isinstance(node, ast.Name) and node.id == "fast_forward":
            return True
    return False

