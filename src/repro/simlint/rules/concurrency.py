"""SL5xx — async-concurrency rules for the sharded service.

PR 6's coordinator multiplexes shard traffic on one asyncio event loop.
The loop's concurrency model is cooperative: correctness rests on two
properties no runtime test reliably exercises — the loop is never
blocked (a blocked loop stalls *every* job, heartbeats included, which
reads as shard failure), and shared coordinator state is only mutated
while no other task can interleave.  These rules make the classic ways
of breaking those properties static findings:

SL501
    A blocking call (``time.sleep``, sync file I/O, ``subprocess``,
    future ``.result()``) directly inside an ``async def`` body.
SL502
    A coroutine call whose result is discarded — the coroutine object
    is created and garbage-collected without ever running.
SL503
    ``await`` while holding a *synchronous* lock — the event loop
    parks this task with the lock held and any other task (or the
    heartbeat thread) that wants it deadlocks or stalls.
SL504
    A read-modify-write of shared ``self`` state interleaved by an
    ``await``: the read is captured into a local, an await lets other
    tasks run, then the stale local is written back, losing their
    updates.

All four are scope-limited to the configured async-critical packages
(``repro.service``); the analysis is lexical and skips nested function
definitions, which have their own execution context.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.simlint.model import Finding
from repro.simlint.project import expr_key, own_statements
from repro.simlint.registry import Rule, register

#: Dotted callables that block the calling thread.
BLOCKING_CALLS = {
    "time.sleep",
    "os.system",
    "os.popen",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "shutil.copy",
    "shutil.copytree",
    "shutil.rmtree",
    "socket.create_connection",
    "urllib.request.urlopen",
    "open",
}

#: Attribute-call leaves that block: sync file I/O on Path objects and
#: synchronous future/pool result waits.
BLOCKING_METHODS = {
    "read_text",
    "write_text",
    "read_bytes",
    "write_bytes",
    "result",
}

#: Wrappers that legitimately consume a coroutine object (SL502).
COROUTINE_CONSUMERS = {
    "asyncio.ensure_future",
    "asyncio.create_task",
    "asyncio.gather",
    "asyncio.wait",
    "asyncio.wait_for",
    "asyncio.shield",
    "asyncio.run",
    "asyncio.run_coroutine_threadsafe",
}


def _async_defs(tree: ast.Module) -> Iterator[ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            yield node


def _contains_await(node: ast.AST) -> bool:
    return any(
        isinstance(child, ast.Await)
        for child in own_statements_expr(node)
    )


def own_statements_expr(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` itself without descending into nested defs."""
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(current))


@register
class BlockingCallInAsyncRule(Rule):
    id = "SL501"
    title = "blocking call inside an async def"
    severity = "error"
    scope = "async"
    category = "concurrency"
    rationale = (
        "The coordinator runs every job, heartbeat and degradation "
        "decision on one event loop; a blocking call inside an async "
        "def stalls all of them at once, and a stalled heartbeat is "
        "indistinguishable from a dead shard — the failover machinery "
        "then *causes* the failure it exists to mask.  Blocking work "
        "belongs in loop.run_in_executor (how _run_serial runs jobs) or "
        "in the shard processes.  The check is direct-call only: "
        "transitively blocking helpers are a review concern, not a "
        "lexical one."
    )

    def check(self, ctx) -> Iterator[Finding]:
        for fn in _async_defs(ctx.tree):
            for node in own_statements(fn):
                if not isinstance(node, ast.Call):
                    continue
                dotted = ctx.resolve(node.func)
                if dotted in BLOCKING_CALLS:
                    yield ctx.finding(
                        self, node,
                        f"blocking call {dotted}() inside async def "
                        f"{fn.name} stalls the event loop — use "
                        f"asyncio.sleep / run_in_executor",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in BLOCKING_METHODS
                    and not isinstance(ctx.parent(node), ast.Await)
                ):
                    # An awaited `.result(...)` is an async method of
                    # that name (the coordinator's own API), not a
                    # synchronous Future wait.
                    yield ctx.finding(
                        self, node,
                        f".{node.func.attr}() inside async def {fn.name} "
                        f"blocks the event loop — move it to an executor",
                    )


@register
class UnawaitedCoroutineRule(Rule):
    id = "SL502"
    title = "coroutine called but never awaited"
    severity = "error"
    scope = "async"
    category = "concurrency"
    rationale = (
        "Calling an async def returns a coroutine object; discarding it "
        "means the body never runs — the job is never routed, the shard "
        "never degraded — and the only runtime signal is a garbage-"
        "collection warning that CI logs swallow.  Every coroutine call "
        "must be awaited or handed to a scheduling wrapper "
        "(ensure_future, create_task, gather)."
    )

    def check(self, ctx) -> Iterator[Finding]:
        async_names = self._async_callables(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Expr):
                continue
            call = node.value
            if not isinstance(call, ast.Call):
                continue
            name = self._called_async(ctx, call, async_names)
            if name is not None:
                yield ctx.finding(
                    self, call,
                    f"coroutine {name}(...) is created but never awaited "
                    f"— its body will never run; await it or wrap it in "
                    f"asyncio.ensure_future/create_task",
                )

    @staticmethod
    def _async_callables(ctx) -> Set[str]:
        """Names of async defs in this file: bare and self-qualified."""
        names: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                names.add(node.name)
        return names

    def _called_async(
        self, ctx, call: ast.Call, async_names: Set[str]
    ) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name) and func.id in async_names:
            return func.id
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and func.attr in async_names
        ):
            return f"self.{func.attr}"
        # Cross-module: a project-resolvable callee that is async.
        project = getattr(ctx, "project", None)
        if project is not None:
            dotted = ctx.resolve(func)
            if dotted is not None and project.is_async(dotted):
                return dotted
        return None


@register
class AwaitUnderSyncLockRule(Rule):
    id = "SL503"
    title = "await while holding a synchronous lock"
    severity = "error"
    scope = "async"
    category = "concurrency"
    rationale = (
        "A sync lock (threading.Lock, multiprocessing value locks) is "
        "held across an await only by mistake: the event loop suspends "
        "the task mid-critical-section with the lock taken, so the "
        "heartbeat thread — or any task that touches the same lock — "
        "blocks until the awaited I/O completes, if it ever does.  "
        "Async critical sections use `async with` on an asyncio.Lock "
        "(how _run_serial serializes); sync locks must be released "
        "before awaiting."
    )

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.With):
                continue
            lock = self._lockish(node)
            if lock is None:
                continue
            for child in own_statements_expr(node):
                if isinstance(child, ast.Await):
                    yield ctx.finding(
                        self, child,
                        f"await while holding sync lock {lock} — the "
                        f"event loop parks this task with the lock held; "
                        f"use an asyncio.Lock with `async with`, or "
                        f"release before awaiting",
                    )

    @staticmethod
    def _lockish(node: ast.With) -> Optional[str]:
        """A lock-shaped context expr of ``node``, rendered for humans."""
        for item in node.items:
            expr = item.context_expr
            key = expr_key(expr.func) if isinstance(expr, ast.Call) else expr_key(expr)
            if key is not None and "lock" in key.rsplit(".", 1)[-1].lower():
                return key
        return None


@register
class StaleReadAcrossAwaitRule(Rule):
    id = "SL504"
    title = "read-modify-write of shared state interleaved by an await"
    severity = "error"
    scope = "async"
    category = "concurrency"
    rationale = (
        "asyncio is cooperative: between an await's suspension and "
        "resumption, every other task runs.  Capturing shared self "
        "state into a local, awaiting, then writing the stale local "
        "back is the textbook lost update — a concurrent _complete or "
        "_shard_failed lands in the gap and is silently overwritten, "
        "and the admission/failover books stop balancing.  Re-read "
        "after the await, or hold the serialization lock "
        "(`async with`) around the whole read-modify-write."
    )

    def check(self, ctx) -> Iterator[Finding]:
        for fn in _async_defs(ctx.tree):
            yield from self._check_function(ctx, fn)

    def _check_function(self, ctx, fn: ast.AsyncFunctionDef):
        #: local name → [source chain, awaited-since-bind]
        binds: Dict[str, List] = {}
        yield from self._walk(ctx, fn.body, binds, locked=False)

    def _walk(self, ctx, stmts, binds: Dict[str, List], locked: bool):
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from self._check_store(ctx, stmt, binds, locked)
            self._track_bind(stmt, binds)
            if _contains_await(stmt):
                for entry in binds.values():
                    entry[1] = True
            # Recurse into compound bodies with the shared environment
            # (path-insensitive: branches merge by union).
            if isinstance(stmt, ast.AsyncWith):
                yield from self._walk(ctx, stmt.body, binds, locked=True)
            elif isinstance(stmt, (ast.If, ast.While, ast.For, ast.AsyncFor,
                                   ast.With)):
                for body in self._bodies(stmt):
                    yield from self._walk(ctx, body, binds, locked)
            elif isinstance(stmt, ast.Try):
                for body in (
                    [stmt.body, stmt.orelse, stmt.finalbody]
                    + [h.body for h in stmt.handlers]
                ):
                    yield from self._walk(ctx, body, binds, locked)

    @staticmethod
    def _bodies(stmt) -> List[List[ast.stmt]]:
        bodies = [stmt.body]
        if getattr(stmt, "orelse", None):
            bodies.append(stmt.orelse)
        return bodies

    @staticmethod
    def _track_bind(stmt: ast.stmt, binds: Dict[str, List]) -> None:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            return
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            return
        chain = expr_key(stmt.value)
        if chain is not None and chain.startswith("self."):
            binds[target.id] = [chain, False]
        else:
            binds.pop(target.id, None)

    def _check_store(self, ctx, stmt: ast.stmt, binds, locked: bool):
        if locked or not isinstance(stmt, (ast.Assign, ast.AugAssign)):
            return
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )
        rhs_await = any(
            isinstance(n, ast.Await)
            for n in own_statements_expr(stmt.value)
        )
        for target in targets:
            chain = expr_key(target)
            if chain is None or not chain.startswith("self."):
                continue
            if isinstance(stmt, ast.AugAssign) and rhs_await:
                # `self.x += await f()`: the old value is read before
                # the await suspends, so the write-back is stale.
                yield ctx.finding(
                    self, stmt,
                    f"augmented write to {chain} with an await on the "
                    f"right-hand side — the old value is read before "
                    f"suspension, so concurrent updates are lost",
                )
                continue
            for name_node in own_statements_expr(stmt.value):
                if not isinstance(name_node, ast.Name):
                    continue
                entry = binds.get(name_node.id)
                if entry is None or entry[0] != chain:
                    continue
                if entry[1] or rhs_await:
                    yield ctx.finding(
                        self, stmt,
                        f"{chain} was captured into `{name_node.id}` "
                        f"before an await and written back after it — "
                        f"tasks that ran during the await are "
                        f"overwritten; re-read after awaiting or hold "
                        f"the lock with `async with`",
                    )
