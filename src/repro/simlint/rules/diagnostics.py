"""SL3xx — diagnostics-convention rules.

A failure deep inside a long campaign must pinpoint itself: simulation
code raises :class:`~repro.errors.DiagnosticError` subclasses carrying
cycle/sm/warp/lane coordinates, and nothing may swallow an exception
without leaving a structured trace of it.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.simlint.model import Finding
from repro.simlint.registry import Rule, register

#: Builtin exceptions that carry no simulation coordinates.  Timing-
#: critical code must raise a DiagnosticError subclass instead.
RAW_EXCEPTIONS = {
    "Exception",
    "BaseException",
    "ValueError",
    "RuntimeError",
    "TypeError",
    "KeyError",
    "IndexError",
    "ArithmeticError",
    "ZeroDivisionError",
    "AssertionError",
    "OSError",
    "IOError",
}

#: Broad handler types SL302 inspects.
BROAD_HANDLERS = {"Exception", "BaseException"}


@register
class RawExceptionRule(Rule):
    id = "SL301"
    title = "raw builtin exception raised in timing-critical code"
    severity = "error"
    scope = "timing"
    category = "diagnostics"
    rationale = (
        "repro.errors defines a DiagnosticError hierarchy whose "
        "cycle/sm/warp/lane fields make a failure self-locating, and the "
        "executor keys retry/no-retry policy on those types "
        "(GuardViolationError is deterministic and never retried).  A "
        "bare ValueError from the timing model is invisible to that "
        "policy and unplaceable in a million-cycle campaign."
    )

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            name = self._exception_name(node.exc)
            if name in RAW_EXCEPTIONS:
                yield ctx.finding(
                    self, node,
                    f"raise {name} in timing-critical code — raise a "
                    f"DiagnosticError subclass from repro.errors with "
                    f"cycle/warp/lane coordinates instead",
                )

    @staticmethod
    def _exception_name(exc: ast.AST) -> Optional[str]:
        if isinstance(exc, ast.Call):
            exc = exc.func
        return exc.id if isinstance(exc, ast.Name) else None


@register
class SwallowedExceptionRule(Rule):
    id = "SL302"
    title = "broad except handler that swallows without recording"
    severity = "error"
    scope = "repro"
    category = "diagnostics"
    rationale = (
        "except Exception that neither re-raises nor touches the caught "
        "object erases the only evidence of what went wrong — the guard "
        "layer exists precisely because silent failure modes corrupt "
        "measurements invisibly.  A broad handler must bind the "
        "exception and record it (structured failure file, report field, "
        "log) or re-raise."
    )

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if self._reraises(node):
                continue
            if node.name and self._uses_name(node, node.name):
                continue
            label = "bare except:" if node.type is None else "except Exception"
            yield ctx.finding(
                self, node,
                f"{label} swallows the exception without recording it — "
                f"bind it and attach it to a structured failure record, "
                f"or re-raise",
            )

    @staticmethod
    def _is_broad(type_node: Optional[ast.AST]) -> bool:
        if type_node is None:
            return True
        names = (
            type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
        )
        return any(
            isinstance(name, ast.Name) and name.id in BROAD_HANDLERS
            for name in names
        )

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(
            isinstance(node, ast.Raise)
            for stmt in handler.body
            for node in ast.walk(stmt)
        )

    @staticmethod
    def _uses_name(handler: ast.ExceptHandler, name: str) -> bool:
        return any(
            isinstance(node, ast.Name) and node.id == name
            for stmt in handler.body
            for node in ast.walk(stmt)
        )
