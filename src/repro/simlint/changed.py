"""Git-scoped file selection for ``repro lint --changed``.

The pre-commit loop only cares about files the commit will contain, so
``--changed`` asks git for the union of tracked modifications
(``git diff --name-only HEAD``) and untracked-but-not-ignored files,
filters them down to Python files under the requested lint targets,
and hands the engine an explicit file list.  Outside a git checkout —
or when git itself fails — the selection degrades to ``None`` and the
caller falls back to the full scan, so the flag is always safe to pass.
"""

from __future__ import annotations

import os
import subprocess
from pathlib import Path
from typing import List, Optional, Sequence

#: git commands whose combined output is "what would this commit touch".
_GIT_QUERIES = (
    ("git", "diff", "--name-only", "HEAD"),
    ("git", "ls-files", "--others", "--exclude-standard"),
)


def changed_python_files(
    paths: Sequence[str], config
) -> Optional[List[str]]:
    """Changed ``.py`` files under ``paths``, or ``None`` outside git.

    Paths come back relative to the current working directory (the way
    the full scan spells them), deleted files are dropped, and the
    config excludes apply exactly as they do to a full scan.
    """
    from repro.simlint.engine import _excluded

    try:
        top = _git("rev-parse", "--show-toplevel")
        if top is None:
            return None
        root = Path(top.strip())
        names = set()
        for query in _GIT_QUERIES:
            output = _git(*query[1:])
            if output is None:
                return None
            names.update(line for line in output.splitlines() if line)
    except (OSError, subprocess.SubprocessError):
        return None
    roots = [Path(entry).resolve() for entry in paths]
    selected: List[str] = []
    for name in sorted(names):
        candidate = root / name
        if candidate.suffix != ".py" or not candidate.is_file():
            continue
        resolved = candidate.resolve()
        if not any(_under(resolved, base) for base in roots):
            continue
        rel = Path(os.path.relpath(resolved, Path.cwd()))
        if _excluded(rel, config):
            continue
        selected.append(rel.as_posix())
    return selected


def _under(path: Path, base: Path) -> bool:
    if base.is_file():
        return path == base
    try:
        path.relative_to(base)
        return True
    except ValueError:
        return False


def _git(*args: str) -> Optional[str]:
    """stdout of one git command, or ``None`` on any failure."""
    result = subprocess.run(
        ("git",) + args,
        capture_output=True,
        text=True,
        check=False,
    )
    if result.returncode != 0:
        return None
    return result.stdout
