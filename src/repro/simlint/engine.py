"""The lint engine: file discovery, AST contexts, and the run driver.

One :class:`FileContext` is built per source file.  It owns the parsed
tree, a parent map (rules reason about how an expression is *consumed*),
an import-alias map (so ``np.random.default_rng`` resolves through
``import numpy as np``), and the inline-suppression table.  Rules see
only the context; everything path- and config-shaped is resolved here.
"""

from __future__ import annotations

import ast
import fnmatch
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set

from repro.errors import ReproError
from repro.simlint.baseline import Baseline, context_hash_for
from repro.simlint.config import LintConfig
from repro.simlint.model import Finding
from repro.simlint.project import ProjectGraph, content_hash, summarize_file

#: ``# simlint: disable=SL101,SL204`` (line) / ``disable-file=`` (file).
_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*disable(?P<file>-file)?\s*=\s*"
    r"(?P<ids>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


class FileContext:
    """Everything a rule needs to know about one source file."""

    def __init__(
        self,
        path: str,
        source: str,
        config: Optional[LintConfig] = None,
        module: Optional[str] = None,
    ) -> None:
        self.path = path
        self.source = source
        self.config = config or LintConfig()
        self.module = module if module is not None else module_name(path)
        parts = Path(path).parts
        #: Files outside the package still get scoped rule families:
        #: tests (determinism + hygiene) and tools (everything
        #: repro-scoped) — see :meth:`Rule.applies_to`.
        self.is_test = "tests" in parts or Path(path).name.startswith("test_")
        self.is_tool = "tools" in parts
        #: The whole-program view, attached by :func:`lint_paths`;
        #: ``None`` for single-file runs (``lint_source``), in which
        #: case cross-file rules degrade to file-local reasoning.
        self.project = None
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self._parents: Dict[int, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent
        self.imports = _import_map(self.tree)
        self.line_suppressions: Dict[int, Set[str]] = {}
        self.file_suppressions: Set[str] = set()
        self._scan_suppressions()

    # -- suppressions ---------------------------------------------------

    def _scan_suppressions(self) -> None:
        for lineno, line in enumerate(self.lines, start=1):
            if "simlint" not in line:
                continue
            for match in _SUPPRESS_RE.finditer(line):
                ids = {part.strip() for part in match.group("ids").split(",")}
                if match.group("file"):
                    self.file_suppressions |= ids
                    continue
                self.line_suppressions.setdefault(lineno, set()).update(ids)
                if line.strip().startswith("#"):
                    # A comment-only suppression covers the next code line.
                    target = self._next_code_line(lineno)
                    if target is not None:
                        self.line_suppressions.setdefault(
                            target, set()
                        ).update(ids)

    def _next_code_line(self, after: int) -> Optional[int]:
        for lineno in range(after + 1, len(self.lines) + 1):
            stripped = self.lines[lineno - 1].strip()
            if stripped and not stripped.startswith("#"):
                return lineno
        return None

    def suppressed(self, rule_id: str, line: int) -> bool:
        """Is ``rule_id`` silenced at ``line`` of this file?"""
        if rule_id in self.file_suppressions:
            return True
        return rule_id in self.line_suppressions.get(line, set())

    # -- rule helpers ---------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The syntactic parent of ``node`` (None for the module)."""
        return self._parents.get(id(node))

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted name of a Name/Attribute chain through the import map.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` under ``import numpy as np``; a
        chain rooted in a local variable resolves to its literal dotted
        spelling, and anything non-name-shaped to ``None``.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.imports.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def finding(self, rule, node: ast.AST, message: str) -> Finding:
        """A finding anchored at ``node``, with config-resolved severity."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        in_range = 0 < line <= len(self.lines)
        text = self.lines[line - 1].strip() if in_range else ""
        return Finding(
            rule=rule.id,
            severity=self.config.severity_for(rule),
            path=self.path,
            line=line,
            col=col + 1,
            message=message,
            text=text,
            context_hash=context_hash_for(self.lines, line) if in_range else "",
        )


def module_name(path: str) -> Optional[str]:
    """Dotted module for a path under a ``repro`` package root, else None.

    ``src/repro/gpu/rt_unit.py`` → ``repro.gpu.rt_unit``; paths with no
    ``repro`` component (tests, tools, fixtures) resolve to ``None`` so
    package-scoped rules skip them.
    """
    parts = Path(path).parts
    if "repro" not in parts:
        return None
    start = parts.index("repro")
    tail = list(parts[start:])
    tail[-1] = Path(tail[-1]).stem
    if tail[-1] == "__init__":
        tail.pop()
    return ".".join(tail)


def _import_map(tree: ast.Module) -> Dict[str, str]:
    """Local alias → fully dotted origin, from every import statement."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".")[0]] = (
                    item.name if item.asname else item.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for item in node.names:
                if item.name == "*":
                    continue
                aliases[item.asname or item.name] = f"{node.module}.{item.name}"
    return aliases


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files: int = 0
    suppressed: int = 0
    #: Files that failed to parse, as (path, message) pairs.
    broken: List[tuple] = field(default_factory=list)
    #: Incremental-cache accounting: files whose source was fed to
    #: ``ast.parse`` this run, files that had at least one rule phase
    #: actually executed, and cache-served rule phases.
    reparsed: int = 0
    analyzed: int = 0
    cache_hits: int = 0

    @property
    def errors(self) -> List[Finding]:
        return [
            f for f in self.findings
            if f.severity == "error" and not f.baselined
        ]

    @property
    def warnings(self) -> List[Finding]:
        return [
            f for f in self.findings
            if f.severity == "warning" and not f.baselined
        ]

    @property
    def baselined(self) -> List[Finding]:
        return [f for f in self.findings if f.baselined]

    @property
    def exit_code(self) -> int:
        """Stable exit code: 0 clean, 1 error findings, 2 broken input."""
        if self.broken:
            return 2
        return 1 if self.errors else 0


def _collect(ctx: FileContext, rules: Optional[Sequence] = None):
    """All raw findings for one context: (kept, suppressed_count)."""
    from repro.simlint.registry import all_rules

    kept: List[Finding] = []
    suppressed = 0
    for rule in (rules if rules is not None else all_rules()):
        if rule.id in ctx.config.disabled or not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            if ctx.suppressed(finding.rule, finding.line):
                suppressed += 1
            else:
                kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept, suppressed


def lint_source(
    source: str,
    path: str = "<string>",
    config: Optional[LintConfig] = None,
    module: Optional[str] = None,
    rules: Optional[Sequence] = None,
) -> List[Finding]:
    """Lint one source string; the workhorse behind tests and fixtures."""
    ctx = FileContext(path, source, config=config or LintConfig(),
                      module=module)
    findings, _ = _collect(ctx, rules)
    return findings


def iter_python_files(
    paths: Sequence[str], config: LintConfig
) -> Iterator[Path]:
    """Every ``.py`` file under ``paths``, minus the config excludes."""
    seen: Set[Path] = set()
    for entry in paths:
        root = Path(entry)
        if not root.exists():
            raise ReproError(f"lint target {entry!r} does not exist")
        candidates = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for path in candidates:
            if path.suffix != ".py" or path in seen:
                continue
            seen.add(path)
            if _excluded(path, config):
                continue
            yield path


def _excluded(path: Path, config: LintConfig) -> bool:
    text = path.as_posix()
    for pattern in config.exclude:
        if fnmatch.fnmatch(text, pattern) or f"/{pattern.strip('/')}/" in f"/{text}/":
            return True
    return False


class _FileState:
    """Per-file bookkeeping for one :func:`lint_paths` run."""

    __slots__ = ("path", "source", "sha", "ctx", "summary", "broken")

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.sha = content_hash(source)
        self.ctx: Optional[FileContext] = None
        self.summary = None
        self.broken: Optional[str] = None


def _ensure_context(
    state: _FileState, config: LintConfig, report: LintReport
):
    """The parsed context for ``state``, parsing (once) on demand."""
    if state.ctx is None:
        state.ctx = FileContext(state.path, state.source, config=config)
        report.reparsed += 1
    return state.ctx


def lint_paths(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    baseline: Optional[Baseline] = None,
    cache=None,
    files: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint files/trees; applies suppressions, then the baseline.

    ``cache`` is an :class:`~repro.simlint.cache.AnalysisCache`; with a
    warm one, unchanged files contribute their cached summaries to the
    project graph and their cached findings to the report without ever
    being parsed.  ``files`` overrides discovery with an explicit file
    list (``repro lint --changed``); the caller is responsible for
    having applied the config excludes.

    The run is two-phase per file: file-local rules (cache key: content
    hash) and cross-file rules (cache key: content hash + import-
    closure fingerprint), both against the :class:`ProjectGraph`
    assembled from every file's summary.
    """
    from repro.simlint.registry import all_rules

    config = config or LintConfig()
    report = LintReport()
    rules = [r for r in all_rules() if r.id not in config.disabled]
    local_rules = [r for r in rules if not r.cross_file]
    cross_rules = [r for r in rules if r.cross_file]

    # Phase 0: discover, hash, and summarize (from cache where warm).
    states: List[_FileState] = []
    if files is not None:
        targets = [Path(entry) for entry in files]
    else:
        targets = list(iter_python_files(paths, config))
    for path in targets:
        state = _FileState(path.as_posix(), path.read_text())
        states.append(state)
        if cache is not None:
            state.broken = cache.broken_for(state.path, state.sha)
            if state.broken is not None:
                continue
            state.summary = cache.summary_for(state.path, state.sha)
        if state.summary is None:
            try:
                ctx = _ensure_context(state, config, report)
            except SyntaxError as error:
                state.broken = f"line {error.lineno}: {error.msg}"
                continue
            state.summary = summarize_file(
                ctx.tree, state.path, ctx.module, ctx.imports, state.source
            )
            if cache is not None:
                cache.store_summary(state.path, state.sha, state.summary)

    graph = ProjectGraph(
        state.summary for state in states if state.summary is not None
    )

    # Phases 1 + 2: run (or replay) both rule families per file.
    for state in states:
        if state.broken is not None:
            report.broken.append((state.path, state.broken))
            if cache is not None:
                cache.store_broken(state.path, state.sha, state.broken)
            continue
        report.files += 1
        ran_live = False
        cached = (
            cache.local_findings(state.path, state.sha)
            if cache is not None
            else None
        )
        if cached is not None:
            findings, suppressed = cached
            report.cache_hits += 1
        else:
            ctx = _ensure_context(state, config, report)
            ctx.project = graph
            findings, suppressed = _collect(ctx, local_rules)
            ran_live = True
            if cache is not None:
                cache.store_local(state.path, state.sha, findings, suppressed)
        report.findings.extend(findings)
        report.suppressed += suppressed

        deps_fp = graph.closure_fingerprint(state.path)
        cached = (
            cache.global_findings(state.path, state.sha, deps_fp)
            if cache is not None
            else None
        )
        if cached is not None:
            findings, suppressed = cached
            report.cache_hits += 1
        else:
            ctx = _ensure_context(state, config, report)
            ctx.project = graph
            findings, suppressed = _collect(ctx, cross_rules)
            ran_live = True
            if cache is not None:
                cache.store_global(
                    state.path, state.sha, deps_fp, findings, suppressed
                )
        report.findings.extend(findings)
        report.suppressed += suppressed
        if ran_live:
            report.analyzed += 1

    if cache is not None:
        cache.save()
    if baseline is not None:
        baseline.apply(report.findings)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report
