"""Benchmark execution, payload format, and the regression gate.

Wall-clock numbers from different machines are not comparable, so every
payload also records a **calibration** time: a fixed, deterministic
mixed Python/numpy spin loop shaped like the workloads themselves.  The
regression gate compares *calibrated* wall times — ``wall / calibration``
— which cancels most of the machine-speed difference between the box
that committed ``BENCH_baseline.json`` and the CI runner re-measuring a
pull request.

Payload structure (``FORMAT_VERSION`` 1)::

    {
      "version": 1, "matrix_version": 1, "tag": "baseline",
      "suite_sha": "37498b4" | null,
      "machine": {"platform": ..., "python": ..., "numpy": ...},
      "calibration_s": 0.123,
      "results": {case: {"wall_s", "rays", "steps", "rays_per_s",
                          "steps_per_s", "peak_rss_kb",
                          # sim cases only:
                          "cycles", "cycles_per_s", "backend"}},
      "totals": {"trace_wall_s": ..., "sim_wall_s": ...}
    }

Trace cases have no simulated cycles, so their result records simply
omit the ``cycles``/``cycles_per_s``/``backend`` keys (readers use
``.get``); the regression gate compares calibrated wall times only and
never looks at them.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ReproError
from repro.perf.workloads import MATRIX_VERSION, REFERENCE_MATRIX, BenchCase

#: Bump when the payload structure changes.
FORMAT_VERSION = 1

#: Default regression tolerance of the gate (fractional slowdown).
DEFAULT_TOLERANCE = 0.15


class BenchError(ReproError):
    """A benchmark run or comparison failed."""


def calibrate(scale: int = 40) -> float:
    """Time the fixed calibration spin; returns seconds.

    The loop mixes interpreter-bound work (attribute-free integer
    arithmetic) with small-array numpy work in roughly the proportions of
    the tracer and timing model, so its runtime tracks how fast this
    machine runs *our* kind of code, not peak FLOPS.
    """
    arr = np.arange(4096, dtype=np.float64)
    small = np.arange(18, dtype=np.float64).reshape(6, 3)
    start = time.perf_counter()
    acc = 0.0
    for _ in range(scale):
        acc += float(np.sqrt(arr).sum())
        for _ in range(40):
            acc += float(np.nanmax((small - 0.5) * 1.25))
        total = 0
        for i in range(20_000):
            total += (i * 2654435761) & 0xFFFF
        acc += total & 1
    if acc < 0:  # pragma: no cover - defeats dead-code elimination
        print(acc)  # simlint: disable=SL402
    return time.perf_counter() - start


def _peak_rss_kb() -> Optional[int]:
    """Peak resident set size in KB (None when unsupported)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - reported in bytes
        peak //= 1024
    return int(peak)


def _suite_sha() -> Optional[str]:
    """Short git SHA of the working tree, when available."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


@dataclass
class BenchPayload:
    """One benchmark run: per-case results plus run provenance."""

    tag: str
    calibration_s: float
    results: Dict[str, dict] = field(default_factory=dict)
    suite_sha: Optional[str] = None
    machine: Dict[str, str] = field(default_factory=dict)
    matrix_version: int = MATRIX_VERSION

    @property
    def trace_wall_s(self) -> float:
        """Total wall time of the trace-generation cases."""
        return sum(r["wall_s"] for name, r in self.results.items()
                   if name.startswith("trace:"))

    @property
    def sim_wall_s(self) -> float:
        """Total wall time of the timing-simulation cases."""
        return sum(r["wall_s"] for name, r in self.results.items()
                   if name.startswith("sim:"))

    def calibrated(self, case: str) -> float:
        """Machine-normalized wall time of one case."""
        return self.results[case]["wall_s"] / self.calibration_s

    def to_dict(self) -> dict:
        """JSON-ready payload."""
        return {
            "version": FORMAT_VERSION,
            "matrix_version": self.matrix_version,
            "tag": self.tag,
            "suite_sha": self.suite_sha,
            "machine": self.machine,
            "calibration_s": self.calibration_s,
            "results": self.results,
            "totals": {
                "trace_wall_s": self.trace_wall_s,
                "sim_wall_s": self.sim_wall_s,
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BenchPayload":
        """Rebuild a payload written by :meth:`to_dict`."""
        if data.get("version") != FORMAT_VERSION:
            raise BenchError(
                f"unsupported bench payload version {data.get('version')!r}"
            )
        return cls(
            tag=data["tag"],
            calibration_s=data["calibration_s"],
            results=data["results"],
            suite_sha=data.get("suite_sha"),
            machine=data.get("machine", {}),
            matrix_version=data.get("matrix_version", 0),
        )


def _machine_info() -> Dict[str, str]:
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


def run_benchmarks(
    tag: str,
    cases: Sequence[BenchCase] = REFERENCE_MATRIX,
    repeats: int = 2,
    log: Optional[Callable[[str], None]] = None,
) -> BenchPayload:
    """Execute the benchmark matrix; returns the measured payload.

    Each case runs ``repeats`` times and reports the fastest repetition
    (the standard way to suppress scheduler noise on a shared machine).
    Scene and BVH construction are excluded from every measurement; a
    ``sim`` case replays the traces its ``source`` trace case produced.
    """
    from repro.bvh.api import build_bvh
    from repro.core.presets import named_config
    from repro.gpu.simulator import GPUSimulator
    from repro.trace.events import total_steps
    from repro.trace.path import generate_workload
    from repro.workloads.lumibench import load_scene

    if repeats < 1:
        raise BenchError("repeats must be >= 1")
    say = log or (lambda message: None)
    say(f"[bench:{tag}] calibrating ...")
    calibration = min(calibrate() for _ in range(2))
    payload = BenchPayload(
        tag=tag,
        calibration_s=calibration,
        suite_sha=_suite_sha(),
        machine=_machine_info(),
    )

    bvhs: Dict[str, object] = {}
    traced: Dict[str, list] = {}

    def bvh_for(scene_name: str):
        if scene_name not in bvhs:
            bvhs[scene_name] = build_bvh(load_scene(scene_name), width=6)
        return bvhs[scene_name]

    for case in cases:
        if case.kind != "trace":
            continue
        bvh = bvh_for(case.scene)
        best = float("inf")
        workload = None
        for _ in range(repeats):
            start = time.perf_counter()
            workload = generate_workload(
                bvh, width=case.width, height=case.height,
                spp=case.spp, max_bounces=case.bounces, seed=case.seed,
            )
            best = min(best, time.perf_counter() - start)
        traces = workload.all_traces
        traced[case.name] = traces
        steps = total_steps(traces)
        payload.results[case.name] = {
            "wall_s": best,
            "rays": len(traces),
            "steps": steps,
            "rays_per_s": len(traces) / best if best else 0.0,
            "steps_per_s": steps / best if best else 0.0,
            "peak_rss_kb": _peak_rss_kb(),
        }
        say(f"[bench:{tag}] {case.name}: {best:.3f}s "
            f"({len(traces) / best:,.0f} rays/s)")

    trace_cases = {case.name: case for case in cases if case.kind == "trace"}
    strategy_traced: Dict[tuple, list] = {}

    def traces_for(case: BenchCase) -> list:
        """The sim case's input traces; strategy phase one is unmeasured."""
        if case.strategy is None:
            return traced[case.source]
        from repro.traversal import resolve_strategy

        strategy = resolve_strategy(case.strategy)
        key = (case.source, strategy.trace_key())
        if key not in strategy_traced:
            source = trace_cases[case.source]
            workload = strategy.build_workload(
                bvh_for(source.scene), width=source.width,
                height=source.height, spp=source.spp,
                max_bounces=source.bounces, seed=source.seed,
            )
            strategy_traced[key] = workload.all_traces
        return strategy_traced[key]

    for case in cases:
        if case.kind != "sim":
            continue
        if case.source not in traced:
            raise BenchError(
                f"sim case {case.name!r} references unknown trace case "
                f"{case.source!r}"
            )
        traces = traces_for(case)
        config = named_config(case.config)
        best = float("inf")
        output = None
        for _ in range(repeats):
            simulator = GPUSimulator(
                config=config, strategy=case.strategy,
                backend=case.backend or "stepped",
            )
            start = time.perf_counter()
            output = simulator.run_traces(traces)
            best = min(best, time.perf_counter() - start)
        cycles = output.counters.cycles
        steps = output.counters.warp_steps
        payload.results[case.name] = {
            "wall_s": best,
            "rays": len(traces),
            "steps": steps,
            "rays_per_s": len(traces) / best if best else 0.0,
            "steps_per_s": steps / best if best else 0.0,
            "cycles": cycles,
            "cycles_per_s": cycles / best if best else 0.0,
            "backend": output.backend,
            "peak_rss_kb": _peak_rss_kb(),
        }
        say(f"[bench:{tag}] {case.name}: {best:.3f}s "
            f"({cycles / best:,.0f} cycles/s)")
    return payload


def save_payload(payload: BenchPayload, path) -> Path:
    """Write a payload to ``path`` as JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(payload.to_dict(), indent=2) + "\n")
    return path


def load_payload(path) -> BenchPayload:
    """Read a payload written by :func:`save_payload`."""
    path = Path(path)
    try:
        return BenchPayload.from_dict(json.loads(path.read_text()))
    except (OSError, json.JSONDecodeError) as error:
        raise BenchError(f"cannot read bench payload {path}: {error}") from None


def compare_benchmarks(
    current: BenchPayload,
    baseline: BenchPayload,
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[dict]:
    """Regression check of ``current`` against ``baseline``.

    Compares calibrated wall times case by case; a case regresses when it
    is more than ``tolerance`` slower than the baseline after machine
    normalization.  Returns the list of regression records (empty =
    gate passes).  Cases present in only one payload are ignored — the
    matrix version check catches genuine matrix drift.
    """
    if current.matrix_version != baseline.matrix_version:
        raise BenchError(
            f"matrix version mismatch: current {current.matrix_version}, "
            f"baseline {baseline.matrix_version} — re-baseline required"
        )
    regressions: List[dict] = []
    for name in current.results:
        if name not in baseline.results:
            continue
        now = current.calibrated(name)
        then = baseline.calibrated(name)
        if then <= 0:
            continue
        ratio = now / then
        if ratio > 1.0 + tolerance:
            regressions.append({
                "case": name,
                "ratio": ratio,
                "current_wall_s": current.results[name]["wall_s"],
                "baseline_wall_s": baseline.results[name]["wall_s"],
            })
    return regressions


def format_payload(payload: BenchPayload) -> str:
    """Human-readable table of one payload."""
    lines = [
        f"bench tag    : {payload.tag}"
        + (f"  (suite {payload.suite_sha})" if payload.suite_sha else ""),
        f"calibration  : {payload.calibration_s:.3f}s on "
        f"{payload.machine.get('platform', 'unknown')}",
        f"{'case':<28} {'wall s':>8} {'rays/s':>12} {'cycles/s':>12} "
        f"{'RSS MB':>8}",
    ]
    for name, result in payload.results.items():
        cycles_per_s = result.get("cycles_per_s")
        rss = result.get("peak_rss_kb")
        lines.append(
            f"{name:<28} {result['wall_s']:>8.3f} "
            f"{result['rays_per_s']:>12,.0f} "
            f"{(f'{cycles_per_s:,.0f}' if cycles_per_s else '-'):>12} "
            f"{(f'{rss / 1024:.0f}' if rss else '-'):>8}"
        )
    lines.append(
        f"totals       : trace {payload.trace_wall_s:.3f}s, "
        f"sim {payload.sim_wall_s:.3f}s"
    )
    return "\n".join(lines)


def format_comparison(
    current: BenchPayload,
    baseline: BenchPayload,
    regressions: Sequence[dict],
    tolerance: float = DEFAULT_TOLERANCE,
) -> str:
    """Human-readable gate verdict with per-case speedup factors."""
    lines = [
        f"vs {baseline.tag}"
        + (f" (suite {baseline.suite_sha})" if baseline.suite_sha else "")
        + f", tolerance {tolerance:.0%} on calibrated wall time:"
    ]
    for name in current.results:
        if name not in baseline.results:
            lines.append(f"  {name:<28} (new case, no baseline)")
            continue
        then = baseline.calibrated(name)
        now = current.calibrated(name)
        if now <= 0 or then <= 0:
            continue
        speedup = then / now
        marker = "REGRESSION" if any(r["case"] == name for r in regressions) \
            else f"{speedup:.2f}x"
        lines.append(f"  {name:<28} {marker}")
    lines.append(
        "gate: FAIL" if regressions else "gate: PASS"
    )
    return "\n".join(lines)
