"""The pinned benchmark reference matrix.

The matrix is deliberately frozen: changing a case's parameters creates a
new measurement series that cannot be compared against committed
``BENCH_*.json`` files, so edits here must bump :data:`MATRIX_VERSION`
and re-baseline.  Two case kinds exist, mirroring the package's two-phase
split:

* ``trace`` — phase one: path-trace a Lumibench scene and measure ray
  throughput of the functional tracer (BVH build time is excluded; it is
  a one-off per scene and not a per-experiment hot path);
* ``sim`` — phase two: replay a traced workload through the timing model
  under one stack configuration and measure simulated-cycles-per-second.

Scenes were chosen to span the suite's traversal character: CRNVL
(moderate clutter, the CLI default), BUNNY (organic, shallow), SPNZA
(architectural, many waves of coherent rays).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: Bump when the matrix below changes; payloads carry it so a comparison
#: across incompatible matrices fails loudly instead of silently.
#: 2: benchmark cases gained the traversal-strategy axis plus the
#: stackless sim case.
#: 3: sim cases gained the timing-backend axis (vector-core cases added)
#: and trace-case results dropped their always-null cycles keys.
MATRIX_VERSION = 3


@dataclass(frozen=True)
class BenchCase:
    """One pinned benchmark case.

    ``kind`` is ``"trace"`` (measure workload generation) or ``"sim"``
    (measure the timing model on the named trace case's output).
    ``source`` names the ``trace`` case whose traces a ``sim`` case
    replays, so the expensive phase-one work is shared.  ``strategy``
    (sim cases) selects a non-default traversal strategy; its phase-one
    traces are regenerated from the source case's parameters outside the
    measured region, so the case still times only the replay.
    ``backend`` (sim cases) selects the timing backend; ``None`` is the
    reference stepped loop.  Backends are bit-identical by contract, so
    a ``vector`` case measures the same simulation, just its wall time.
    """

    name: str
    kind: str  # "trace" | "sim"
    scene: str
    width: int = 24
    height: int = 24
    spp: int = 1
    bounces: int = 2
    seed: int = 0
    config: Optional[str] = None  # sim cases: configuration label
    source: Optional[str] = None  # sim cases: trace case supplying traces
    strategy: Optional[str] = None  # sim cases: traversal strategy override
    backend: Optional[str] = None  # sim cases: timing backend (None=stepped)


#: The reference matrix every ``BENCH_*.json`` measures.
REFERENCE_MATRIX: Tuple[BenchCase, ...] = (
    BenchCase(name="trace:CRNVL", kind="trace", scene="CRNVL",
              width=48, height=48, bounces=3),
    BenchCase(name="trace:BUNNY", kind="trace", scene="BUNNY",
              width=64, height=64, bounces=2),
    BenchCase(name="trace:SPNZA", kind="trace", scene="SPNZA",
              width=48, height=48, bounces=2),
    BenchCase(name="sim:CRNVL/RB_8", kind="sim", scene="CRNVL",
              config="RB_8", source="trace:CRNVL"),
    BenchCase(name="sim:CRNVL/RB_8+SH_8+SK+RA", kind="sim", scene="CRNVL",
              config="RB_8+SH_8+SK+RA", source="trace:CRNVL"),
    BenchCase(name="sim:BUNNY/RB_8+SH_8", kind="sim", scene="BUNNY",
              config="RB_8+SH_8", source="trace:BUNNY"),
    BenchCase(name="sim:CRNVL/stackless", kind="sim", scene="CRNVL",
              config="RB_8", source="trace:CRNVL", strategy="stackless"),
    BenchCase(name="sim:CRNVL/RB_8/vector", kind="sim", scene="CRNVL",
              config="RB_8", source="trace:CRNVL", backend="vector"),
    BenchCase(name="sim:CRNVL/RB_8+SH_8+SK+RA/vector", kind="sim",
              scene="CRNVL", config="RB_8+SH_8+SK+RA", source="trace:CRNVL",
              backend="vector"),
    BenchCase(name="sim:BUNNY/RB_8+SH_8/vector", kind="sim", scene="BUNNY",
              config="RB_8+SH_8", source="trace:BUNNY", backend="vector"),
)
