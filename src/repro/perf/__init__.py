"""repro.perf: the performance layer's benchmark trajectory harness.

Every PR is supposed to make a hot path measurably faster (ROADMAP north
star); this package is how that claim is *recorded* rather than asserted.
``run_benchmarks`` executes a pinned reference workload matrix — trace
generation and timing simulation measured separately — and emits a
``BENCH_<tag>.json`` payload (wall time, rays/s, cycles/s, peak RSS,
calibration factor, suite git SHA).  ``compare_benchmarks`` gates a new
payload against a committed baseline with a tolerance, normalizing wall
times by each run's calibration loop so the gate survives machine-speed
differences between a laptop and a CI runner.
"""

from repro.perf.bench import (
    BenchPayload,
    calibrate,
    compare_benchmarks,
    format_comparison,
    format_payload,
    load_payload,
    run_benchmarks,
    save_payload,
)
from repro.perf.workloads import REFERENCE_MATRIX, BenchCase

__all__ = [
    "BenchCase",
    "BenchPayload",
    "REFERENCE_MATRIX",
    "calibrate",
    "compare_benchmarks",
    "format_comparison",
    "format_payload",
    "load_payload",
    "run_benchmarks",
    "save_payload",
]
