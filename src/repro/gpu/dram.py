"""DRAM timing: fixed access latency plus a bandwidth queue.

The queue is what makes traffic *cost* something beyond latency (which
multi-warp scheduling can hide): the controller services one 32-byte
sector every ``service_cycles``; a full 128-byte line is four sectors,
an 8-byte stack spill one.  Bursts of spill traffic therefore push each
other's completion times out, reproducing the paper's observation that
stack overflows degrade performance through bandwidth pressure, not just
latency.
"""

from __future__ import annotations

from repro.errors import ConfigError

#: DRAM transfer granularity in bytes.
SECTOR_BYTES = 32


class Dram:
    """A single-queue DRAM channel."""

    def __init__(self, latency: int = 220, service_cycles: int = 8) -> None:
        if latency < 0 or service_cycles < 1:
            raise ConfigError("invalid DRAM timing parameters")
        self.latency = latency
        self.service_cycles = service_cycles
        self._next_free = 0
        self.reads = 0
        self.writes = 0

    def _occupy(self, now: int, sectors: int) -> int:
        start = self._next_free
        if now > start:
            start = now
        self._next_free = start + self.service_cycles * (sectors if sectors > 1 else 1)
        return start

    def read(self, now: int, sectors: int = 4) -> int:
        """Issue a read of ``sectors`` at ``now``; returns completion time."""
        start = self._occupy(now, sectors)
        self.reads += 1
        return start + self.latency

    def write(self, now: int, sectors: int = 4) -> int:
        """Issue a write-back at ``now``; returns when the channel frees.

        Writes consume bandwidth but nothing waits on their completion.
        """
        start = self._occupy(now, sectors)
        self.writes += 1
        return self._next_free

    def reset(self) -> None:
        """Clear queue state and counters."""
        self._next_free = 0
        self.reads = 0
        self.writes = 0


def sectors_for(size_bytes: int) -> int:
    """Sectors an access of ``size_bytes`` occupies on the DRAM bus."""
    return max(1, (size_bytes + SECTOR_BYTES - 1) // SECTOR_BYTES)
