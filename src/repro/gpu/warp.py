"""Warp state: up to 32 ray traces advancing in lockstep.

The RT unit processes a warp one *traversal iteration* at a time: every
active lane executes its next trace step together (node fetch, intersection
tests, stack update), mirroring how the paper's RT unit collects requests
"across all 32 threads" of the scheduled warp.  Lanes whose traces are
exhausted go inactive (their rays completed) and — under SMS reallocation —
donate their SH stacks.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.trace.events import RayTrace, Step


class Warp:
    """One warp's worth of traces plus per-lane progress cursors.

    A ``__slots__`` class (not a dataclass): the timing model touches
    warp state on every iteration of every lane, and attribute access
    plus construction showed up in profiles.  Constructor signature and
    semantics match the dataclass it replaced.
    """

    __slots__ = (
        "warp_id", "traces", "cursors", "ready_time", "stack_free", "entered",
        "_active",
    )

    def __init__(
        self,
        warp_id: int,
        traces: List[Optional[RayTrace]],
        cursors: Optional[List[int]] = None,
        ready_time: int = 0,
        stack_free: int = 0,
        entered: bool = False,
    ) -> None:
        self.warp_id = warp_id
        self.traces = traces
        self.cursors = cursors if cursors else [0] * len(traces)
        self.ready_time = ready_time
        #: When this warp's stack-manager chain from the previous iteration
        #: completes; the next iteration's stack phase serializes on it.
        self.stack_free = stack_free
        self.entered = entered
        # Memoized active_lanes() result; invalidated on cursor movement.
        self._active: Optional[List[int]] = None

    def __repr__(self) -> str:
        return (
            f"Warp(warp_id={self.warp_id!r}, traces={len(self.traces)} lanes, "
            f"ready_time={self.ready_time!r}, stack_free={self.stack_free!r})"
        )

    @property
    def lane_count(self) -> int:
        """Number of lanes (including inactive padding)."""
        return len(self.traces)

    def lane_active(self, lane: int) -> bool:
        """True while the lane still has trace steps to execute."""
        trace = self.traces[lane]
        return trace is not None and self.cursors[lane] < len(trace.steps)

    def active_lanes(self) -> List[int]:
        """Lanes with work remaining (treat the returned list as read-only).

        Memoized: the RT unit asks on every iteration but lane liveness
        only changes when a cursor moves, and the unit's advance loop
        maintains the memo directly (``retire_to``).
        """
        active = self._active
        if active is None:
            cursors = self.cursors
            active = [
                lane
                for lane, trace in enumerate(self.traces)
                if trace is not None and cursors[lane] < len(trace.steps)
            ]
            self._active = active
        return active

    def retire_to(self, active: List[int]) -> None:
        """Install the surviving-lane list after an advance sweep."""
        self._active = active

    def current_step(self, lane: int) -> Step:
        """The step the lane executes this iteration."""
        return self.traces[lane].steps[self.cursors[lane]]

    def advance(self, lane: int) -> None:
        """Move the lane to its next step."""
        self.cursors[lane] += 1
        self._active = None

    @property
    def done(self) -> bool:
        """True when every lane has drained its trace."""
        return not self.active_lanes()

    @property
    def total_steps(self) -> int:
        """Total trace steps across lanes."""
        return sum(len(t.steps) for t in self.traces if t is not None)


def pack_warps(
    traces: Sequence[RayTrace], warp_size: int = 32
) -> List[Warp]:
    """Pack traces into warps in order, padding the final partial warp.

    Order matters: the workload generator emits waves (primaries, then
    shadow/bounce waves), so consecutive rays — and therefore warps — have
    the coherence structure of a real wavefront path tracer.
    """
    warps: List[Warp] = []
    for start in range(0, len(traces), warp_size):
        group: List[Optional[RayTrace]] = list(traces[start : start + warp_size])
        while len(group) < warp_size:
            group.append(None)
        warps.append(Warp(warp_id=len(warps), traces=group))
    return warps
