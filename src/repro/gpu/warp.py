"""Warp state: up to 32 ray traces advancing in lockstep.

The RT unit processes a warp one *traversal iteration* at a time: every
active lane executes its next trace step together (node fetch, intersection
tests, stack update), mirroring how the paper's RT unit collects requests
"across all 32 threads" of the scheduled warp.  Lanes whose traces are
exhausted go inactive (their rays completed) and — under SMS reallocation —
donate their SH stacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.trace.events import RayTrace, Step


@dataclass
class Warp:
    """One warp's worth of traces plus per-lane progress cursors."""

    warp_id: int
    traces: List[Optional[RayTrace]]
    cursors: List[int] = field(default_factory=list)
    ready_time: int = 0
    #: When this warp's stack-manager chain from the previous iteration
    #: completes; the next iteration's stack phase serializes on it.
    stack_free: int = 0
    entered: bool = False

    def __post_init__(self) -> None:
        if not self.cursors:
            self.cursors = [0] * len(self.traces)

    @property
    def lane_count(self) -> int:
        """Number of lanes (including inactive padding)."""
        return len(self.traces)

    def lane_active(self, lane: int) -> bool:
        """True while the lane still has trace steps to execute."""
        trace = self.traces[lane]
        return trace is not None and self.cursors[lane] < len(trace.steps)

    def active_lanes(self) -> List[int]:
        """Lanes with work remaining."""
        return [lane for lane in range(self.lane_count) if self.lane_active(lane)]

    def current_step(self, lane: int) -> Step:
        """The step the lane executes this iteration."""
        return self.traces[lane].steps[self.cursors[lane]]

    def advance(self, lane: int) -> None:
        """Move the lane to its next step."""
        self.cursors[lane] += 1

    @property
    def done(self) -> bool:
        """True when every lane has drained its trace."""
        return not self.active_lanes()

    @property
    def total_steps(self) -> int:
        """Total trace steps across lanes."""
        return sum(len(t.steps) for t in self.traces if t is not None)


def pack_warps(
    traces: Sequence[RayTrace], warp_size: int = 32
) -> List[Warp]:
    """Pack traces into warps in order, padding the final partial warp.

    Order matters: the workload generator emits waves (primaries, then
    shadow/bounce waves), so consecutive rays — and therefore warps — have
    the coherence structure of a real wavefront path tracer.
    """
    warps: List[Warp] = []
    for start in range(0, len(traces), warp_size):
        group: List[Optional[RayTrace]] = list(traces[start : start + warp_size])
        while len(group) < warp_size:
            group.append(None)
        warps.append(Warp(warp_id=len(warps), traces=group))
    return warps
