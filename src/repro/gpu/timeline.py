"""Execution timeline capture and Chrome-trace export.

Wraps an :class:`~repro.gpu.rt_unit.RTUnit` to record every warp
iteration as a timed event (which warp, when it started, how long the
fetch/stack phases took, what traffic it generated).  Timelines export to
the Chrome trace-event JSON format, so ``chrome://tracing`` / Perfetto
render the warp interleaving directly — handy for seeing GTO scheduling,
latency hiding and stack-manager serialization at a glance.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from repro.gpu.config import GPUConfig
from repro.gpu.cache import Cache
from repro.gpu.counters import Counters
from repro.gpu.dram import Dram
from repro.gpu.hierarchy import MemoryHierarchy
from repro.gpu.rt_unit import RTUnit
from repro.gpu.warp import Warp, pack_warps
from repro.trace.events import RayTrace


@dataclass
class TimelineEvent:
    """One warp iteration on the timeline."""

    warp_id: int
    sm_id: int
    start: int
    end: int
    active_lanes: int
    stack_ops: int

    @property
    def duration(self) -> int:
        """Event length in cycles."""
        return max(1, self.end - self.start)


@dataclass
class Timeline:
    """All recorded warp iterations of one simulation."""

    events: List[TimelineEvent] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        """Completion time of the last event."""
        return max((event.end for event in self.events), default=0)

    def events_for_warp(self, warp_id: int) -> List[TimelineEvent]:
        """Events of one warp, in time order."""
        return sorted(
            (e for e in self.events if e.warp_id == warp_id),
            key=lambda e: e.start,
        )

    def concurrency_at(self, cycle: int) -> int:
        """How many warp iterations span the given cycle."""
        return sum(1 for e in self.events if e.start <= cycle < e.end)

    def to_chrome_trace(self) -> dict:
        """Chrome trace-event JSON (load in chrome://tracing or Perfetto)."""
        trace_events = []
        for event in self.events:
            trace_events.append(
                {
                    "name": f"warp {event.warp_id}",
                    "cat": "traversal",
                    "ph": "X",
                    "ts": event.start,
                    "dur": event.duration,
                    "pid": event.sm_id,
                    "tid": event.warp_id,
                    "args": {
                        "active_lanes": event.active_lanes,
                        "stack_ops": event.stack_ops,
                    },
                }
            )
        return {"traceEvents": trace_events, "displayTimeUnit": "ns"}

    def save(self, path) -> Path:
        """Write the Chrome trace JSON; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_chrome_trace()))
        return path


class RecordingRTUnit(RTUnit):
    """RT unit that appends every iteration to a :class:`Timeline`."""

    def __init__(self, *args, timeline: Timeline, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.timeline = timeline

    def _execute_iteration(self, warp: Warp, stack, start: int):
        counters_before = (
            self.counters.stack_shared_ops + self.counters.stack_global_ops
        )
        active = len(warp.active_lanes())
        end, issue_cycles = super()._execute_iteration(warp, stack, start)
        counters_after = (
            self.counters.stack_shared_ops + self.counters.stack_global_ops
        )
        self.timeline.events.append(
            TimelineEvent(
                warp_id=warp.warp_id,
                sm_id=self.sm_id,
                start=start,
                end=end,
                active_lanes=active,
                stack_ops=counters_after - counters_before,
            )
        )
        return end, issue_cycles


def record_timeline(
    traces: Sequence[RayTrace],
    config: Optional[GPUConfig] = None,
    sm_id: int = 0,
) -> Timeline:
    """Run traces through one recorded RT unit and return its timeline.

    Uses a single SM (timelines of independent SMs just overlay), with the
    same memory configuration the plain simulator would give it.
    """
    config = config or GPUConfig()
    timeline = Timeline()
    l2 = Cache(
        size_bytes=config.l2_bytes,
        line_bytes=config.line_bytes,
        assoc=config.l2_assoc,
        name="L2",
    )
    dram = Dram(
        latency=config.dram_latency,
        service_cycles=config.dram_service_cycles * config.num_sms,
    )
    hierarchy = MemoryHierarchy(config, l2=l2, dram=dram)
    counters = Counters()
    unit = RecordingRTUnit(
        config, hierarchy, counters, sm_id=sm_id, timeline=timeline
    )
    unit.run(pack_warps(traces, warp_size=config.warp_size))
    return timeline
