"""Simulation statistics counters."""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class Counters:
    """Everything the experiments measure, accumulated during simulation."""

    instructions: int = 0
    cycles: int = 0
    warp_steps: int = 0

    # Node-data traffic.
    node_fetch_lines: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    dram_reads: int = 0
    dram_writes: int = 0

    # Traversal stack traffic.
    stack_shared_loads: int = 0
    stack_shared_stores: int = 0
    stack_global_loads: int = 0
    stack_global_stores: int = 0
    bank_conflict_delay_cycles: int = 0
    shared_transactions: int = 0

    # Reallocation activity.
    borrows: int = 0
    flushes: int = 0
    forced_flushes: int = 0

    @property
    def ipc(self) -> float:
        """Instructions per cycle (0 when nothing ran)."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def offchip_accesses(self) -> int:
        """DRAM transactions — the paper's Fig. 15b metric."""
        return self.dram_reads + self.dram_writes

    @property
    def stack_global_ops(self) -> int:
        """Stack spill/reload requests that target global memory."""
        return self.stack_global_loads + self.stack_global_stores

    @property
    def stack_shared_ops(self) -> int:
        """Stack requests that target shared memory."""
        return self.stack_shared_loads + self.stack_shared_stores

    @property
    def l1_accesses(self) -> int:
        """All L1D accesses (node fetches plus cached spill traffic)."""
        return self.l1_hits + self.l1_misses

    @property
    def l2_accesses(self) -> int:
        """All L2 accesses."""
        return self.l2_hits + self.l2_misses

    @property
    def l1_hit_rate(self) -> float:
        """L1D hit rate over all accesses."""
        total = self.l1_hits + self.l1_misses
        return self.l1_hits / total if total else 0.0

    def add(self, other: "Counters") -> None:
        """Accumulate ``other`` into this counter set (cycles take max)."""
        for spec in fields(self):
            if spec.name == "cycles":
                self.cycles = max(self.cycles, other.cycles)
            else:
                setattr(
                    self, spec.name,
                    getattr(self, spec.name) + getattr(other, spec.name),
                )

    def as_dict(self) -> dict:
        """Plain-dict view (for reports and serialization)."""
        data = {spec.name: getattr(self, spec.name) for spec in fields(self)}
        data["ipc"] = self.ipc
        data["offchip_accesses"] = self.offchip_accesses
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Counters":
        """Rebuild from an :meth:`as_dict` payload (extra keys ignored)."""
        names = {spec.name for spec in fields(cls)}
        return cls(**{key: value for key, value in data.items()
                      if key in names})
