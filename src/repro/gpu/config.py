"""Simulator configuration (paper Table I plus SMS knobs).

The baseline models the mobile-SoC GPU of the original Vulkan-Sim work:
8 SMs, one RT unit per SM holding up to 4 warps of 32 threads, a 64 KB
unified L1D/shared-memory SRAM (20-cycle), a 3 MB 16-way L2 (160-cycle)
and DRAM behind it.  The SMS carve-out follows the paper: shared memory
is sized to exactly what the SH stacks need, the remainder stays L1D
(e.g. the default RB_8+SH_8 design uses 8 KB shared + 56 KB L1D).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ConfigError

KB = 1024
MB = 1024 * KB


@dataclass(frozen=True)
class GPUConfig:
    """Full parameter set of the simulated GPU.

    ``rb_stack_entries=None`` selects the RB_FULL upper bound.
    ``sh_stack_entries=0`` disables the SH stack (pure baseline).
    """

    # General organization (Table I).
    num_sms: int = 8
    warp_size: int = 32
    rt_units_per_sm: int = 1
    max_warps_per_rt_unit: int = 4

    # Traversal stack architecture.
    rb_stack_entries: Optional[int] = 8
    sh_stack_entries: int = 0
    skewed_bank_access: bool = False
    intra_warp_realloc: bool = False
    # Inter-warp reallocation: the design the paper rejects (section V-B).
    # Lanes may borrow idle SH regions from *any* warp slot of the RT
    # unit; implemented for the inter_warp_study ablation.
    inter_warp_realloc: bool = False
    max_borrows: int = 4
    max_flushes: int = 3

    # Unified on-chip SRAM: L1D + shared memory carve-out.
    unified_cache_bytes: int = 64 * KB
    l1_latency: int = 20
    line_bytes: int = 128

    # L2 and DRAM.  The default L2 is scaled down from Table I's 3 MB in
    # proportion to the ~1:100-scaled scenes, preserving the paper's
    # working-set-to-cache ratio (BVHs 30-600x the L2); use
    # ``table1_config()`` for the paper's absolute parameters.
    l2_bytes: int = 256 * KB
    l2_assoc: int = 16
    l2_latency: int = 160
    # Per-SM share of the shared L2's port bandwidth: cycles one line-sized
    # access occupies the port.  This is what makes the L1D hit rate matter
    # (paper Fig. 6b) — every L1 miss consumes L2 bandwidth.
    l2_service_cycles: int = 16
    dram_latency: int = 220
    dram_service_cycles: int = 1

    # Shared memory timing.
    shared_latency: int = 20
    bank_conflict_penalty: int = 4

    # Port/issue occupancy: cycles each transaction holds the memory
    # pipeline (not hidden by multi-warp overlap).  Global accesses to
    # thread-specific spill addresses cannot coalesce (paper II-C), so
    # every line is a separate L1 transaction; a conflict-free shared
    # access serves the whole warp in one banked transaction.
    l1_port_cycles: int = 2
    shared_port_cycles: int = 1

    # Operation unit latencies.
    box_test_cycles: int = 1
    tri_test_cycles: int = 2

    # Cache policy for thread-local spill traffic: "uncached" (straight to
    # DRAM), "l2" (bypass L1 only) or "l1" (fully cached).  The paper's
    # full-scale runs stream BVHs 30-600x the L2 through the hierarchy, so
    # spilled stack lines essentially never survive any cache between
    # spill and reload (Fig. 15b: off-chip accesses track spill counts
    # almost 1:1).  At our ~100x-scaled-down scene sizes cached spills
    # would artificially stay resident and hide the cost the paper
    # measures, so "uncached" reproduces the paper's regime; the other
    # modes exist for the small-scene ablation.
    spill_cache_policy: str = "uncached"

    # Background L1 pressure from the SM's sub-cores: the unified L1D is
    # shared with shading/texture traffic that Vulkan-Sim simulates and
    # this model abstracts.  Each warp traversal iteration streams this
    # many foreign lines through the L1 (allocation only — their latency
    # belongs to the shader pipeline, not the RT unit's critical path).
    # Documented as a substitution in DESIGN.md.
    shader_pollution_lines: int = 48

    # Explicit L1D override for the Fig. 6b study (None = derived).
    l1d_bytes_override: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_sms < 1 or self.warp_size < 1:
            raise ConfigError("num_sms and warp_size must be positive")
        if self.max_warps_per_rt_unit < 1:
            raise ConfigError("RT unit needs at least one warp slot")
        if self.rb_stack_entries is not None and self.rb_stack_entries < 1:
            raise ConfigError("rb_stack_entries must be >= 1 (or None for FULL)")
        if self.sh_stack_entries < 0:
            raise ConfigError("sh_stack_entries must be >= 0")
        if self.sh_stack_entries and self.rb_stack_entries is None:
            raise ConfigError("RB_FULL does not combine with an SH stack")
        if self.line_bytes < 1 or self.unified_cache_bytes < self.line_bytes:
            raise ConfigError("unified cache must hold at least one line")
        if self.spill_cache_policy not in ("uncached", "l2", "l1"):
            raise ConfigError(
                f"spill_cache_policy must be 'uncached', 'l2' or 'l1', "
                f"got {self.spill_cache_policy!r}"
            )
        if self.inter_warp_realloc and self.sh_stack_entries == 0:
            raise ConfigError("inter_warp_realloc requires an SH stack")
        if self.shared_memory_bytes > self.unified_cache_bytes:
            raise ConfigError(
                f"SH stacks need {self.shared_memory_bytes} B of shared memory, "
                f"more than the {self.unified_cache_bytes} B unified SRAM"
            )

    @property
    def shared_memory_bytes(self) -> int:
        """Shared memory carved out of the unified SRAM for SH stacks."""
        if self.sh_stack_entries == 0:
            return 0
        from repro.stack.layout import SharedStackLayout

        per_warp = SharedStackLayout(
            entries=self.sh_stack_entries, warp_size=self.warp_size
        ).total_bytes
        return per_warp * self.max_warps_per_rt_unit * self.rt_units_per_sm

    @property
    def l1d_bytes(self) -> int:
        """L1D capacity: unified SRAM minus the shared-memory carve-out."""
        if self.l1d_bytes_override is not None:
            return self.l1d_bytes_override
        return self.unified_cache_bytes - self.shared_memory_bytes

    @property
    def threads_per_rt_unit(self) -> int:
        """Concurrent threads (rays) per RT unit."""
        return self.warp_size * self.max_warps_per_rt_unit

    def with_(self, **changes) -> "GPUConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    def describe(self) -> str:
        """The configuration label used in the paper's figures."""
        if self.rb_stack_entries is None:
            return "RB_FULL"
        label = f"RB_{self.rb_stack_entries}"
        if self.sh_stack_entries:
            label += f"+SH_{self.sh_stack_entries}"
            if self.skewed_bank_access:
                label += "+SK"
            if self.intra_warp_realloc:
                label += "+RA"
            if self.inter_warp_realloc:
                label += "+IW"
        return label
