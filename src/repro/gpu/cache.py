"""Set-associative / fully-associative LRU caches.

Write-back, write-allocate.  The model tracks tags and dirty bits only —
no data — since the functional phase already resolved values; what matters
here is hit/miss behaviour and dirty-eviction write traffic.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigError


@dataclass
class AccessResult:
    """Outcome of one cache access."""

    hit: bool
    evicted_dirty_line: Optional[int] = None  # line address written back


class Cache:
    """An LRU cache of ``size_bytes`` with ``assoc`` ways.

    ``assoc=None`` means fully associative (the paper's L1D).
    """

    def __init__(
        self,
        size_bytes: int,
        line_bytes: int = 128,
        assoc: Optional[int] = None,
        name: str = "cache",
    ) -> None:
        if size_bytes < line_bytes:
            raise ConfigError(f"{name}: size smaller than one line")
        if size_bytes % line_bytes:
            raise ConfigError(f"{name}: size not a multiple of the line size")
        self.name = name
        self.line_bytes = line_bytes
        self.total_lines = size_bytes // line_bytes
        if assoc is None:
            assoc = self.total_lines
        if assoc < 1 or self.total_lines % assoc:
            raise ConfigError(f"{name}: lines not divisible into {assoc} ways")
        self.assoc = assoc
        self.num_sets = self.total_lines // assoc
        # Each set maps line-address -> dirty flag, in LRU order (oldest first).
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def _set_of(self, line_addr: int) -> OrderedDict:
        return self._sets[(line_addr // self.line_bytes) % self.num_sets]

    def line_address(self, address: int) -> int:
        """Align an address down to its line."""
        return address - (address % self.line_bytes)

    def access(self, address: int, is_store: bool = False) -> AccessResult:
        """Look up (and allocate on miss) the line containing ``address``."""
        line = self.line_address(address)
        cache_set = self._set_of(line)
        if line in cache_set:
            self.hits += 1
            cache_set.move_to_end(line)
            if is_store:
                cache_set[line] = True
            return AccessResult(hit=True)
        self.misses += 1
        evicted_dirty = None
        if len(cache_set) >= self.assoc:
            victim, dirty = cache_set.popitem(last=False)
            if dirty:
                evicted_dirty = victim
        cache_set[line] = is_store
        return AccessResult(hit=False, evicted_dirty_line=evicted_dirty)

    def contains(self, address: int) -> bool:
        """Non-mutating presence check (tests/diagnostics)."""
        line = self.line_address(address)
        return line in self._set_of(line)

    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(len(s) for s in self._sets)

    def flush(self) -> int:
        """Drop all lines; returns how many dirty lines were discarded."""
        dirty = sum(1 for s in self._sets for flag in s.values() if flag)
        for cache_set in self._sets:
            cache_set.clear()
        return dirty
