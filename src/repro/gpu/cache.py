"""Set-associative / fully-associative LRU caches.

Write-back, write-allocate.  The model tracks tags and dirty bits only —
no data — since the functional phase already resolved values; what matters
here is hit/miss behaviour and dirty-eviction write traffic.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigError


@dataclass
class AccessResult:
    """Outcome of one cache access."""

    hit: bool
    evicted_dirty_line: Optional[int] = None  # line address written back


class Cache:
    """An LRU cache of ``size_bytes`` with ``assoc`` ways.

    ``assoc=None`` means fully associative (the paper's L1D).
    """

    def __init__(
        self,
        size_bytes: int,
        line_bytes: int = 128,
        assoc: Optional[int] = None,
        name: str = "cache",
    ) -> None:
        if size_bytes < line_bytes:
            raise ConfigError(f"{name}: size smaller than one line")
        if size_bytes % line_bytes:
            raise ConfigError(f"{name}: size not a multiple of the line size")
        self.name = name
        self.line_bytes = line_bytes
        self.total_lines = size_bytes // line_bytes
        if assoc is None:
            assoc = self.total_lines
        if assoc < 1 or self.total_lines % assoc:
            raise ConfigError(f"{name}: lines not divisible into {assoc} ways")
        self.assoc = assoc
        self.num_sets = self.total_lines // assoc
        # Each set maps line-address -> dirty flag, in LRU order (oldest first).
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def _set_of(self, line_addr: int) -> OrderedDict:
        return self._sets[(line_addr // self.line_bytes) % self.num_sets]

    def line_address(self, address: int) -> int:
        """Align an address down to its line."""
        return address - (address % self.line_bytes)

    def probe(self, address: int, is_store: bool = False):
        """Allocation-free :meth:`access`: returns ``(hit, evicted_dirty)``.

        Identical state transitions and hit/miss accounting to
        :meth:`access`, but the result is a plain tuple — the timing
        model's hot loops call this tens of thousands of times per
        simulated frame and the :class:`AccessResult` boxing showed up as
        a top allocation site.
        """
        line = address - (address % self.line_bytes)
        cache_set = self._sets[(line // self.line_bytes) % self.num_sets]
        if line in cache_set:
            self.hits += 1
            cache_set.move_to_end(line)
            if is_store:
                cache_set[line] = True
            return True, None
        self.misses += 1
        evicted_dirty = None
        if len(cache_set) >= self.assoc:
            victim, dirty = cache_set.popitem(last=False)
            if dirty:
                evicted_dirty = victim
        cache_set[line] = is_store
        return False, evicted_dirty

    def access(self, address: int, is_store: bool = False) -> AccessResult:
        """Look up (and allocate on miss) the line containing ``address``."""
        hit, evicted_dirty = self.probe(address, is_store)
        return AccessResult(hit=hit, evicted_dirty_line=evicted_dirty)

    def pollute_stream(
        self, base: int, cursor: int, span: int, stride: int, count: int
    ):
        """Stream ``count`` sequential foreign loads; returns state.

        Walks line addresses ``base + cursor``, ``base + cursor + stride``
        ... (cursor wrapping at ``span``) as clean loads, exactly like
        ``count`` calls to :meth:`access`.  Returns ``(new_cursor,
        evicted_dirty_lines)``.

        Fast path: for a single-set (fully associative) cache whose
        capacity is below the stream's wrap distance, every access is a
        guaranteed miss — a streamed address can only be resident if it
        survived the ``span // stride`` insertions since its last visit,
        and any line is evicted after at most ``assoc`` insertions.  The
        membership test and hit bookkeeping are then dead code, leaving
        just the evict+insert dictionary work.
        """
        evicted: List[int] = []
        if self.num_sets == 1 and span > self.assoc * stride:
            cache_set = self._sets[0]
            assoc = self.assoc
            popitem = cache_set.popitem
            address = base + cursor
            limit = base + span
            for _ in range(count):
                if len(cache_set) >= assoc:
                    victim, dirty = popitem(False)
                    if dirty:
                        evicted.append(victim)
                cache_set[address] = False
                address += stride
                if address >= limit:
                    address -= span
            self.misses += count
            return address - base, evicted
        for _ in range(count):
            _, victim = self.probe(base + cursor, False)
            if victim is not None:
                evicted.append(victim)
            cursor = (cursor + stride) % span
        return cursor, evicted

    def contains(self, address: int) -> bool:
        """Non-mutating presence check (tests/diagnostics)."""
        line = self.line_address(address)
        return line in self._set_of(line)

    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(len(s) for s in self._sets)

    def flush(self) -> int:
        """Drop all lines; returns how many dirty lines were discarded."""
        dirty = sum(1 for s in self._sets for flag in s.values() if flag)
        for cache_set in self._sets:
            cache_set.clear()
        return dirty
