"""The vector timing backend: SoA mirrors + plan-driven warp stepping.

``GPUSimulator(backend="vector")`` routes timing through this package;
the stepped loop stays the default and the bit-identity oracle.  See
``docs/architecture.md`` §14 for the design and the validity envelope.
"""

from repro.gpu.vector.lru import LazyL1
from repro.gpu.vector.plan import (
    BoundPlan,
    RawPlan,
    VectorUnsupported,
    vector_unsupported_reason,
    warp_plan,
)
from repro.gpu.vector.soa import (
    TraceSoA,
    WarpStateSoA,
    batch_warp_state,
    pack_trace,
    unpack_trace,
)
from repro.gpu.vector.unit import VectorRTUnit

__all__ = [
    "BoundPlan",
    "LazyL1",
    "RawPlan",
    "TraceSoA",
    "VectorRTUnit",
    "VectorUnsupported",
    "WarpStateSoA",
    "batch_warp_state",
    "pack_trace",
    "unpack_trace",
    "vector_unsupported_reason",
    "warp_plan",
]
