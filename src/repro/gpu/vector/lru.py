"""A pollution-aware mirror of the stepped fully-associative clean L1D.

The stepped :class:`~repro.gpu.cache.Cache` keeps an ``OrderedDict``
per set and calls ``move_to_end`` on every hit.  For the vector backend
the L1 is the single hottest structure — every node line of every
iteration probes it, and every iteration streams
``shader_pollution_lines`` foreign lines through it — so this module
keeps the same C-speed ``OrderedDict`` recency discipline but never
materializes the pollution stream:

* Real (node) lines are keys mapping to ``True``, in LRU order, exactly
  like one stepped cache set.
* A pollution burst is one **marker** entry — a unique negative key
  mapping to the burst's line count.  Real line addresses are
  non-negative, so ``key < 0`` identifies markers.
* The marker currently at the LRU head is held *outside* the dict as a
  plain remaining-count integer (``head_marker``); markers are never
  probed, so the true LRU order is always ``[head_marker lines] +
  od``.  Evicting from it is one integer decrement — the common case,
  since pollution dominates the cold end of the cache.

Under the guaranteed-miss precondition (stream span larger than the
cache, checked at plan build) a polluted line can never be probed again
while resident, so a count is observationally identical to the stepped
cache's individual insertions: it occupies the same capacity and yields
the same number of LRU evictions, at O(1) per burst instead of
O(lines).

The mirror is only valid for a *clean* L1 (no stores ever hit it —
``spill_cache_policy`` is ``"uncached"`` or ``"l2"``), which is exactly
the eligibility gate :func:`repro.gpu.vector.plan.vector_unsupported_reason`
enforces: clean lines make eviction a pure bookkeeping action with no
write-back timing, so the marker representation is undetectable.

Equivalence with the stepped cache is property-tested in
``tests/gpu/test_vector_soa.py``.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["LazyL1"]


class LazyL1:
    """LRU set of clean cache lines with O(1) pollution bursts."""

    __slots__ = ("cap", "od", "live", "marker_seq", "head_marker")

    def __init__(self, capacity: int) -> None:
        self.cap = capacity
        #: line -> True (resident node line), or negative marker key ->
        #: remaining pollution count, in LRU order (oldest first).
        self.od: OrderedDict = OrderedDict()
        #: Resident *lines* (markers count their whole population).
        self.live = 0
        self.marker_seq = 0
        #: Remaining population of the marker at the LRU head (0 when
        #: the head is a real line or the cache holds no marker there).
        self.head_marker = 0

    def hit(self, line: int) -> bool:
        """Probe for ``line``; on a hit, refresh its recency."""
        od = self.od
        if line in od:
            od.move_to_end(line)
            return True
        return False

    def insert(self, line: int) -> None:
        """Insert a missing line, evicting the LRU resident at capacity.

        Mirrors the stepped miss path: the victim is taken *before* the
        insert (``len >= assoc`` check), so the new line can never evict
        itself.
        """
        if self.live >= self.cap:
            self._evict_one()
        self.od[line] = True
        self.live += 1

    def pollute(self, count: int) -> None:
        """Stream ``count`` guaranteed-miss foreign lines through.

        Equivalent to ``count`` sequential miss-inserts of lines that
        are never probed again: evict as many residents as capacity
        demands, then record the burst as one marker.  Requires
        ``count <= cap`` (checked at plan build) so the burst can never
        evict its own lines.
        """
        if count <= 0:
            return
        overflow = self.live + count - self.cap
        if overflow > 0:
            self._evict_many(overflow)
            self.live = self.cap
        else:
            self.live += count
        self.marker_seq -= 1
        self.od[self.marker_seq] = count

    def _evict_one(self) -> None:
        """Drop the least-recently-used resident line (or pollution)."""
        if self.head_marker:
            self.head_marker -= 1
        else:
            victim, value = self.od.popitem(last=False)
            if victim < 0:
                self.head_marker = value - 1
        self.live -= 1

    def _evict_many(self, n: int) -> None:
        """Drop the ``n`` least-recently-used residents in bulk."""
        od = self.od
        head_marker = self.head_marker
        self.live -= n
        while n > 0:
            if head_marker:
                take = head_marker if head_marker < n else n
                head_marker -= take
                n -= take
            else:
                victim, value = od.popitem(last=False)
                if victim < 0:
                    head_marker = value
                else:
                    n -= 1
        self.head_marker = head_marker

    def resident_lines(self) -> set:
        """The resident *tracked* (non-pollution) line set — test hook."""
        return {key for key in self.od if key >= 0}

    @property
    def occupancy(self) -> int:
        """Total resident lines including the pollution population."""
        return self.live
