"""The vector RT unit: plan-driven replica of the stepped scheduler.

:class:`VectorRTUnit` runs the *same* event-driven schedule as
:class:`~repro.gpu.rt_unit.RTUnit` — greedy-then-oldest arbitration,
``pipeline_free`` issue serialization, the single-resident-warp
fast-forward drain — but each iteration's work is a precomputed
:class:`~repro.gpu.vector.plan.BoundPlan` record instead of a per-lane
replay.  What remains in the loop is exactly the timing-coupled state:
the L1 mirror (:class:`~repro.gpu.vector.lru.LazyL1`), the shared L2
(the *same* ``Cache`` object the stepped path uses, mutated through the
identical probe sequence), the DRAM queue and the L2 port — inlined as
scalar arithmetic.

Bit-identity contract (enforced by ``tests/gpu/test_vector_equiv.py``
and the SL204 lint): every ``Counters`` field and the returned
completion cycle match the stepped oracle exactly.  The class declares
``COUNTER_PARITY_ORACLE`` so simlint statically checks that this file's
``run`` call graph writes every counter field the oracle dataclass
declares — a new counter added to :mod:`repro.gpu.counters` without a
vector write path fails the lint, not just (eventually) a test.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Sequence

from repro.errors import SimulationError
from repro.gpu.config import GPUConfig
from repro.gpu.counters import Counters
from repro.gpu.hierarchy import MemoryHierarchy
from repro.gpu.warp import Warp
from repro.gpu.vector.lru import LazyL1
from repro.gpu.vector.plan import (
    SAMPLE_STRIDE,
    warp_plan,
    raise_pop_mismatch,
)

__all__ = ["VectorRTUnit"]


class VectorRTUnit:
    """One SM's RT unit, executing precomputed warp plans."""

    #: simlint SL204: ``run``'s call graph must write every counter
    #: field this dataclass file declares (minus the exemptions below).
    COUNTER_PARITY_ORACLE = "../counters.py"
    #: ``cycles`` is owned by the simulator (max over per-SM completion).
    COUNTER_PARITY_EXEMPT = ("cycles",)

    def __init__(
        self,
        config: GPUConfig,
        hierarchy: MemoryHierarchy,
        counters: Counters,
        sm_id: int = 0,
        verify_pops: bool = True,
        guard=None,
        fast_forward: bool = True,
        strategy=None,
    ) -> None:
        from repro.traversal.registry import resolve_strategy

        if guard is not None:
            raise SimulationError(
                "the vector backend cannot host the guard layer; "
                "guarded runs must use the stepped oracle",
                sm_id=sm_id, component="backend",
            )
        self.config = config
        self.counters = counters
        self.sm_id = sm_id
        self.verify_pops = verify_pops
        self.fast_forward = fast_forward
        self.strategy = resolve_strategy(strategy)
        # Timing-coupled memory state.  The L2 Cache object is shared
        # across SMs (by the simulator); the DRAM queue and L2 port are
        # per-SM and mirrored as plain scalars.
        self._l2 = hierarchy.l2
        self._l1 = LazyL1(config.l1d_bytes // config.line_bytes)
        self._l2_port_free = 0
        self._dram_next_free = 0
        dram = hierarchy.dram
        self._dram_latency = dram.latency
        self._dram_service1 = dram.service_cycles
        self._dram_service4 = dram.service_cycles * 4
        cycles4 = config.l2_service_cycles
        self._l2_cycles4 = cycles4 if cycles4 > 0 else 1
        cycles1 = config.l2_service_cycles // 4
        self._l2_cycles1 = cycles1 if cycles1 > 0 else 1
        self._l2_base = config.l1_latency + config.l2_latency
        self._l1_latency = config.l1_latency
        self._l1_port = config.l1_port_cycles
        self._pollution = config.shader_pollution_lines
        self._spill_policy = config.spill_cache_policy
        # One-attribute-load environment for the hot iteration loop: the
        # stable objects and scalars `_execute_iteration` needs, packed
        # so its prologue is a single tuple unpack.  Everything here is
        # immutable or mutated strictly in place (LazyL1._compact keeps
        # the deque object; Cache never rebinds ``_sets``).
        l1 = self._l1
        l2 = self._l2
        self._env = (
            l1.od, l2._sets, l2.num_sets, l2.assoc,
            l2.line_bytes, self._l1_latency, self._l2_base,
            self._l2_cycles4, self._dram_service4, self._dram_latency,
            self._l1_port, self._pollution, l1.cap,
        )

    # ------------------------------------------------------------------
    # top-level run loop — same schedule as the stepped RTUnit
    # ------------------------------------------------------------------

    def run(self, warps: Sequence[Warp]) -> int:
        """Execute all warps; returns the completion cycle."""
        pending = deque(warps)
        resident: List[list] = []  # [warp, slot, plan, iteration, spill]
        free_slots = list(range(self.config.max_warps_per_rt_unit))
        completion = 0
        pipeline_free = 0
        greedy_warp_id: Optional[int] = None

        def admit(now: int) -> None:
            while pending and free_slots:
                slot = free_slots.pop(0)
                warp = pending.popleft()
                warp.ready_time = now
                resident.append(self._admit_entry(warp, slot))

        admit(0)
        while resident:
            if self.fast_forward and len(resident) == 1 and not pending:
                # Event-driven fast-forward, verbatim from the stepped
                # unit: the GTO pick of a sole resident warp is a
                # foregone conclusion, so drain it without arbitration.
                entry = resident[0]
                warp = entry[0]
                plan = entry[2]
                spill_base = entry[4]
                iteration = entry[3]
                n_iters = plan.n_iters
                while iteration < n_iters:
                    start = max(warp.ready_time, pipeline_free)
                    end, issue_cycles = self._execute_iteration(
                        warp, plan, iteration, start, spill_base
                    )
                    pipeline_free = start + issue_cycles
                    warp.ready_time = end
                    if end > completion:
                        completion = end
                    iteration += 1
                entry[3] = iteration
                resident.clear()
                free_slots.append(entry[1])
                continue
            entry = self._pick_warp(resident, greedy_warp_id)
            warp = entry[0]
            greedy_warp_id = warp.warp_id
            start = max(warp.ready_time, pipeline_free)
            end, issue_cycles = self._execute_iteration(
                warp, entry[2], entry[3], start, entry[4]
            )
            entry[3] += 1
            pipeline_free = start + issue_cycles
            warp.ready_time = end
            completion = max(completion, end)
            if entry[3] >= entry[2].n_iters:
                resident.remove(entry)
                free_slots.append(entry[1])
                admit(end)
        return completion

    def _admit_entry(self, warp: Warp, slot: int) -> list:
        """Plan (or fetch the cached plan for) an admitted warp."""
        config = self.config
        raw = warp_plan(
            warp, config, self.strategy,
            sample=warp.warp_id % SAMPLE_STRIDE == 0,
        )
        plan = raw.bound(config)
        if plan.n_iters == 0:
            raise SimulationError(
                "scheduled a warp with no active lanes",
                sm_id=self.sm_id, warp_id=warp.warp_id,
                component="scheduler",
            )
        if self.verify_pops and plan.mismatch is not None:
            raise_pop_mismatch(plan.mismatch, self.sm_id, warp.warp_id)
        self._apply_totals(plan)
        warp_index = (
            self.sm_id * config.max_warps_per_rt_unit + slot
        )
        return [warp, slot, plan, 0, warp_index * plan.warp_bytes]

    def _apply_totals(self, plan) -> None:
        """Fold the plan's order-independent counter totals in one shot.

        Each field is written explicitly (no loop over a name list) so
        the SL204 counter-surface check sees the full write surface.
        """
        counters = self.counters
        totals = plan.totals
        counters.instructions += totals["instructions"]
        counters.warp_steps += totals["warp_steps"]
        counters.node_fetch_lines += totals["node_fetch_lines"]
        counters.stack_shared_loads += totals["stack_shared_loads"]
        counters.stack_shared_stores += totals["stack_shared_stores"]
        counters.stack_global_loads += totals["stack_global_loads"]
        counters.stack_global_stores += totals["stack_global_stores"]
        counters.bank_conflict_delay_cycles += (
            totals["bank_conflict_delay_cycles"]
        )
        counters.shared_transactions += totals["shared_transactions"]
        counters.borrows += totals["borrows"]
        counters.flushes += totals["flushes"]
        counters.forced_flushes += totals["forced_flushes"]

    def _pick_warp(
        self, resident: List[list], greedy_warp_id: Optional[int]
    ) -> list:
        """GTO: stick with the greedy warp when it is as ready as any.

        Byte-for-byte the stepped ``_pick_warp`` decision procedure,
        including the first-minimal and lowest-id tie-breaks.
        """
        best = resident[0]
        for entry in resident:
            if entry[0].ready_time < best[0].ready_time:
                best = entry
        min_ready = best[0].ready_time
        if greedy_warp_id is not None:
            for entry in resident:
                warp = entry[0]
                if (
                    warp.warp_id == greedy_warp_id
                    and warp.ready_time <= min_ready
                ):
                    return entry
        pick = None
        for entry in resident:
            warp = entry[0]
            if warp.ready_time == min_ready and (
                pick is None or warp.warp_id < pick[0].warp_id
            ):
                pick = entry
        return pick

    # ------------------------------------------------------------------
    # one traversal iteration, from the plan
    # ------------------------------------------------------------------

    def _execute_iteration(
        self, warp: Warp, plan, iteration: int, start: int, spill_base: int
    ):
        """Price one planned iteration; returns (end, issue_cycles)."""
        counters = self.counters
        lines, fetch_port, intersect, sdelta, sport, cplx = (
            plan.iters[iteration]
        )

        # Phase 1: node fetch — LazyL1 probe + inline L2/DRAM timing,
        # one line per L1 port slot (mirrors MemoryHierarchy.fetch_lines).
        (
            od, l2_sets, l2_num_sets, l2_assoc, line_bytes,
            l1_latency, l2_base, l2_cycles4, dram_service4, dram_latency,
            l1_port, pollution, l1_cap,
        ) = self._env
        l1 = self._l1
        l1_live = l1.live
        head_marker = l1.head_marker
        od_move = od.move_to_end
        od_pop = od.popitem
        l2_port_free = self._l2_port_free
        dram_next_free = self._dram_next_free
        now = start
        fetch_done = start
        l1_hits = 0
        l1_misses = 0
        l2_hits = 0
        l2_misses = 0
        dram_reads = 0
        dram_writes = 0
        for line, set_index in lines:
            if line in od:
                l1_hits += 1
                od_move(line)
                done = now + l1_latency
            else:
                l1_misses += 1
                if l1_live >= l1_cap:
                    # Inline LazyL1._evict_one (hot path).
                    if head_marker:
                        head_marker -= 1
                    else:
                        victim, value = od_pop(False)
                        if victim < 0:
                            head_marker = value - 1
                    l1_live -= 1
                od[line] = True
                l1_live += 1
                issue_at = l2_port_free if l2_port_free > now else now
                l2_port_free = issue_at + l2_cycles4
                cache_set = l2_sets[set_index]
                if line in cache_set:
                    cache_set.move_to_end(line)
                    l2_hits += 1
                    done = issue_at + l2_base
                else:
                    if len(cache_set) >= l2_assoc:
                        victim, dirty = cache_set.popitem(last=False)
                        if dirty:
                            write_at = (
                                dram_next_free
                                if dram_next_free > issue_at else issue_at
                            )
                            dram_next_free = write_at + dram_service4
                            dram_writes += 1
                    cache_set[line] = False
                    l2_misses += 1
                    base = issue_at + l2_base
                    read_at = (
                        dram_next_free if dram_next_free > base else base
                    )
                    dram_next_free = read_at + dram_service4
                    dram_reads += 1
                    done = read_at + dram_latency
            if done > fetch_done:
                fetch_done = done
            now += l1_port
        counters.l1_hits += l1_hits
        counters.l1_misses += l1_misses
        # Inline LazyL1.pollute (hot path): the shader's foreign-line
        # burst after every node fetch.
        if pollution > 0:
            overflow = l1_live + pollution - l1_cap
            if overflow > 0:
                while overflow > 0:
                    if head_marker:
                        take = (
                            head_marker if head_marker < overflow
                            else overflow
                        )
                        head_marker -= take
                        overflow -= take
                    else:
                        victim, value = od_pop(False)
                        if victim < 0:
                            head_marker = value
                        else:
                            overflow -= 1
                l1_live = l1_cap
            else:
                l1_live += pollution
            marker = l1.marker_seq - 1
            l1.marker_seq = marker
            od[marker] = pollution
        l1.live = l1_live
        l1.head_marker = head_marker

        # Phase 2 + 3: intersection, then the stack phase.  Iterations
        # whose chains touched only shared memory were fully priced at
        # bind time (sdelta/sport); global spill positions re-price
        # against live L2/DRAM state.
        t = fetch_done + intersect
        stack_free = warp.stack_free
        stack_start = t if t > stack_free else stack_free
        if cplx is None:
            stack_end = stack_start + sdelta
            stack_port = sport
        else:
            self._l2_port_free = l2_port_free
            self._dram_next_free = dram_next_free
            stack_end, stack_port, spill_counts = self._price_global(
                cplx, stack_start, spill_base
            )
            l2_port_free = self._l2_port_free
            dram_next_free = self._dram_next_free
            l2_hits += spill_counts[0]
            l2_misses += spill_counts[1]
            dram_reads += spill_counts[2]
            dram_writes += spill_counts[3]
        counters.l2_hits += l2_hits
        counters.l2_misses += l2_misses
        counters.dram_reads += dram_reads
        counters.dram_writes += dram_writes
        warp.stack_free = stack_end
        issue_slots = stack_start + stack_port
        if issue_slots > t:
            t = issue_slots
        self._l2_port_free = l2_port_free
        self._dram_next_free = dram_next_free
        return t, fetch_port + intersect + stack_port

    def _price_global(self, cplx, t: int, spill_base: int):
        """Price a stack phase whose chains touch global spill memory.

        Mirrors ``RTUnit._price_stack_chains`` position by position:
        shared costs come precomputed from the plan, global ops replay
        the ``MemoryHierarchy.access_line`` arithmetic for the run's
        spill policy against the live L2/DRAM state, rebased to this
        warp slot's spill window (``spill_base``).
        """
        positions, extra = cplx
        port = self._l1_port
        uncached = self._spill_policy == "uncached"
        l2_port_free = self._l2_port_free
        dram_next_free = self._dram_next_free
        l2 = self._l2
        l2_sets = l2._sets
        l2_num_sets = l2.num_sets
        l2_assoc = l2.assoc
        line_bytes = l2.line_bytes
        l2_base = self._l2_base
        l2_cycles1 = self._l2_cycles1
        dram_service1 = self._dram_service1
        dram_service4 = self._dram_service4
        dram_latency = self._dram_latency
        l2_hits = 0
        l2_misses = 0
        dram_reads = 0
        dram_writes = 0
        port_cycles = 0
        for shared_cost, shared_port_inc, gops in positions:
            global_cost = 0
            if gops:
                index = 0
                for is_store, line0 in gops:
                    now = t + index * port
                    issue_at = (
                        l2_port_free if l2_port_free > now else now
                    )
                    l2_port_free = issue_at + l2_cycles1
                    if uncached:
                        if is_store:
                            write_at = (
                                dram_next_free
                                if dram_next_free > issue_at else issue_at
                            )
                            dram_next_free = write_at + dram_service1
                            dram_writes += 1
                            cost = (index + 1) * port
                        else:
                            base = issue_at + l2_base
                            read_at = (
                                dram_next_free
                                if dram_next_free > base else base
                            )
                            dram_next_free = read_at + dram_service1
                            dram_reads += 1
                            cost = read_at + dram_latency - t
                    else:  # "l2" spill policy
                        line = line0 + spill_base
                        cache_set = l2_sets[
                            (line // line_bytes) % l2_num_sets
                        ]
                        if line in cache_set:
                            cache_set.move_to_end(line)
                            if is_store:
                                cache_set[line] = True
                            l2_hits += 1
                            done = issue_at + l2_base
                        else:
                            if len(cache_set) >= l2_assoc:
                                victim, dirty = cache_set.popitem(last=False)
                                if dirty:
                                    write_at = (
                                        dram_next_free
                                        if dram_next_free > issue_at
                                        else issue_at
                                    )
                                    dram_next_free = write_at + dram_service4
                                    dram_writes += 1
                            cache_set[line] = is_store
                            l2_misses += 1
                            done = issue_at + l2_base
                            if not is_store:
                                read_at = (
                                    dram_next_free
                                    if dram_next_free > done else done
                                )
                                dram_next_free = read_at + dram_service4
                                dram_reads += 1
                                done = read_at + dram_latency
                        if is_store:
                            cost = (index + 1) * port
                        else:
                            cost = done - t
                    if cost > global_cost:
                        global_cost = cost
                    index += 1
                port_cycles += len(gops) * port
            port_cycles += shared_port_inc
            t += shared_cost if shared_cost > global_cost else global_cost
        self._l2_port_free = l2_port_free
        self._dram_next_free = dram_next_free
        return (
            t + extra,
            port_cycles + extra,
            (l2_hits, l2_misses, dram_reads, dram_writes),
        )
