"""Per-warp replay plans: the timing-independent half of an iteration.

The key structural fact the vector backend exploits: the stepped RT
unit advances every active lane's cursor unconditionally on every
iteration, so *which* lanes are active at iteration ``k``, which node
lines they fetch, how many tests they run and which stack ops they
emit are all pure functions of the recorded traces and the stack-model
configuration — none of it depends on when the scheduler runs the
iteration.  Only the memory-system state (L1/L2/DRAM, port queues) and
the inter-warp arbitration are timing-coupled.

:func:`warp_plan` therefore replays a warp once against a *canonical*
(slot 0, SM 0) stack model and precomputes, per iteration:

* the deduplicated node-line tuple (stepped lane order preserved);
* intersection maxima / instruction counts (numpy-batched via
  :func:`~repro.gpu.vector.soa.batch_warp_state`);
* the stack-chain *positions* — for chains with only shared-memory
  ops the whole pricing collapses to two precomputed scalars, while
  positions touching global spill memory keep an op list the runtime
  prices against live L2/DRAM state;
* order-independent counter totals (instructions, stack traffic,
  shared transactions, borrow/flush harvest) applied in one shot.

Slot invariance makes the canonical replay sound: shared-stack bank
conflict degrees are unchanged by the per-slot layout base (always a
multiple of the bank row), and global spill addresses shift by exactly
``warp_index * warp_bytes`` — a whole number of cache lines — so the
runtime rebases the precomputed line addresses per slot.

Plans are cached on the warp's first trace (``RayTrace._vector_cache``)
and priced ("bound") per pricing-parameter key, so sweeps that re-run
the same workload under different latencies replay once.

When a configuration or workload falls outside the mirror's validity
envelope (guarded runs, inter-warp reallocation, L1-cached spills,
node data overlapping the pollution window, a stack model that has not
opted in), :class:`VectorUnsupported` is raised *before any counter is
touched*, and :class:`~repro.gpu.simulator.GPUSimulator` falls back to
the stepped oracle for the whole run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ReproError, SimulationError
from repro.gpu.config import GPUConfig
from repro.gpu.hierarchy import MemoryHierarchy
from repro.gpu.warp import Warp
from repro.stack.base import ENTRY_BYTES
from repro.stack.ops import MemSpace, OpKind
from repro.stack.layout import bank_of_word, words_of_access
from repro.stack.sms import SmsStack
from repro.stack.spill import SPILL_SLOTS_PER_LANE
from repro.gpu.vector.soa import batch_warp_state, trace_cache

__all__ = [
    "VectorUnsupported",
    "RawPlan",
    "BoundPlan",
    "warp_plan",
    "vector_unsupported_reason",
]

#: Sampled warps get their plan replay cross-checked against the SoA
#: mirror by the guard layer's vector sampler (one warp in this many).
SAMPLE_STRIDE = 16


class VectorUnsupported(ReproError):
    """This run cannot use the vector backend; fall back to stepped.

    Raised only during eligibility checks and plan building — never
    after simulation state has been touched — so the caller can retry
    the whole run on the stepped path.
    """


def vector_unsupported_reason(
    config: GPUConfig, guard=None
) -> Optional[str]:
    """Static (pre-trace) eligibility: why vector can't run, or None.

    The dynamic checks (stack-model opt-in, node/pollution address
    overlap) happen at plan build, where the traces are known.
    """
    if guard is not None:
        return "guarded runs use the stepped oracle"
    if config.inter_warp_realloc:
        return "inter-warp reallocation couples warp slots"
    if config.spill_cache_policy == "l1":
        return "L1-cached spills dirty the L1 mirror"
    capacity = config.l1d_bytes // config.line_bytes
    if config.shader_pollution_lines > capacity:
        return "pollution burst exceeds L1 capacity"
    if MemoryHierarchy.POLLUTION_SPAN <= capacity * config.line_bytes:
        return "pollution stream is not guaranteed-miss"
    return None


class RawPlan:
    """Pricing-independent replay of one warp (see module docstring)."""

    __slots__ = (
        "n_iters", "lines", "n_lines", "box_max", "tri_max",
        "simple_iters", "simple_extra", "deg_flat", "deg_iter",
        "complex_raw", "totals_raw", "conflict_extra", "warp_bytes",
        "mismatch", "_bind_cache",
    )

    def __init__(self) -> None:
        self.n_iters = 0
        self.lines: List[tuple] = []
        self.n_lines = np.zeros(0, dtype=np.int64)
        self.box_max = np.zeros(0, dtype=np.int64)
        self.tri_max = np.zeros(0, dtype=np.int64)
        self.simple_iters = np.zeros(0, dtype=np.int64)
        self.simple_extra = np.zeros(0, dtype=np.int64)
        self.deg_flat = np.zeros(0, dtype=np.int64)
        self.deg_iter = np.zeros(0, dtype=np.int64)
        self.complex_raw: Dict[int, tuple] = {}
        self.totals_raw: Dict[str, int] = {}
        self.conflict_extra = 0
        self.warp_bytes = 0
        self.mismatch: Optional[tuple] = None
        self._bind_cache: Dict[tuple, "BoundPlan"] = {}

    def bound(self, config: GPUConfig) -> "BoundPlan":
        """Price this plan under ``config`` (memoized per pricing key)."""
        key = (
            config.l1_port_cycles, config.box_test_cycles,
            config.tri_test_cycles, config.shared_latency,
            config.bank_conflict_penalty, config.shared_port_cycles,
            config.l2_bytes, config.l2_assoc,
        )
        plan = self._bind_cache.get(key)
        if plan is None:
            plan = BoundPlan(self, config)
            self._bind_cache[key] = plan
        return plan


class BoundPlan:
    """A :class:`RawPlan` priced under one set of cost parameters.

    Everything the runtime loop consumes is a plain Python list (numpy
    scalar extraction is slower than list indexing at this grain); the
    numpy work happens once here, batched over all iterations.
    """

    __slots__ = (
        "n_iters", "lines", "fetch_port", "intersect", "sdelta",
        "sport", "cplx", "totals", "warp_bytes", "mismatch", "iters",
    )

    def __init__(self, raw: RawPlan, config: GPUConfig) -> None:
        length = raw.n_iters
        self.n_iters = length
        self.lines = raw.lines
        self.warp_bytes = raw.warp_bytes
        self.mismatch = raw.mismatch
        self.fetch_port = (raw.n_lines * config.l1_port_cycles).tolist()
        self.intersect = (
            raw.box_max * config.box_test_cycles
            + raw.tri_max * config.tri_test_cycles
        ).tolist()
        latency = config.shared_latency
        penalty = config.bank_conflict_penalty
        shared_port = config.shared_port_cycles
        sdelta = np.zeros(length, dtype=np.int64)
        sport = np.zeros(length, dtype=np.int64)
        if raw.deg_flat.size:
            replays = (raw.deg_flat - 1) * penalty
            np.add.at(sdelta, raw.deg_iter, latency + replays)
            np.add.at(sport, raw.deg_iter, replays + shared_port)
        if raw.simple_iters.size:
            sdelta[raw.simple_iters] += raw.simple_extra
            sport[raw.simple_iters] += raw.simple_extra
        self.sdelta = sdelta.tolist()
        self.sport = sport.tolist()
        self.cplx: List[Optional[tuple]] = [None] * length
        for k, (positions, extra) in sorted(raw.complex_raw.items()):
            bound = []
            for degree, gops in positions:
                if degree:
                    cost = latency + (degree - 1) * penalty
                    inc = (degree - 1) * penalty + shared_port
                else:
                    cost = 0
                    inc = 0
                bound.append((cost, inc, gops))
            self.cplx[k] = (tuple(bound), extra)
        totals = dict(raw.totals_raw)
        totals["bank_conflict_delay_cycles"] = raw.conflict_extra * penalty
        self.totals = totals
        # Packed per-iteration records for the runtime hot loop: one
        # index + one unpack per iteration, with each node line carrying
        # its L2 set index precomputed (set geometry is part of the bind
        # key above).
        line_bytes = config.line_bytes
        num_sets = (config.l2_bytes // line_bytes) // config.l2_assoc
        self.iters = [
            (
                tuple(
                    (line, (line // line_bytes) % num_sets)
                    for line in raw.lines[k]
                ),
                self.fetch_port[k], self.intersect[k],
                self.sdelta[k], self.sport[k], self.cplx[k],
            )
            for k in range(length)
        ]


def warp_plan(
    warp: Warp, config: GPUConfig, strategy, sample: bool = False
) -> RawPlan:
    """The (cached) raw plan for ``warp`` under ``config``/``strategy``."""
    host = next(
        (t for t in warp.traces if t is not None and t.steps), None
    )
    if host is None:
        return _build_raw(warp, config, strategy, sample)
    key = (
        "plan",
        config.rb_stack_entries, config.sh_stack_entries,
        config.skewed_bank_access, config.intra_warp_realloc,
        config.max_borrows, config.max_flushes,
        config.warp_size, config.line_bytes,
        strategy.name,
        tuple(t.ray_id for t in warp.traces if t is not None),
    )
    cache = trace_cache(host)
    raw = cache.get(key)
    if raw is None:
        raw = _build_raw(warp, config, strategy, sample)
        cache[key] = raw
    return raw


def _build_raw(
    warp: Warp, config: GPUConfig, strategy, sample: bool
) -> RawPlan:
    """Replay ``warp`` against the canonical slot-0 stack model."""
    state = batch_warp_state(warp.traces)
    plan = RawPlan()
    if not state.lanes:
        return plan
    if state.max_end > MemoryHierarchy.POLLUTION_BASE:
        raise VectorUnsupported(
            "node data overlaps the shader-pollution address window"
        )
    model = strategy.make_unit_stacks(config, sm_id=0)[0]
    if not getattr(model, "vector_replayable", False):
        raise VectorUnsupported(
            f"stack model {type(model).__name__} has not opted into "
            f"canonical replay"
        )
    line_bytes = config.line_bytes
    warp_bytes = SPILL_SLOTS_PER_LANE * config.warp_size * ENTRY_BYTES
    if warp_bytes % line_bytes:
        raise VectorUnsupported(
            "spill stride is not line-aligned; per-slot rebasing invalid"
        )
    model.reset()
    sampler = None
    if sample:
        from repro.guard.vector import VectorPlanSampler

        sampler = VectorPlanSampler(warp.warp_id, config)

    lanes = state.lanes
    lens = state.lens.tolist()
    traces = warp.traces
    n_iters = state.n_iters
    intern: Dict[int, int] = {}
    lines_out: List[tuple] = []
    n_lines = np.zeros(n_iters, dtype=np.int64)
    simple_iters: List[int] = []
    simple_extra: List[int] = []
    deg_flat: List[int] = []
    deg_iter: List[int] = []
    complex_raw: Dict[int, tuple] = {}
    mismatch = None
    shared_loads = shared_stores = 0
    global_loads = global_stores = 0
    shared_transactions = 0
    conflict_extra = 0
    node_fetch_lines = 0
    SHARED = MemSpace.SHARED
    LOAD = OpKind.LOAD

    for k in range(n_iters):
        lines: Dict[int, None] = {}
        chains: List[Tuple[Optional[list], int]] = []
        for row, lane in enumerate(lanes):
            if lens[row] <= k:
                continue
            trace = traces[lane]
            step = trace.steps[k]
            address = step.address
            size = step.size_bytes
            first = address - address % line_bytes
            last = (
                (address + (size if size > 0 else 1) - 1)
                // line_bytes * line_bytes
            )
            line = first
            while line <= last:
                cached = intern.get(line)
                if cached is None:
                    intern[line] = line
                    cached = line
                lines[cached] = None
                line += line_bytes
            ops: Optional[list] = None
            extra_cycles = 0
            for push_address in step.pushes:
                activity = model.push(lane, push_address)
                if activity.ops:
                    if ops is None:
                        ops = list(activity.ops)
                    else:
                        ops.extend(activity.ops)
                extra_cycles += activity.extra_cycles
            if step.popped:
                value, activity = model.pop(lane)
                if activity.ops:
                    if ops is None:
                        ops = list(activity.ops)
                    else:
                        ops.extend(activity.ops)
                extra_cycles += activity.extra_cycles
                if mismatch is None:
                    if k + 1 >= lens[row]:
                        mismatch = ("final", trace.ray_id, lane, 0, 0)
                    elif value != trace.steps[k + 1].address:
                        mismatch = (
                            "order", trace.ray_id, lane, value,
                            trace.steps[k + 1].address,
                        )
            if ops is not None or extra_cycles:
                chains.append((ops if ops is not None else [], extra_cycles))
        line_tuple = tuple(lines)
        lines_out.append(line_tuple)
        n_lines[k] = len(line_tuple)
        node_fetch_lines += len(line_tuple)

        if chains:
            max_len = 0
            for ops, _ in chains:
                if len(ops) > max_len:
                    max_len = len(ops)
            extra = 0
            for _, extra_cycles in chains:
                if extra_cycles > extra:
                    extra = extra_cycles
            positions = []
            has_global = False
            for position in range(max_len):
                shared_ops = []
                gops: List[tuple] = []
                for ops, _ in chains:
                    if position < len(ops):
                        op = ops[position]
                        if op.space is SHARED:
                            shared_ops.append(op)
                            if op.kind is LOAD:
                                shared_loads += 1
                            else:
                                shared_stores += 1
                        else:
                            if op.kind is LOAD:
                                global_loads += 1
                            else:
                                global_stores += 1
                            op_first = op.address - op.address % line_bytes
                            op_last = (
                                (op.address + op.size_bytes - 1)
                                // line_bytes * line_bytes
                            )
                            if op_first != op_last:
                                raise VectorUnsupported(
                                    "spill op spans cache lines"
                                )
                            gops.append((op.kind is not LOAD, op_first))
                degree = 0
                if shared_ops:
                    degree = _conflict_degree(shared_ops)
                    shared_transactions += 1
                    conflict_extra += degree - 1
                if gops:
                    has_global = True
                positions.append((degree, tuple(gops)))
            if has_global:
                complex_raw[k] = (tuple(positions), extra)
            else:
                simple_iters.append(k)
                simple_extra.append(extra)
                for degree, _ in positions:
                    deg_flat.append(degree)
                    deg_iter.append(k)

        if sampler is not None and k % sampler.stride == 0:
            sampler.check_iteration(model, state, k)
        for row, lane in enumerate(lanes):
            if lens[row] == k + 1:
                model.finish(lane)

    instructions = int(state.instructions.sum())
    totals = {
        "instructions": instructions,
        "warp_steps": n_iters,
        "node_fetch_lines": node_fetch_lines,
        "stack_shared_loads": shared_loads,
        "stack_shared_stores": shared_stores,
        "stack_global_loads": global_loads,
        "stack_global_stores": global_stores,
        "shared_transactions": shared_transactions,
        "borrows": 0,
        "flushes": 0,
        "forced_flushes": 0,
    }
    harvest = getattr(model, "unwrapped", model)
    if isinstance(harvest, SmsStack):
        totals["borrows"] = harvest.borrow_count
        totals["flushes"] = harvest.flush_count
        totals["forced_flushes"] = harvest.forced_flush_count
    if sampler is not None:
        sampler.check_totals(totals, state)

    plan.n_iters = n_iters
    plan.lines = lines_out
    plan.n_lines = n_lines
    plan.box_max = state.box_max
    plan.tri_max = state.tri_max
    plan.simple_iters = np.asarray(simple_iters, dtype=np.int64)
    plan.simple_extra = np.asarray(simple_extra, dtype=np.int64)
    plan.deg_flat = np.asarray(deg_flat, dtype=np.int64)
    plan.deg_iter = np.asarray(deg_iter, dtype=np.int64)
    plan.complex_raw = complex_raw
    plan.totals_raw = totals
    plan.conflict_extra = conflict_extra
    plan.warp_bytes = warp_bytes
    plan.mismatch = mismatch
    return plan


def _conflict_degree(shared_ops) -> int:
    """Max per-bank distinct-word count — mirrors ``SharedMemorySim``."""
    banks: Dict[int, dict] = {}
    for op in shared_ops:
        for word in words_of_access(op.address, op.size_bytes):
            banks.setdefault(bank_of_word(word), {})[word] = None
    if not banks:
        return 1
    return max(1, max(len(words) for words in banks.values()))


def raise_pop_mismatch(
    mismatch: tuple, sm_id: int, warp_id: int
) -> None:
    """Re-raise a recorded pop-verification failure the stepped way."""
    kind, ray_id, lane, value, expected = mismatch
    if kind == "final":
        raise SimulationError(
            f"ray {ray_id} popped at its final step",
            sm_id=sm_id, warp_id=warp_id, lane=lane, component="stack",
        )
    raise SimulationError(
        f"ray {ray_id}: popped {value:#x}, expected {expected:#x} "
        f"— stack model corrupted LIFO order",
        sm_id=sm_id, warp_id=warp_id, lane=lane, component="stack",
    )
