"""Structure-of-arrays mirrors of trace and warp lane state.

The stepped RT unit walks ``RayTrace.steps`` object by object.  The
vector backend instead works from :class:`TraceSoA` — one contiguous
numpy array per ``Step`` field — and from :class:`WarpStateSoA`, which
stacks a warp's lanes into (lane, iteration) matrices so per-iteration
aggregates (activity masks, slab-test maxima, instruction counts, stack
depth) come out of whole-warp numpy reductions instead of per-lane
Python loops.

Both mirrors are pure derived data: :func:`pack_trace` /
:func:`unpack_trace` round-trip losslessly (property-tested in
``tests/gpu/test_vector_soa.py``), and the SoA is cached on the trace's
``_vector_cache`` slot so repeated runs over the same workload pack
once.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.trace.events import NodeKind, RayTrace, Step

__all__ = [
    "TraceSoA",
    "WarpStateSoA",
    "pack_trace",
    "unpack_trace",
    "batch_warp_state",
    "trace_cache",
]


def trace_cache(trace: RayTrace) -> dict:
    """The trace's vector-artifact cache dict, created on first use."""
    try:
        return trace._vector_cache
    except AttributeError:
        cache: dict = {}
        trace._vector_cache = cache
        return cache


class TraceSoA:
    """One ray's event stream as parallel numpy columns.

    ``pushes`` is flattened CSR-style: step ``k``'s pushed addresses are
    ``pushes[push_off[k]:push_off[k + 1]]``.
    """

    __slots__ = (
        "n_steps", "address", "size_bytes", "tests", "is_internal",
        "popped", "push_off", "pushes", "max_end",
    )

    def __init__(
        self,
        n_steps: int,
        address: np.ndarray,
        size_bytes: np.ndarray,
        tests: np.ndarray,
        is_internal: np.ndarray,
        popped: np.ndarray,
        push_off: np.ndarray,
        pushes: np.ndarray,
        max_end: int,
    ) -> None:
        self.n_steps = n_steps
        self.address = address
        self.size_bytes = size_bytes
        self.tests = tests
        self.is_internal = is_internal
        self.popped = popped
        self.push_off = push_off
        self.pushes = pushes
        self.max_end = max_end


def pack_trace(trace: RayTrace) -> TraceSoA:
    """Build (or fetch the cached) SoA mirror of one trace."""
    cache = trace_cache(trace)
    soa = cache.get("soa")
    if soa is not None:
        return soa
    steps = trace.steps
    n = len(steps)
    address = np.fromiter(
        (s.address for s in steps), dtype=np.int64, count=n
    )
    size_bytes = np.fromiter(
        (s.size_bytes for s in steps), dtype=np.int64, count=n
    )
    tests = np.fromiter((s.tests for s in steps), dtype=np.int64, count=n)
    is_internal = np.fromiter(
        (s.kind is NodeKind.INTERNAL for s in steps), dtype=bool, count=n
    )
    popped = np.fromiter((s.popped for s in steps), dtype=bool, count=n)
    push_off = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(
        np.fromiter((len(s.pushes) for s in steps), dtype=np.int64, count=n),
        out=push_off[1:],
    )
    pushes = np.fromiter(
        (a for s in steps for a in s.pushes),
        dtype=np.int64,
        count=int(push_off[-1]),
    )
    max_end = int((address + size_bytes).max()) if n else 0
    soa = TraceSoA(
        n_steps=n,
        address=address,
        size_bytes=size_bytes,
        tests=tests,
        is_internal=is_internal,
        popped=popped,
        push_off=push_off,
        pushes=pushes,
        max_end=max_end,
    )
    cache["soa"] = soa
    return soa


def unpack_trace(
    soa: TraceSoA,
    ray_id: int = 0,
    pixel: int = 0,
    kind=None,
    hit_prim: int = -1,
    hit_t: float = float("inf"),
) -> RayTrace:
    """Reconstruct a :class:`RayTrace` from its SoA mirror.

    Inverse of :func:`pack_trace` over the step stream; the scalar ray
    metadata (id/pixel/kind/hit) is not part of the mirror and is passed
    through.
    """
    from repro.trace.events import RayKind

    if kind is None:
        kind = RayKind.PRIMARY
    address = soa.address.tolist()
    size_bytes = soa.size_bytes.tolist()
    tests = soa.tests.tolist()
    is_internal = soa.is_internal.tolist()
    popped = soa.popped.tolist()
    push_off = soa.push_off.tolist()
    pushes = soa.pushes.tolist()
    # Python slices clamp: a truncated or misaligned push_off would not
    # raise below, it would silently reconstruct short push lists —
    # dropped pushes, wrong stack depths, counters that stop conserving.
    # Fail loud at the boundary instead.
    if len(push_off) != soa.n_steps + 1:
        raise SimulationError(
            f"TraceSoA push_off has {len(push_off)} entries for "
            f"{soa.n_steps} steps (expected n_steps + 1)"
        )
    if soa.n_steps and push_off[-1] != len(pushes):
        raise SimulationError(
            f"TraceSoA push_off terminates at {push_off[-1]} but the "
            f"pushes payload holds {len(pushes)} entries"
        )
    steps = [
        Step(
            address=address[k],
            size_bytes=size_bytes[k],
            kind=NodeKind.INTERNAL if is_internal[k] else NodeKind.LEAF,
            tests=tests[k],
            pushes=pushes[push_off[k]:push_off[k + 1]],
            popped=popped[k],
        )
        for k in range(soa.n_steps)
    ]
    return RayTrace(
        ray_id=ray_id, pixel=pixel, kind=kind, steps=steps,
        hit_prim=hit_prim, hit_t=hit_t,
    )


class WarpStateSoA:
    """A warp's lane state stacked into (lane, iteration) matrices.

    Rows are the warp's populated lanes (``lanes[i]`` maps row ``i``
    back to its lane index); columns are traversal iterations.  The
    ``active`` mask reproduces the stepped scheduler's structural rule —
    lane ``i`` is active at iteration ``k`` iff ``k < lens[i]`` — and
    every per-iteration aggregate is a masked whole-warp reduction.
    ``depth`` is the lane's stack depth *after* iteration ``k`` (pushes
    minus pops, cumulative), which is what the vector-path invariant
    sampler cross-checks against the real stack models.
    """

    __slots__ = (
        "lanes", "lens", "n_iters", "active", "box_max", "tri_max",
        "instructions", "depth", "pending_ops", "max_end",
    )

    def __init__(
        self,
        lanes: List[int],
        lens: np.ndarray,
        active: np.ndarray,
        box_max: np.ndarray,
        tri_max: np.ndarray,
        instructions: np.ndarray,
        depth: np.ndarray,
        pending_ops: np.ndarray,
        max_end: int,
    ) -> None:
        self.lanes = lanes
        self.lens = lens
        self.n_iters = int(lens.max()) if len(lanes) else 0
        self.active = active
        self.box_max = box_max
        self.tri_max = tri_max
        self.instructions = instructions
        self.depth = depth
        self.pending_ops = pending_ops
        self.max_end = max_end


def batch_warp_state(
    traces: Sequence[Optional[RayTrace]],
) -> WarpStateSoA:
    """Pack a warp's lanes into one :class:`WarpStateSoA`.

    ``traces`` is the warp's full lane list (``None`` padding included);
    empty traces are never active and are excluded like the stepped
    ``Warp.active_lanes`` excludes them.
    """
    lanes = [
        i for i, t in enumerate(traces) if t is not None and t.steps
    ]
    soas = [pack_trace(traces[i]) for i in lanes]
    n = len(lanes)
    if n == 0:
        empty_i = np.zeros((0, 0), dtype=np.int64)
        return WarpStateSoA(
            lanes=[], lens=np.zeros(0, dtype=np.int64),
            active=np.zeros((0, 0), dtype=bool),
            box_max=np.zeros(0, dtype=np.int64),
            tri_max=np.zeros(0, dtype=np.int64),
            instructions=np.zeros(0, dtype=np.int64),
            depth=empty_i, pending_ops=empty_i, max_end=0,
        )
    lens = np.fromiter((s.n_steps for s in soas), dtype=np.int64, count=n)
    length = int(lens.max())
    tests = np.zeros((n, length), dtype=np.int64)
    is_internal = np.zeros((n, length), dtype=bool)
    popped = np.zeros((n, length), dtype=bool)
    push_counts = np.zeros((n, length), dtype=np.int64)
    for i, soa in enumerate(soas):
        m = soa.n_steps
        tests[i, :m] = soa.tests
        is_internal[i, :m] = soa.is_internal
        popped[i, :m] = soa.popped
        push_counts[i, :m] = np.diff(soa.push_off)
    active = np.arange(length, dtype=np.int64)[None, :] < lens[:, None]
    box_max = np.where(active & is_internal, tests, 0).max(axis=0)
    tri_max = np.where(active & ~is_internal, tests, 0).max(axis=0)
    instructions = ((1 + tests) * active).sum(axis=0)
    net = np.where(active, push_counts - popped.astype(np.int64), 0)
    depth = np.cumsum(net, axis=1)
    pending_ops = np.where(active, push_counts + popped.astype(np.int64), 0)
    max_end = max(s.max_end for s in soas)
    return WarpStateSoA(
        lanes=lanes, lens=lens, active=active, box_max=box_max,
        tri_max=tri_max, instructions=instructions, depth=depth,
        pending_ops=pending_ops, max_end=max_end,
    )
