"""Banked shared memory with conflict serialization (paper section V-A).

Shared memory has 32 banks of 4-byte words.  A warp-wide access completes
in one transaction when every lane touches a different bank (or the same
word); lanes hitting *different words in the same bank* serialize.  The
cost of a warp access is therefore

    latency + (degree - 1) * conflict_penalty

where ``degree`` is the worst per-bank count of distinct words.  The
accumulated ``(degree - 1) * penalty`` term is the "delay cycles due to
bank conflicts" the paper plots in Fig. 14.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Set, Tuple

from repro.gpu.config import GPUConfig
from repro.gpu.counters import Counters
from repro.stack.layout import BANK_COUNT, bank_of_word, words_of_access
from repro.stack.ops import MemoryOp


class SharedMemorySim:
    """Prices warp-level shared-memory transactions."""

    def __init__(self, config: GPUConfig) -> None:
        self.config = config

    def conflict_degree(self, ops: Iterable[MemoryOp]) -> int:
        """Worst-case serialization degree of one warp-wide access."""
        words_per_bank: Dict[int, Set[int]] = defaultdict(set)
        any_op = False
        for op in ops:
            any_op = True
            for word in words_of_access(op.address, op.size_bytes):
                words_per_bank[bank_of_word(word)].add(word)
        if not any_op:
            return 0
        return max(len(words) for words in words_per_bank.values())

    def transaction_cycles(
        self, ops: Iterable[MemoryOp], counters: Counters
    ) -> int:
        """Cycles for one warp-wide shared access; updates counters."""
        ops = list(ops)
        if not ops:
            return 0
        degree = self.conflict_degree(ops)
        delay = (degree - 1) * self.config.bank_conflict_penalty
        counters.bank_conflict_delay_cycles += delay
        counters.shared_transactions += 1
        return self.config.shared_latency + delay

    def bank_histogram(self, ops: Iterable[MemoryOp]) -> Tuple[int, ...]:
        """Distinct-word count per bank (diagnostics / Fig. 9 analysis)."""
        words_per_bank: Dict[int, Set[int]] = defaultdict(set)
        for op in ops:
            for word in words_of_access(op.address, op.size_bytes):
                words_per_bank[bank_of_word(word)].add(word)
        return tuple(len(words_per_bank.get(b, ())) for b in range(BANK_COUNT))
