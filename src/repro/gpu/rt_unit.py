"""The RT unit: warp buffer, stack manager, memory scheduler, op units.

Executes warps transactionally: one *traversal iteration* per scheduled
warp performs (1) node fetch for every active lane through the L1/L2/DRAM
hierarchy, (2) intersection tests in the box/triangle units, (3) the stack
update, replaying each lane's pushes/pops through the configured stack
model and pricing the resulting shared/global request chains position by
position (chains are sequential per lane, parallel across lanes — paper
section VI-A).

Scheduling is greedy-then-oldest across up to ``max_warps_per_rt_unit``
resident warps: the unit's issue stages serialize (``pipeline_free``),
while memory waits overlap across warps — which is exactly the latency
hiding that makes *bandwidth*, not raw latency, the cost of spill traffic.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.gpu.config import GPUConfig
from repro.gpu.counters import Counters
from repro.gpu.hierarchy import MemoryHierarchy
from repro.gpu.sharedmem import SharedMemorySim
from repro.gpu.warp import Warp
from repro.guard.chaos import ChaosController
from repro.guard.config import GuardConfig
from repro.guard.invariants import InvariantChecker
from repro.guard.watchdog import ProgressWatchdog
from repro.stack.base import StackModel
from repro.stack.ops import MemSpace, OpKind, StackActivity
from repro.stack.sms import SmsStack
from repro.trace.events import NodeKind


class RTUnit:
    """One SM's ray-tracing acceleration unit."""

    def __init__(
        self,
        config: GPUConfig,
        hierarchy: MemoryHierarchy,
        counters: Counters,
        sm_id: int = 0,
        verify_pops: bool = True,
        guard: Optional[GuardConfig] = None,
        fast_forward: bool = True,
        strategy=None,
    ) -> None:
        from repro.traversal.registry import resolve_strategy

        self.config = config
        self.hierarchy = hierarchy
        self.counters = counters
        self.sm_id = sm_id
        self.verify_pops = verify_pops
        self.guard = guard
        self.fast_forward = fast_forward
        #: The traversal strategy owns lane-state construction (which
        #: stack model each warp slot replays against, or none at all).
        self.strategy = resolve_strategy(strategy)
        self.sharedmem = SharedMemorySim(config)
        self._stacks: List[StackModel] = self.strategy.make_unit_stacks(
            config, sm_id=sm_id
        )
        if len(self._stacks) != config.max_warps_per_rt_unit:
            raise SimulationError(
                f"strategy {self.strategy.name!r} built "
                f"{len(self._stacks)} lane-state models for "
                f"{config.max_warps_per_rt_unit} warp slots",
                sm_id=sm_id, component="strategy",
            )
        # Integrity layer (opt-in): chaos wraps innermost so injected
        # faults look like real bugs to the checker wrapped around it.
        self._chaos: Optional[ChaosController] = None
        self._checker: Optional[InvariantChecker] = None
        self._watchdog: Optional[ProgressWatchdog] = None
        if guard is not None:
            if guard.chaos is not None:
                self._chaos = ChaosController(guard.chaos)
                self._stacks = [
                    self._chaos.wrap_stack(stack, slot)
                    for slot, stack in enumerate(self._stacks)
                ]
            if guard.invariants:
                self._checker = InvariantChecker(
                    counters, sm_id=sm_id, deep_check=guard.deep_check
                )
                self._stacks = [
                    self._checker.wrap(stack, slot)
                    for slot, stack in enumerate(self._stacks)
                ]
            if guard.watchdog:
                self._watchdog = ProgressWatchdog(
                    sm_id=sm_id,
                    max_cycles=guard.max_cycles,
                    stall_window=guard.stall_window,
                    history=guard.history,
                )

    # ------------------------------------------------------------------
    # top-level run loop
    # ------------------------------------------------------------------

    def run(self, warps: Sequence[Warp]) -> int:
        """Execute all warps; returns the completion cycle."""
        pending: Deque[Warp] = deque(warps)
        resident: List[Tuple[Warp, int]] = []  # (warp, slot)
        free_slots = list(range(self.config.max_warps_per_rt_unit))
        completion = 0
        pipeline_free = 0
        greedy_warp_id: Optional[int] = None

        def admit(now: int) -> None:
            while pending and free_slots:
                slot = free_slots.pop(0)
                warp = pending.popleft()
                self._stacks[slot].reset()
                warp.ready_time = now
                resident.append((warp, slot))

        admit(0)
        while resident:
            if (
                self.fast_forward
                and len(resident) == 1
                and not pending
                and self._checker is None
                and self._watchdog is None
            ):
                # Event-driven fast-forward: with one resident warp and an
                # empty admission queue the scheduler is a foregone
                # conclusion (GTO always re-picks the sole warp), so drain
                # it without per-iteration arbitration.  Each iteration
                # still jumps time exactly as the stepped loop does —
                # start = max(ready, pipeline_free) is the next wake-up
                # across the warp buffer, L1D/L2 ports and DRAM queue —
                # so counters and completion times are bit-identical.
                warp, slot = resident[0]
                stack = self._stacks[slot]
                while not warp.done:
                    start = max(warp.ready_time, pipeline_free)
                    end, issue_cycles = self._execute_iteration(
                        warp, stack, start
                    )
                    pipeline_free = start + issue_cycles
                    warp.ready_time = end
                    if end > completion:
                        completion = end
                resident.clear()
                free_slots.append(slot)
                continue
            warp, slot = self._pick_warp(resident, greedy_warp_id)
            greedy_warp_id = warp.warp_id
            start = max(warp.ready_time, pipeline_free)
            if self._checker is not None:
                self._checker.begin_iteration(cycle=start, warp_id=warp.warp_id)
            end, issue_cycles = self._execute_iteration(warp, self._stacks[slot], start)
            pipeline_free = start + issue_cycles
            warp.ready_time = end
            completion = max(completion, end)
            if self._checker is not None:
                self._checker.verify(cycle=end, warp_id=warp.warp_id, slot=slot)
            if self._watchdog is not None:
                self._watchdog.observe(
                    warp, slot, start, end, stack=self._stacks[slot]
                )
            if warp.done:
                resident.remove((warp, slot))
                free_slots.append(slot)
                admit(end)
        return completion

    def _pick_warp(
        self, resident: List[Tuple[Warp, int]], greedy_warp_id: Optional[int]
    ) -> Tuple[Warp, int]:
        """GTO: stick with the greedy warp when it is as ready as any."""
        best = min(resident, key=lambda pair: pair[0].ready_time)
        min_ready = best[0].ready_time
        if greedy_warp_id is not None:
            for warp, slot in resident:
                if warp.warp_id == greedy_warp_id and warp.ready_time <= min_ready:
                    return warp, slot
        # Oldest (lowest id) among the most-ready.
        candidates = [p for p in resident if p[0].ready_time == min_ready]
        return min(candidates, key=lambda pair: pair[0].warp_id)

    # ------------------------------------------------------------------
    # one traversal iteration of one warp
    # ------------------------------------------------------------------

    def _execute_iteration(
        self, warp: Warp, stack: StackModel, start: int
    ) -> Tuple[int, int]:
        """Run one lockstep step; returns (end_time, pipeline_issue_cycles)."""
        config = self.config
        counters = self.counters
        active = warp.active_lanes()
        if not active:
            raise SimulationError(
                "scheduled a warp with no active lanes",
                sm_id=self.sm_id, warp_id=warp.warp_id,
                component="scheduler",
            )
        # Chaos harness hooks: unit-level faults fire here so the guard
        # layer sees them exactly where a real bug would surface.
        stuck = False
        if self._chaos is not None:
            self._chaos.tick(counters)
            stuck = self._chaos.stuck(warp)

        # Phase 1: node fetch.  The memory scheduler coalesces the active
        # lanes' node reads into unique cache lines, issuing one per cycle.
        traces = warp.traces
        cursors = warp.cursors
        steps = [traces[lane].steps[cursors[lane]] for lane in active]
        lines: Dict[int, None] = {}
        max_box_tests = 0
        max_tri_tests = 0
        lines_memo = self.hierarchy._lines_memo
        lines_of = self.hierarchy.lines_of
        for step in steps:
            step_lines = lines_memo.get((step.address, step.size_bytes))
            if step_lines is None:
                step_lines = lines_of(step.address, step.size_bytes)
            for line in step_lines:
                lines[line] = None
            if step.kind is NodeKind.INTERNAL:
                if step.tests > max_box_tests:
                    max_box_tests = step.tests
            elif step.tests > max_tri_tests:
                max_tri_tests = step.tests
        fetch_done = self.hierarchy.fetch_lines(lines, start, counters)
        counters.node_fetch_lines += len(lines)
        fetch_port_cycles = len(lines) * config.l1_port_cycles
        # Concurrent shading/texture traffic from the SM's sub-cores
        # streams through the shared L1D (see GPUConfig.shader_pollution_lines).
        self.hierarchy.pollute(config.shader_pollution_lines, start, counters)

        # Phase 2: intersection tests in the RT unit's operation units.
        intersect_cycles = (
            max_box_tests * config.box_test_cycles
            + max_tri_tests * config.tri_test_cycles
        )
        t = fetch_done + intersect_cycles

        # Phase 3: stack update.  Replay pushes/pops, then price the chains.
        #
        # The stack manager is its own unit (paper Fig. 11): its request
        # chains run concurrently with the warp's next node fetch.  The
        # popped next-node address is always already in the RB stack, so
        # the warp only stalls on the manager when the *next* iteration's
        # stack phase arrives before the previous chain finished
        # (warp.stack_free), which is exactly what happens when every
        # iteration overflows.
        chains: List[StackActivity] = []
        instructions = 0
        verify_pops = self.verify_pops
        for lane, step in zip(active, steps):
            # Accumulate each lane's chain into one op list instead of
            # merge()-ing a fresh StackActivity per push/pop; the merged
            # chain is identical (ops concatenate in issue order, extra
            # cycles sum).
            ops: Optional[list] = None
            extra_cycles = 0
            if not stuck:
                for address in step.pushes:
                    push_activity = stack.push(lane, address)
                    if push_activity.ops:
                        if ops is None:
                            ops = list(push_activity.ops)
                        else:
                            ops.extend(push_activity.ops)
                    extra_cycles += push_activity.extra_cycles
                if step.popped:
                    value, pop_activity = stack.pop(lane)
                    if pop_activity.ops:
                        if ops is None:
                            ops = list(pop_activity.ops)
                        else:
                            ops.extend(pop_activity.ops)
                    extra_cycles += pop_activity.extra_cycles
                    if verify_pops:
                        self._verify_pop(warp, lane, value)
            if ops is not None or extra_cycles:
                chains.append(StackActivity(ops=ops, extra_cycles=extra_cycles))
            instructions += 1 + step.tests
        counters.instructions += instructions
        stack_start = max(t, warp.stack_free)
        if chains:
            # Lanes whose stack phase generated no traffic are omitted from
            # ``chains`` — an all-empty chain contributes nothing at any
            # position and zero extra cycles, so pricing only the active
            # ones (or skipping pricing entirely) is exact.
            stack_end, stack_port_cycles = self._price_stack_chains(
                chains, stack_start
            )
        else:
            stack_end, stack_port_cycles = stack_start, 0
        warp.stack_free = stack_end
        # The warp itself is ready once compute and the stack-issue slots
        # clear; the chain's memory latency overlaps the next iteration.
        t = max(t, stack_start + stack_port_cycles)

        # Advance cursors; lanes that drain their traces retire and (under
        # SMS reallocation) free their SH stacks for borrowing.  A warp
        # stuck by the chaos harness keeps its cursors frozen — the
        # watchdog's job is to notice.
        if not stuck:
            surviving: List[int] = []
            for lane in active:
                cursor = cursors[lane] + 1
                cursors[lane] = cursor
                if cursor >= len(traces[lane].steps):
                    stack.finish(lane)
                else:
                    surviving.append(lane)
            warp.retire_to(surviving)

        self._harvest_stack_stats(stack)
        counters.warp_steps += 1
        issue_cycles = fetch_port_cycles + intersect_cycles + stack_port_cycles
        return t, issue_cycles

    def _verify_pop(self, warp: Warp, lane: int, value: int) -> None:
        """A popped entry must be the node the ray visits next."""
        cursor = warp.cursors[lane]
        trace = warp.traces[lane]
        if cursor + 1 >= len(trace.steps):
            raise SimulationError(
                f"ray {trace.ray_id} popped at its final step",
                sm_id=self.sm_id, warp_id=warp.warp_id, lane=lane,
                component="stack",
            )
        expected = trace.steps[cursor + 1].address
        if value != expected:
            raise SimulationError(
                f"ray {trace.ray_id}: popped {value:#x}, expected {expected:#x} "
                f"— stack model corrupted LIFO order",
                sm_id=self.sm_id, warp_id=warp.warp_id, lane=lane,
                component="stack",
            )

    def _price_stack_chains(
        self, chains: List[StackActivity], t: int
    ) -> Tuple[int, int]:
        """Cost the per-lane op chains position by position.

        Per the paper, a lane's chain is strictly sequential; across lanes
        the memory scheduler runs position ``p`` of every chain together:
        shared ops become one banked transaction (serialized only by bank
        conflicts), while global ops target thread-specific spill addresses
        that never coalesce — each is a separate L1 transaction occupying
        the memory port.  Stores complete asynchronously (store buffer);
        loads block the chain.

        Returns ``(end_time, port_cycles)`` where ``port_cycles`` is the
        pipeline occupancy this stack phase adds (not hidden by other
        warps).
        """
        counters = self.counters
        config = self.config
        port_cycles = 0
        max_len = max((len(c.ops) for c in chains), default=0)
        for position in range(max_len):
            shared_ops = []
            global_ops = []
            for chain in chains:
                if position < len(chain.ops):
                    op = chain.ops[position]
                    if op.space is MemSpace.SHARED:
                        shared_ops.append(op)
                        if op.kind is OpKind.LOAD:
                            counters.stack_shared_loads += 1
                        else:
                            counters.stack_shared_stores += 1
                    else:
                        global_ops.append(op)
                        if op.kind is OpKind.LOAD:
                            counters.stack_global_loads += 1
                        else:
                            counters.stack_global_stores += 1
            shared_cost = 0
            if shared_ops:
                shared_cost = self.sharedmem.transaction_cycles(shared_ops, counters)
                # Port occupancy: one slot per conflict replay (the cost
                # above the base latency) plus the base transaction slot.
                port_cycles += (
                    shared_cost - config.shared_latency + config.shared_port_cycles
                )
            global_cost = 0
            port = config.l1_port_cycles
            policy = config.spill_cache_policy
            for i, op in enumerate(global_ops):
                is_store = op.kind is OpKind.STORE
                done = t
                for line in self.hierarchy.lines_of(op.address, op.size_bytes):
                    done = max(
                        done,
                        self.hierarchy.access_line(
                            line,
                            t + i * port,
                            is_store=is_store,
                            counters=counters,
                            policy=policy,
                        ),
                    )
                if is_store:
                    # Store buffer: port occupancy only, no completion wait.
                    global_cost = max(global_cost, (i + 1) * port)
                else:
                    global_cost = max(global_cost, done - t)
            port_cycles += len(global_ops) * port
            t += max(shared_cost, global_cost)
        extra = max((c.extra_cycles for c in chains), default=0)
        return t + extra, port_cycles + extra

    def _harvest_stack_stats(self, stack) -> None:
        """Fold reallocation statistics into the counter set."""
        stack = getattr(stack, "unwrapped", stack)  # guard/chaos wrappers
        if not isinstance(stack, SmsStack):
            stack = getattr(stack, "shared", None)  # SlotView -> shared model
        if isinstance(stack, SmsStack):
            counters = self.counters
            counters.borrows += stack.borrow_count
            counters.flushes += stack.flush_count
            counters.forced_flushes += stack.forced_flush_count
            stack.borrow_count = 0
            stack.flush_count = 0
            stack.forced_flush_count = 0
