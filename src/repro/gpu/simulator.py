"""Whole-GPU simulation: workload -> warps -> SMs -> counters.

Warps are distributed round-robin over the SMs.  Each SM owns a private
L1D and RT unit; all SMs share the L2 and DRAM objects.  SMs execute
sequentially against the shared lower hierarchy — a deliberate
simplification (documented in DESIGN.md): per-SM timelines are
independent, capacity sharing in L2/DRAM bandwidth pressure is retained,
fine-grained cross-SM interleaving is not.  Total cycles are the slowest
SM's completion time, matching how the paper reports whole-frame IPC.

Two timing backends execute the same schedule:

* ``"stepped"`` (default) — :class:`~repro.gpu.rt_unit.RTUnit`, the
  per-lane oracle every other path is validated against;
* ``"vector"`` — :class:`~repro.gpu.vector.unit.VectorRTUnit`,
  plan-driven SoA replay (see :mod:`repro.gpu.vector`), bit-identical
  by contract and much faster.  Runs outside the vector backend's
  validity envelope (guarded runs, inter-warp reallocation, L1-cached
  spills, oversized node address spaces) fall back to stepped for the
  whole run; :attr:`SimOutput.backend` records what actually executed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import ConfigError
from repro.gpu.config import GPUConfig
from repro.gpu.counters import Counters
from repro.gpu.cache import Cache
from repro.gpu.dram import Dram
from repro.gpu.hierarchy import MemoryHierarchy
from repro.gpu.rt_unit import RTUnit
from repro.gpu.warp import Warp, pack_warps
from repro.trace.events import RayTrace

#: Timing backends accepted by :class:`GPUSimulator`.
BACKENDS = ("stepped", "vector")


@dataclass
class SimOutput:
    """Result of one timing simulation."""

    config: GPUConfig
    counters: Counters
    per_sm_cycles: List[int] = field(default_factory=list)
    #: The timing backend that actually executed — ``"stepped"`` when a
    #: ``backend="vector"`` request fell back (see module docstring).
    backend: str = "stepped"

    @property
    def ipc(self) -> float:
        """Instructions per cycle for the whole run."""
        return self.counters.ipc

    @property
    def cycles(self) -> int:
        """Total cycles (slowest SM)."""
        return self.counters.cycles

    @property
    def offchip_accesses(self) -> int:
        """DRAM transactions."""
        return self.counters.offchip_accesses


class GPUSimulator:
    """Times a traced workload under a given configuration.

    ``guard`` (a :class:`~repro.guard.config.GuardConfig`) opts into the
    integrity layer: per-drain-step invariant checking and the
    forward-progress watchdog.  Guards observe without perturbing, so
    guarded counters are bit-identical to unguarded ones.

    ``backend`` selects the timing core (``"stepped"`` or ``"vector"``);
    both produce bit-identical counters and cycles, enforced by
    ``tests/gpu/test_vector_equiv.py``.
    """

    def __init__(
        self,
        config: Optional[GPUConfig] = None,
        verify_pops: bool = True,
        guard=None,
        fast_forward: bool = True,
        strategy=None,
        backend: str = "stepped",
    ) -> None:
        from repro.traversal.registry import resolve_strategy

        if backend not in BACKENDS:
            raise ConfigError(
                f"unknown timing backend {backend!r}; "
                f"expected one of {', '.join(BACKENDS)}"
            )
        #: The traversal strategy (name, instance, or None for the
        #: default stack strategy).  The strategy may adapt the
        #: configuration — e.g. stackless drops the SH carve-out, which
        #: returns that SRAM to the L1D.
        self.strategy = resolve_strategy(strategy)
        self.config = self.strategy.adapt_config(config or GPUConfig())
        self.verify_pops = verify_pops
        self.guard = guard
        #: When True (default), RT units may take the event-driven
        #: fast-forward drain path; False forces the fully stepped
        #: scheduler loop.  Outputs are bit-identical either way — the
        #: flag exists so the equivalence suite can prove it.
        self.fast_forward = fast_forward
        self.backend = backend

    def _resolve_backend(self, warps: Sequence[Warp]) -> str:
        """The backend this run will actually use.

        A ``"vector"`` request degrades to ``"stepped"`` when the run
        is outside the vector mirror's validity envelope — decided
        before any simulation state is touched, so the fallback is a
        clean whole-run switch, never a mid-run mix.
        """
        if self.backend != "vector":
            return "stepped"
        from repro.gpu.vector.plan import (
            VectorUnsupported,
            vector_unsupported_reason,
            warp_plan,
        )

        if vector_unsupported_reason(self.config, self.guard) is not None:
            return "stepped"
        try:
            for warp in warps:
                warp_plan(warp, self.config, self.strategy)
        except VectorUnsupported:
            return "stepped"
        return "vector"

    def run_traces(self, traces: Sequence[RayTrace]) -> SimOutput:
        """Simulate a flat list of ray traces (wave order preserved)."""
        config = self.config
        warps = pack_warps(traces, warp_size=config.warp_size)
        backend = self._resolve_backend(warps)
        if backend == "vector":
            from repro.gpu.vector.unit import VectorRTUnit

            unit_class = VectorRTUnit
            guard = None
        else:
            unit_class = RTUnit
            guard = self.guard
        counters = Counters()
        l2 = Cache(
            size_bytes=config.l2_bytes,
            line_bytes=config.line_bytes,
            assoc=config.l2_assoc,
            name="L2",
        )
        per_sm_cycles: List[int] = []
        # Round-robin warp distribution across SMs.
        for sm_id in range(config.num_sms):
            sm_warps = [w for i, w in enumerate(warps) if i % config.num_sms == sm_id]
            if not sm_warps:
                per_sm_cycles.append(0)
                continue
            dram = Dram(
                latency=config.dram_latency,
                service_cycles=config.dram_service_cycles * config.num_sms,
            )
            hierarchy = MemoryHierarchy(config, l2=l2, dram=dram)
            rt_unit = unit_class(
                config, hierarchy, counters, sm_id=sm_id,
                verify_pops=self.verify_pops, guard=guard,
                fast_forward=self.fast_forward, strategy=self.strategy,
            )
            cycles = rt_unit.run(sm_warps)
            per_sm_cycles.append(cycles)
        counters.cycles = max(per_sm_cycles) if per_sm_cycles else 0
        return SimOutput(
            config=config, counters=counters, per_sm_cycles=per_sm_cycles,
            backend=backend,
        )
