"""The global-memory path: L1D -> L2 -> DRAM.

One instance per SM (private L1D) with the L2 and DRAM passed in shared.
``access`` returns the completion time of a request issued at ``now`` and
updates hit/miss counters; dirty evictions generate write-back traffic at
the level below.
"""

from __future__ import annotations

from typing import List

from repro.gpu.cache import Cache
from repro.gpu.config import GPUConfig
from repro.gpu.counters import Counters
from repro.gpu.dram import Dram


class MemoryHierarchy:
    """Timing and traffic model of one SM's view of global memory."""

    #: Address region the shader-pollution stream walks through.
    POLLUTION_BASE = 0x4000_0000
    POLLUTION_SPAN = 64 * 1024 * 1024

    def __init__(self, config: GPUConfig, l2: Cache, dram: Dram) -> None:
        self.config = config
        self.l1 = Cache(
            size_bytes=config.l1d_bytes,
            line_bytes=config.line_bytes,
            assoc=None,  # fully associative, as in Table I
            name="L1D",
        )
        self.l2 = l2
        self.dram = dram
        self._pollution_cursor = 0
        self._l2_port_free = 0

    def _l2_occupy(self, now: int, sectors: int = 4) -> int:
        """Claim the (per-SM share of the) L2 port; returns service start."""
        start = max(now, self._l2_port_free)
        cycles = max(1, self.config.l2_service_cycles * sectors // 4)
        self._l2_port_free = start + cycles
        return start

    def pollute(self, lines: int, now: int, counters: "Counters") -> None:
        """Stream foreign (shader/texture) lines through the L1.

        Models the sub-cores sharing the unified L1D with the RT unit
        (paper III-B): the traffic itself is not on the RT unit's critical
        path, but it evicts node data and spilled stack entries.  Evicted
        dirty lines (spilled stack entries) still write back — that is
        real RT-unit-caused traffic.
        """
        line_bytes = self.config.line_bytes
        for _ in range(lines):
            address = self.POLLUTION_BASE + self._pollution_cursor
            self._pollution_cursor = (
                self._pollution_cursor + line_bytes
            ) % self.POLLUTION_SPAN
            result = self.l1.access(address, is_store=False)
            if result.evicted_dirty_line is not None:
                self._writeback_to_l2(result.evicted_dirty_line, now, counters)

    def lines_of(self, address: int, size_bytes: int) -> List[int]:
        """Line addresses an access of ``size_bytes`` at ``address`` touches."""
        line = self.config.line_bytes
        first = address - (address % line)
        last = (address + max(size_bytes, 1) - 1) // line * line
        return list(range(first, last + line, line))

    def access_line(
        self,
        line_addr: int,
        now: int,
        is_store: bool,
        counters: Counters,
        policy: str = "l1",
    ) -> int:
        """One line-granular access; returns its completion time.

        ``policy`` selects cacheability: ``"l1"`` (normal), ``"l2"``
        (bypass L1) or ``"uncached"`` (straight to DRAM) — the latter two
        model thread-local stack spill traffic, see
        ``GPUConfig.spill_cache_policy``.
        """
        config = self.config
        if policy == "uncached":
            # An uncoalesced 8-byte spill occupies one 32-byte sector of
            # L2-port and DRAM bandwidth, not a whole line.
            start = self._l2_occupy(now, sectors=1)
            base = start + config.l1_latency + config.l2_latency
            if is_store:
                self.dram.write(start, sectors=1)
                counters.dram_writes += 1
                return base
            done = self.dram.read(base, sectors=1)
            counters.dram_reads += 1
            return done
        if policy == "l2":
            start = self._l2_occupy(now, sectors=1)
            l2_result = self.l2.access(line_addr, is_store=is_store)
            if l2_result.evicted_dirty_line is not None:
                self.dram.write(start)
                counters.dram_writes += 1
            if l2_result.hit:
                counters.l2_hits += 1
                return start + config.l1_latency + config.l2_latency
            counters.l2_misses += 1
            if is_store:
                return start + config.l1_latency + config.l2_latency
            done = self.dram.read(start + config.l1_latency + config.l2_latency)
            counters.dram_reads += 1
            return done

        result = self.l1.access(line_addr, is_store=is_store)
        if result.evicted_dirty_line is not None:
            self._writeback_to_l2(result.evicted_dirty_line, now, counters)
        if result.hit:
            counters.l1_hits += 1
            return now + config.l1_latency
        counters.l1_misses += 1

        start = self._l2_occupy(now, sectors=4)
        l2_result = self.l2.access(line_addr, is_store=False)
        if l2_result.evicted_dirty_line is not None:
            self.dram.write(start)
            counters.dram_writes += 1
        if l2_result.hit:
            counters.l2_hits += 1
            return start + config.l1_latency + config.l2_latency
        counters.l2_misses += 1
        done = self.dram.read(start + config.l1_latency + config.l2_latency)
        counters.dram_reads += 1
        return done

    def _writeback_to_l2(self, line_addr: int, now: int, counters: Counters) -> None:
        """Install an evicted dirty L1 line into L2 (write-back path)."""
        result = self.l2.access(line_addr, is_store=True)
        if result.evicted_dirty_line is not None:
            self.dram.write(now)
            counters.dram_writes += 1
