"""The global-memory path: L1D -> L2 -> DRAM.

One instance per SM (private L1D) with the L2 and DRAM passed in shared.
``access`` returns the completion time of a request issued at ``now`` and
updates hit/miss counters; dirty evictions generate write-back traffic at
the level below.
"""

from __future__ import annotations

from typing import List

from repro.gpu.cache import Cache
from repro.gpu.config import GPUConfig
from repro.gpu.counters import Counters
from repro.gpu.dram import Dram


class MemoryHierarchy:
    """Timing and traffic model of one SM's view of global memory."""

    #: Address region the shader-pollution stream walks through.
    POLLUTION_BASE = 0x4000_0000
    POLLUTION_SPAN = 64 * 1024 * 1024

    def __init__(self, config: GPUConfig, l2: Cache, dram: Dram) -> None:
        self.config = config
        self.l1 = Cache(
            size_bytes=config.l1d_bytes,
            line_bytes=config.line_bytes,
            assoc=None,  # fully associative, as in Table I
            name="L1D",
        )
        self.l2 = l2
        self.dram = dram
        self._pollution_cursor = 0
        self._l2_port_free = 0
        # Node records never move, so the line decomposition of a given
        # (address, size) pair is immutable — memoize it.  Spill slots
        # repeat per lane, so they hit the memo too.
        self._lines_memo = {}

    def _l2_occupy(self, now: int, sectors: int = 4) -> int:
        """Claim the (per-SM share of the) L2 port; returns service start."""
        start = self._l2_port_free
        if now > start:
            start = now
        cycles = self.config.l2_service_cycles * sectors // 4
        self._l2_port_free = start + (cycles if cycles > 0 else 1)
        return start

    def pollute(self, lines: int, now: int, counters: "Counters") -> None:
        """Stream foreign (shader/texture) lines through the L1.

        Models the sub-cores sharing the unified L1D with the RT unit
        (paper III-B): the traffic itself is not on the RT unit's critical
        path, but it evicts node data and spilled stack entries.  Evicted
        dirty lines (spilled stack entries) still write back — that is
        real RT-unit-caused traffic.
        """
        cursor, evicted = self.l1.pollute_stream(
            self.POLLUTION_BASE,
            self._pollution_cursor,
            self.POLLUTION_SPAN,
            self.config.line_bytes,
            lines,
        )
        self._pollution_cursor = cursor
        # Write-backs are deferred to after the stream: L1 state does not
        # depend on L2, and the L2 sees the victims in the same order, so
        # the interleaved and deferred schedules are indistinguishable.
        for victim in evicted:
            self._writeback_to_l2(victim, now, counters)

    def lines_of(self, address: int, size_bytes: int) -> List[int]:
        """Line addresses an access of ``size_bytes`` at ``address`` touches.

        Memoized: the decomposition depends only on the immutable
        (address, size) pair and every node/spill slot is re-fetched many
        times per frame.
        """
        key = (address, size_bytes)
        cached = self._lines_memo.get(key)
        if cached is None:
            line = self.config.line_bytes
            first = address - (address % line)
            last = (address + max(size_bytes, 1) - 1) // line * line
            cached = list(range(first, last + line, line))
            self._lines_memo[key] = cached
        return cached

    def access_line(
        self,
        line_addr: int,
        now: int,
        is_store: bool,
        counters: Counters,
        policy: str = "l1",
    ) -> int:
        """One line-granular access; returns its completion time.

        ``policy`` selects cacheability: ``"l1"`` (normal), ``"l2"``
        (bypass L1) or ``"uncached"`` (straight to DRAM) — the latter two
        model thread-local stack spill traffic, see
        ``GPUConfig.spill_cache_policy``.
        """
        config = self.config
        if policy == "uncached":
            # An uncoalesced 8-byte spill occupies one 32-byte sector of
            # L2-port and DRAM bandwidth, not a whole line.
            start = self._l2_occupy(now, sectors=1)
            base = start + config.l1_latency + config.l2_latency
            if is_store:
                self.dram.write(start, sectors=1)
                counters.dram_writes += 1
                return base
            done = self.dram.read(base, sectors=1)
            counters.dram_reads += 1
            return done
        if policy == "l2":
            start = self._l2_occupy(now, sectors=1)
            l2_hit, l2_evicted = self.l2.probe(line_addr, is_store=is_store)
            if l2_evicted is not None:
                self.dram.write(start)
                counters.dram_writes += 1
            if l2_hit:
                counters.l2_hits += 1
                return start + config.l1_latency + config.l2_latency
            counters.l2_misses += 1
            if is_store:
                return start + config.l1_latency + config.l2_latency
            done = self.dram.read(start + config.l1_latency + config.l2_latency)
            counters.dram_reads += 1
            return done

        hit, evicted = self.l1.probe(line_addr, is_store=is_store)
        if evicted is not None:
            self._writeback_to_l2(evicted, now, counters)
        if hit:
            counters.l1_hits += 1
            return now + config.l1_latency
        counters.l1_misses += 1

        start = self._l2_occupy(now, sectors=4)
        l2_hit, l2_evicted = self.l2.probe(line_addr, is_store=False)
        if l2_evicted is not None:
            self.dram.write(start)
            counters.dram_writes += 1
        if l2_hit:
            counters.l2_hits += 1
            return start + config.l1_latency + config.l2_latency
        counters.l2_misses += 1
        done = self.dram.read(start + config.l1_latency + config.l2_latency)
        counters.dram_reads += 1
        return done

    def fetch_lines(self, lines: List[int], start: int, counters: Counters) -> int:
        """Burst of node-fetch loads, one issued per L1 port slot.

        Equivalent to ``access_line(line, start + i * l1_port_cycles,
        False, counters)`` for each line in order, returning the latest
        completion time — but with the per-line L1 probe and the miss path
        inlined, and the L1 hit/miss counter updates batched.  This is the
        node-fetch inner loop of every warp iteration.
        """
        config = self.config
        port = config.l1_port_cycles
        l1_lat = config.l1_latency
        l2_lat = config.l2_latency
        l1 = self.l1
        l2 = self.l2
        dram = self.dram
        now = start
        fetch_done = start
        l1_hits = 0
        l1_misses = 0
        # The paper's L1D is fully associative (one set); hoist the set
        # dict and unroll the probe.  Multi-set L1 configs fall back to
        # the generic probe below.
        cache_set = l1._sets[0] if l1.num_sets == 1 else None
        assoc = l1.assoc
        for line in lines:
            if cache_set is not None:
                if line in cache_set:
                    hit = True
                    cache_set.move_to_end(line)
                    evicted = None
                else:
                    hit = False
                    evicted = None
                    if len(cache_set) >= assoc:
                        victim, dirty = cache_set.popitem(last=False)
                        if dirty:
                            evicted = victim
                    cache_set[line] = False
            else:
                hit, evicted = l1.probe(line, False)
            if evicted is not None:
                self._writeback_to_l2(evicted, now, counters)
            if hit:
                l1_hits += 1
                done = now + l1_lat
            else:
                l1_misses += 1
                s = self._l2_occupy(now, sectors=4)
                l2_hit, l2_evicted = l2.probe(line, False)
                if l2_evicted is not None:
                    dram.write(s)
                    counters.dram_writes += 1
                if l2_hit:
                    counters.l2_hits += 1
                    done = s + l1_lat + l2_lat
                else:
                    counters.l2_misses += 1
                    done = dram.read(s + l1_lat + l2_lat)
                    counters.dram_reads += 1
            if done > fetch_done:
                fetch_done = done
            now += port
        if cache_set is not None:
            l1.hits += l1_hits
            l1.misses += l1_misses
        counters.l1_hits += l1_hits
        counters.l1_misses += l1_misses
        return fetch_done

    def _writeback_to_l2(self, line_addr: int, now: int, counters: Counters) -> None:
        """Install an evicted dirty L1 line into L2 (write-back path)."""
        _, evicted = self.l2.probe(line_addr, is_store=True)
        if evicted is not None:
            self.dram.write(now)
            counters.dram_writes += 1
