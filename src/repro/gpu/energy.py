"""Energy estimation for the traversal memory system.

The paper motivates SMS with energy as much as performance: on-chip
storage is "one of the most power-hungry components in modern GPUs"
(citing AccelWattch/McPAT-style models [22], [26]), and off-chip traffic
costs orders of magnitude more per access than SRAM.  This module applies
per-event energies in that style to the simulator's counters, so
configurations can be compared on energy as well as IPC.

Per-access energies follow the usual technology ratios (values are
editable on :class:`EnergyModel`): register-file/ray-buffer accesses are
cheapest, shared memory and L1 a few times more, L2 an order of magnitude
above that, and DRAM two orders above SRAM — which is why converting
global-memory spill traffic into shared-memory traffic saves energy even
before counting the performance effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.gpu.counters import Counters


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energies in picojoules (typical mobile-SoC ratios)."""

    rb_access_pj: float = 1.0        # ray-buffer (register-class) access
    shared_access_pj: float = 4.0    # one shared-memory transaction slot
    l1_access_pj: float = 6.0
    l2_access_pj: float = 30.0
    dram_access_pj: float = 450.0    # per 32-byte sector
    box_test_pj: float = 2.0
    tri_test_pj: float = 6.0
    static_pj_per_cycle: float = 0.5  # leakage/clock per SM


@dataclass
class EnergyReport:
    """Energy breakdown of one simulation, in nanojoules."""

    breakdown_nj: Dict[str, float] = field(default_factory=dict)

    @property
    def total_nj(self) -> float:
        """Total energy."""
        return sum(self.breakdown_nj.values())

    @property
    def stack_nj(self) -> float:
        """Energy spent on traversal-stack traffic only."""
        return (
            self.breakdown_nj.get("stack_shared", 0.0)
            + self.breakdown_nj.get("stack_global_dram", 0.0)
        )

    def summary(self) -> str:
        """Aligned text breakdown."""
        lines = []
        for name, value in sorted(
            self.breakdown_nj.items(), key=lambda kv: -kv[1]
        ):
            share = value / self.total_nj if self.total_nj else 0.0
            lines.append(f"  {name:<18} {value:12.1f} nJ  ({share:5.1%})")
        lines.append(f"  {'TOTAL':<18} {self.total_nj:12.1f} nJ")
        return "\n".join(lines)


def estimate_energy(
    counters: Counters,
    model: EnergyModel = EnergyModel(),
    num_sms: int = 8,
) -> EnergyReport:
    """Apply the per-event energy model to a simulation's counters.

    Instruction-side energy (node fetch L1/L2/DRAM events, intersection
    tests) is identical across stack architectures for the same workload;
    the configuration-dependent terms are the stack traffic entries and
    the static energy (which scales with runtime).
    """
    report = EnergyReport()
    b = report.breakdown_nj
    # Node-data path: every L1 access, L2 access and DRAM transaction.
    l1_accesses = counters.l1_accesses
    l2_accesses = counters.l2_accesses
    b["node_l1"] = l1_accesses * model.l1_access_pj / 1e3
    b["node_l2"] = l2_accesses * model.l2_access_pj / 1e3
    # DRAM covers node misses plus uncached spill traffic; splitting the
    # stack share out makes the SMS comparison legible.
    stack_dram = min(counters.stack_global_ops, counters.offchip_accesses)
    node_dram = counters.offchip_accesses - stack_dram
    b["node_dram"] = node_dram * model.dram_access_pj / 1e3
    b["stack_global_dram"] = stack_dram * model.dram_access_pj / 1e3
    b["stack_shared"] = counters.stack_shared_ops * model.shared_access_pj / 1e3
    # Every traversal step reads/updates the RB stack.
    b["rb_stack"] = counters.instructions * model.rb_access_pj / 1e3
    # Intersection units: instructions count node visits plus tests; the
    # box-test energy serves as the per-event proxy (triangle tests are a
    # minority of events at default leaf sizes).
    b["intersect"] = counters.instructions * model.box_test_pj / 1e3
    b["static"] = counters.cycles * model.static_pj_per_cycle * num_sms / 1e3
    return report


def compare_energy(
    reports: Dict[str, EnergyReport], baseline: str
) -> Dict[str, float]:
    """Total-energy ratios of each labelled report to ``baseline``."""
    base = reports[baseline].total_nj
    if base == 0:
        return {label: 0.0 for label in reports}
    return {label: report.total_nj / base for label, report in reports.items()}
