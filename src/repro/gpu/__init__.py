"""Cycle-level timing model of the ray-tracing GPU.

Models the architecture of paper Fig. 2/11: SMs containing an RT unit with
a warp buffer (4 resident warps), per-thread traversal stacks managed by a
stack manager, a memory scheduler in front of an L1D/L2/DRAM hierarchy,
and banked shared memory with conflict serialization.  Warps replay the
functional traces from ``repro.trace``; the simulator prices node fetches,
intersection tests and every stack-management memory operation, yielding
IPC and traffic counters.
"""

from repro.gpu.config import GPUConfig
from repro.gpu.counters import Counters
from repro.gpu.cache import Cache
from repro.gpu.dram import Dram
from repro.gpu.hierarchy import MemoryHierarchy
from repro.gpu.sharedmem import SharedMemorySim
from repro.gpu.warp import Warp, pack_warps
from repro.gpu.rt_unit import RTUnit
from repro.gpu.simulator import GPUSimulator, SimOutput

__all__ = [
    "GPUConfig",
    "Counters",
    "Cache",
    "Dram",
    "MemoryHierarchy",
    "SharedMemorySim",
    "Warp",
    "pack_warps",
    "RTUnit",
    "GPUSimulator",
    "SimOutput",
]
