"""Scene containers, cameras and procedural mesh generators.

A :class:`Scene` is a bag of triangles plus a name; the BVH layer builds an
acceleration structure over it and the trace layer shoots rays through it.
The generators produce the structural variety needed to stand in for the
Lumibench assets used by the paper (see ``repro.workloads``).
"""

from repro.scene.scene import Scene
from repro.scene.camera import PinholeCamera
from repro.scene.generators import (
    grid_mesh,
    box_mesh,
    blob_mesh,
    scatter_mesh,
    sliver_mesh,
    canopy_mesh,
    merge_meshes,
)

__all__ = [
    "Scene",
    "PinholeCamera",
    "grid_mesh",
    "box_mesh",
    "blob_mesh",
    "scatter_mesh",
    "sliver_mesh",
    "canopy_mesh",
    "merge_meshes",
]
