"""Pinhole camera generating primary rays (paper Fig. 1, step 1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from math import tan, radians
from typing import Iterator, Tuple

import numpy as np

from repro.errors import SceneError
from repro.geometry.ray import Ray
from repro.geometry.vec import Vec3, cross, normalize


@dataclass
class PinholeCamera:
    """A simple look-at pinhole camera.

    Rays are generated through pixel centers of a ``width x height`` image
    plane with the given vertical field of view.
    """

    position: Vec3
    look_at: Vec3
    up: Vec3 = field(default_factory=lambda: np.array([0.0, 1.0, 0.0]))
    vfov_degrees: float = 60.0
    width: int = 32
    height: int = 32

    def __post_init__(self) -> None:
        self.position = np.asarray(self.position, dtype=np.float64)
        self.look_at = np.asarray(self.look_at, dtype=np.float64)
        self.up = np.asarray(self.up, dtype=np.float64)
        if self.width <= 0 or self.height <= 0:
            raise SceneError("camera resolution must be positive")
        if not 0.0 < self.vfov_degrees < 180.0:
            raise SceneError("vertical field of view must be in (0, 180)")
        forward = normalize(self.look_at - self.position)
        self._forward = forward
        self._right = normalize(cross(forward, self.up))
        self._true_up = cross(self._right, forward)
        self._half_h = tan(radians(self.vfov_degrees) / 2.0)
        self._half_w = self._half_h * (self.width / self.height)

    @property
    def pixel_count(self) -> int:
        """Total number of pixels in the image plane."""
        return self.width * self.height

    def ray_for_pixel(self, px: int, py: int, jitter: Tuple[float, float] = (0.5, 0.5)) -> Ray:
        """Primary ray through pixel ``(px, py)``.

        ``jitter`` is the sub-pixel offset in ``[0, 1)^2``; 0.5 means the
        pixel center.  Rows are numbered top to bottom.
        """
        if not (0 <= px < self.width and 0 <= py < self.height):
            raise SceneError(f"pixel ({px}, {py}) outside {self.width}x{self.height}")
        u = ((px + jitter[0]) / self.width) * 2.0 - 1.0
        v = 1.0 - ((py + jitter[1]) / self.height) * 2.0
        direction = normalize(
            self._forward + u * self._half_w * self._right + v * self._half_h * self._true_up
        )
        return Ray(origin=self.position.copy(), direction=direction)

    def rays(self) -> Iterator[Tuple[int, Ray]]:
        """All primary rays in scanline order with their pixel index."""
        for py in range(self.height):
            for px in range(self.width):
                yield py * self.width + px, self.ray_for_pixel(px, py)
