"""Scene import/export: Wavefront OBJ (triangles only) and PPM images.

The benchmark suite is procedural, but users with real assets (including
the actual Lumibench scenes) can load them through :func:`load_obj`; faces
with more than three vertices are fan-triangulated.  Only geometry is
read — materials, normals and texture coordinates are ignored, since the
simulator consumes pure triangle soup.
"""

from __future__ import annotations

from pathlib import Path
from typing import List

import numpy as np

from repro.errors import SceneError
from repro.scene.scene import Scene


def load_obj(path, name: str = "") -> Scene:
    """Load a Wavefront OBJ file as a :class:`Scene`.

    Supports ``v`` and ``f`` records; face indices may be 1-based,
    negative (relative), and in ``v``, ``v/vt``, ``v//vn`` or ``v/vt/vn``
    form.  Raises :class:`SceneError` on malformed input.
    """
    path = Path(path)
    vertices: List[List[float]] = []
    triangles: List[List[List[float]]] = []
    with path.open() as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if parts[0] == "v":
                if len(parts) < 4:
                    raise SceneError(
                        f"{path}:{line_number}: vertex needs 3 coordinates"
                    )
                vertices.append([float(c) for c in parts[1:4]])
            elif parts[0] == "f":
                if len(parts) < 4:
                    raise SceneError(
                        f"{path}:{line_number}: face needs at least 3 vertices"
                    )
                corner_ids = [
                    _resolve_index(token, len(vertices), path, line_number)
                    for token in parts[1:]
                ]
                corners = [vertices[i] for i in corner_ids]
                # Fan triangulation for quads/ngons.
                for second, third in zip(corners[1:], corners[2:]):
                    triangles.append([corners[0], second, third])
    if not triangles:
        raise SceneError(f"{path}: no faces found")
    return Scene(
        name=name or path.stem,
        vertices=np.asarray(triangles, dtype=np.float64),
    )


def _resolve_index(token: str, vertex_count: int, path, line_number: int) -> int:
    index_text = token.split("/")[0]
    try:
        index = int(index_text)
    except ValueError:
        raise SceneError(
            f"{path}:{line_number}: bad face index {token!r}"
        ) from None
    if index > 0:
        resolved = index - 1
    elif index < 0:
        resolved = vertex_count + index
    else:
        raise SceneError(f"{path}:{line_number}: face index 0 is invalid")
    if not 0 <= resolved < vertex_count:
        raise SceneError(
            f"{path}:{line_number}: face references vertex {index}, "
            f"but only {vertex_count} are defined"
        )
    return resolved


def save_obj(scene: Scene, path) -> Path:
    """Write a scene as an OBJ file (one ``v``/``f`` soup; no sharing)."""
    path = Path(path)
    lines: List[str] = [f"# exported by repro: scene {scene.name}"]
    for tri in scene.vertices:
        for vertex in tri:
            lines.append(f"v {vertex[0]:.9g} {vertex[1]:.9g} {vertex[2]:.9g}")
    for i in range(scene.triangle_count):
        base = 3 * i
        lines.append(f"f {base + 1} {base + 2} {base + 3}")
    path.write_text("\n".join(lines) + "\n")
    return path
