"""Scene container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import SceneError
from repro.geometry.aabb import AABB, union
from repro.geometry.triangle import Triangle, triangle_aabb


@dataclass
class Scene:
    """A named collection of triangles.

    Triangles are stored as a ``(n, 3, 3)`` vertex array; :meth:`triangle`
    materializes individual :class:`Triangle` objects on demand so the hot
    batched paths never box primitives.
    """

    name: str
    vertices: np.ndarray  # (n, 3, 3): triangle, vertex, component
    light_position: Optional[np.ndarray] = None
    _bounds: Optional[AABB] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.vertices = np.asarray(self.vertices, dtype=np.float64)
        if self.vertices.ndim != 3 or self.vertices.shape[1:] != (3, 3):
            raise SceneError(
                f"scene vertex array must have shape (n, 3, 3), "
                f"got {self.vertices.shape}"
            )
        if self.light_position is None:
            # Default light: well above the scene center.
            bounds = self.bounds()
            if bounds.is_empty():
                self.light_position = np.array([0.0, 10.0, 0.0])
            else:
                ext = bounds.extent()
                self.light_position = bounds.centroid() + np.array(
                    [0.0, 2.0 * max(float(ext[1]), 1.0), 0.0]
                )

    @staticmethod
    def from_triangles(name: str, triangles: List[Triangle]) -> "Scene":
        """Build a scene from boxed triangles (re-numbers prim ids)."""
        if triangles:
            verts = np.stack([tri.vertices() for tri in triangles])
        else:
            verts = np.zeros((0, 3, 3))
        return Scene(name=name, vertices=verts)

    @property
    def triangle_count(self) -> int:
        """Number of triangles in the scene."""
        return int(self.vertices.shape[0])

    def triangle(self, prim_id: int) -> Triangle:
        """Materialize triangle ``prim_id``."""
        if not 0 <= prim_id < self.triangle_count:
            raise SceneError(
                f"prim_id {prim_id} out of range [0, {self.triangle_count})"
            )
        tri = self.vertices[prim_id]
        return Triangle(a=tri[0], b=tri[1], c=tri[2], prim_id=prim_id)

    def triangles(self) -> List[Triangle]:
        """Materialize every triangle (test/diagnostic use)."""
        return [self.triangle(i) for i in range(self.triangle_count)]

    def bounds(self) -> AABB:
        """Bounding box over the whole scene (cached)."""
        if self._bounds is None:
            box = AABB.empty()
            if self.triangle_count:
                lo = self.vertices.reshape(-1, 3).min(axis=0)
                hi = self.vertices.reshape(-1, 3).max(axis=0)
                box = AABB(lo=lo, hi=hi)
            self._bounds = box
        return self._bounds

    def centroids(self) -> np.ndarray:
        """``(n, 3)`` array of triangle centroids."""
        return self.vertices.mean(axis=1)

    def triangle_bounds(self, prim_id: int) -> AABB:
        """Bounding box of one triangle."""
        return triangle_aabb(self.triangle(prim_id))

    def validate(self) -> None:
        """Raise :class:`SceneError` if any triangle is non-finite."""
        if not np.all(np.isfinite(self.vertices)):
            raise SceneError(f"scene {self.name!r} contains non-finite vertices")
