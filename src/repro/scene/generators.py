"""Procedural mesh generators.

The paper evaluates on Lumibench assets we cannot redistribute; these
generators produce synthetic meshes whose *structure* (clustering, aspect
ratio, depth complexity) spans the same range, so BVHs built over them
exercise the same traversal behaviours: shallow/wide for architectural
boxes, deep/cluttered for scattered foliage, degenerate-thin for SHIP-like
slivers.  Every generator is deterministic given its ``seed``.

All generators return a ``(n, 3, 3)`` float64 vertex array consumable by
:class:`repro.scene.Scene`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import SceneError


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def grid_mesh(
    nx: int,
    nz: int,
    size: float = 10.0,
    height_amplitude: float = 0.0,
    seed: int = 0,
) -> np.ndarray:
    """A terrain-style triangulated heightfield on the XZ plane.

    ``nx x nz`` quads, each split into two triangles.  With a non-zero
    ``height_amplitude`` the vertices get a deterministic pseudo-random
    Y displacement, yielding rolling-terrain geometry (LANDS/PARK style).
    """
    if nx <= 0 or nz <= 0:
        raise SceneError("grid_mesh needs at least one quad per axis")
    rng = _rng(seed)
    xs = np.linspace(-size / 2, size / 2, nx + 1)
    zs = np.linspace(-size / 2, size / 2, nz + 1)
    heights = (
        rng.uniform(-height_amplitude, height_amplitude, size=(nx + 1, nz + 1))
        if height_amplitude > 0.0
        else np.zeros((nx + 1, nz + 1))
    )
    tris = []
    for i in range(nx):
        for j in range(nz):
            p00 = (xs[i], heights[i, j], zs[j])
            p10 = (xs[i + 1], heights[i + 1, j], zs[j])
            p01 = (xs[i], heights[i, j + 1], zs[j + 1])
            p11 = (xs[i + 1], heights[i + 1, j + 1], zs[j + 1])
            tris.append((p00, p10, p11))
            tris.append((p00, p11, p01))
    return np.asarray(tris, dtype=np.float64)


def box_mesh(
    center: Sequence[float],
    extent: Sequence[float],
) -> np.ndarray:
    """The 12 triangles of an axis-aligned box (architectural geometry)."""
    cx, cy, cz = center
    ex, ey, ez = (e / 2.0 for e in extent)
    if min(abs(ex), abs(ey), abs(ez)) <= 0.0:
        raise SceneError("box_mesh extents must be positive")
    # The 8 corners, bit i of the index selecting hi/lo per axis.
    corners = np.array(
        [
            [cx + (1 if i & 1 else -1) * ex,
             cy + (1 if i & 2 else -1) * ey,
             cz + (1 if i & 4 else -1) * ez]
            for i in range(8)
        ]
    )
    quads = [
        (0, 1, 3, 2), (4, 6, 7, 5),  # -z, +z faces
        (0, 4, 5, 1), (2, 3, 7, 6),  # -y, +y faces
        (0, 2, 6, 4), (1, 5, 7, 3),  # -x, +x faces
    ]
    tris = []
    for a, b, c, d in quads:
        tris.append((corners[a], corners[b], corners[c]))
        tris.append((corners[a], corners[c], corners[d]))
    return np.asarray(tris, dtype=np.float64)


def blob_mesh(
    center: Sequence[float],
    radius: float,
    subdivisions: int = 2,
    bumpiness: float = 0.0,
    seed: int = 0,
) -> np.ndarray:
    """A tessellated sphere with optional radial noise (organic shapes).

    Starts from an octahedron and subdivides each face ``subdivisions``
    times, then pushes vertices radially by up to ``bumpiness * radius``.
    """
    if radius <= 0:
        raise SceneError("blob_mesh radius must be positive")
    rng = _rng(seed)
    verts = np.array(
        [[1, 0, 0], [-1, 0, 0], [0, 1, 0], [0, -1, 0], [0, 0, 1], [0, 0, -1]],
        dtype=np.float64,
    )
    faces = [
        (0, 2, 4), (2, 1, 4), (1, 3, 4), (3, 0, 4),
        (2, 0, 5), (1, 2, 5), (3, 1, 5), (0, 3, 5),
    ]
    tris = [tuple(verts[i] for i in face) for face in faces]
    for _ in range(subdivisions):
        finer = []
        for a, b, c in tris:
            ab, bc, ca = (a + b) / 2, (b + c) / 2, (c + a) / 2
            finer.extend([(a, ab, ca), (ab, b, bc), (ca, bc, c), (ab, bc, ca)])
        tris = finer
    arr = np.asarray(tris, dtype=np.float64)
    flat = arr.reshape(-1, 3)
    norms = np.linalg.norm(flat, axis=1, keepdims=True)
    flat = flat / norms
    if bumpiness > 0.0:
        # Hash-keyed noise so shared vertices displace identically.
        keys = np.round(flat * 1e6).astype(np.int64)
        hashes = (keys[:, 0] * 73856093) ^ (keys[:, 1] * 19349663) ^ (keys[:, 2] * 83492791)
        noise_table = rng.uniform(1.0 - bumpiness, 1.0 + bumpiness, size=4096)
        flat = flat * noise_table[np.abs(hashes) % 4096][:, None]
    arr = flat.reshape(-1, 3, 3) * radius + np.asarray(center, dtype=np.float64)
    return arr


def scatter_mesh(
    count: int,
    bounds_size: float = 10.0,
    triangle_size: float = 0.2,
    clusters: int = 1,
    seed: int = 0,
) -> np.ndarray:
    """``count`` small random triangles scattered in a cube.

    ``clusters > 1`` groups triangles around cluster centers (foliage /
    carnival clutter); ``clusters == 1`` spreads them uniformly.  Clutter
    like this makes BVH leaves overlap and drives the deep, divergent
    traversals the paper measures.
    """
    if count <= 0:
        raise SceneError("scatter_mesh count must be positive")
    rng = _rng(seed)
    if clusters > 1:
        centers = rng.uniform(-bounds_size / 2, bounds_size / 2, size=(clusters, 3))
        which = rng.integers(0, clusters, size=count)
        anchors = centers[which] + rng.normal(0, bounds_size / 20, size=(count, 3))
    else:
        anchors = rng.uniform(-bounds_size / 2, bounds_size / 2, size=(count, 3))
    offsets = rng.normal(0, triangle_size, size=(count, 3, 3))
    return anchors[:, None, :] + offsets


def sliver_mesh(
    count: int,
    length: float = 8.0,
    thickness: float = 0.02,
    bounds_size: float = 10.0,
    seed: int = 0,
) -> np.ndarray:
    """Long, thin triangles (rigging/mast geometry as in the SHIP scene).

    Slivers produce large, mostly-empty AABBs, so rays hit many leaf
    bounds without hitting primitives — the high leaf-access ratio the
    paper calls out for SHIP.
    """
    if count <= 0:
        raise SceneError("sliver_mesh count must be positive")
    rng = _rng(seed)
    starts = rng.uniform(-bounds_size / 2, bounds_size / 2, size=(count, 3))
    directions = rng.normal(size=(count, 3))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    ends = starts + directions * length
    side = rng.normal(size=(count, 3))
    side -= directions * np.sum(side * directions, axis=1, keepdims=True)
    side /= np.linalg.norm(side, axis=1, keepdims=True)
    third = ends + side * thickness
    return np.stack([starts, ends, third], axis=1)


def canopy_mesh(
    trunk_count: int,
    leaves_per_trunk: int,
    bounds_size: float = 20.0,
    leaf_size: float = 0.15,
    crown_size: float = 2.0,
    seed: int = 0,
) -> np.ndarray:
    """Forest-style geometry: vertical trunks plus leaf clusters above them.

    ``leaf_size`` controls leaf-triangle overlap within each crown, the
    main knob for traversal depth in foliage scenes.
    """
    if trunk_count <= 0 or leaves_per_trunk <= 0:
        raise SceneError("canopy_mesh counts must be positive")
    rng = _rng(seed)
    parts = []
    for t in range(trunk_count):
        base = rng.uniform(-bounds_size / 2, bounds_size / 2, size=3)
        base[1] = 0.0
        height = rng.uniform(2.0, 5.0)
        parts.append(
            sliver_mesh(2, length=height, thickness=0.1, bounds_size=0.1,
                        seed=seed * 1009 + t)
            + base
        )
        crown = base + np.array([0.0, height, 0.0])
        parts.append(
            scatter_mesh(leaves_per_trunk, bounds_size=crown_size,
                         triangle_size=leaf_size, seed=seed * 2003 + t)
            + crown
        )
    return merge_meshes(parts)


def merge_meshes(meshes: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate vertex arrays into one mesh."""
    nonempty = [np.asarray(m, dtype=np.float64) for m in meshes if len(m)]
    if not nonempty:
        return np.zeros((0, 3, 3))
    return np.concatenate(nonempty, axis=0)
