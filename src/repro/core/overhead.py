"""Hardware overhead model (paper section VI-C).

Reproduces the paper's storage arithmetic: the SMS fields add 272 bytes
per SM in the default configuration (96 B of Top/Bottom indices + 176 B
of Overflow/Idle/NextTID/Priority/Flush state), versus 8 KB to instead
double the RB stack (8 B x 8 entries x 32 threads x 4 warps).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.config import GPUConfig
from repro.stack.base import ENTRY_BYTES
from repro.stack.fields import field_bits, overhead_bytes_per_rt_unit


@dataclass
class OverheadReport:
    """Storage overheads of a configuration, in bytes per SM."""

    sms_field_bytes: int
    top_bottom_bytes: int
    management_bytes: int
    rb_stack_bytes: int
    rb_double_bytes: int
    shared_memory_bytes: int

    def summary(self) -> str:
        """Human-readable report matching the paper's VI-C numbers."""
        return (
            f"SMS bookkeeping fields : {self.sms_field_bytes:>6d} B/SM "
            f"({self.top_bottom_bytes} B Top/Bottom + "
            f"{self.management_bytes} B management)\n"
            f"RB stack storage       : {self.rb_stack_bytes:>6d} B/SM\n"
            f"Doubling the RB stack  : {self.rb_double_bytes:>6d} B/SM (for comparison)\n"
            f"Shared memory carve-out: {self.shared_memory_bytes:>6d} B/SM"
        )


def sms_hardware_overhead(config: GPUConfig = None) -> OverheadReport:
    """Compute the SMS storage overhead for ``config`` (paper defaults)."""
    if config is None:
        from repro.core.presets import sms_config

        config = sms_config()
    sh_entries = config.sh_stack_entries or 8
    fields = overhead_bytes_per_rt_unit(
        sh_entries=sh_entries,
        warp_size=config.warp_size,
        warps_per_rt_unit=config.max_warps_per_rt_unit,
        max_borrows=config.max_borrows,
        max_flushes=config.max_flushes,
    )
    threads = config.warp_size * config.max_warps_per_rt_unit
    rb_entries = config.rb_stack_entries or 0
    rb_bytes = ENTRY_BYTES * rb_entries * threads
    return OverheadReport(
        sms_field_bytes=fields["total_bytes"] * config.rt_units_per_sm,
        top_bottom_bytes=fields["top_bottom_bytes"] * config.rt_units_per_sm,
        management_bytes=fields["management_bytes"] * config.rt_units_per_sm,
        rb_stack_bytes=rb_bytes * config.rt_units_per_sm,
        rb_double_bytes=rb_bytes * config.rt_units_per_sm,
        shared_memory_bytes=config.shared_memory_bytes,
    )


def field_bit_table(config: GPUConfig = None) -> dict:
    """Bit widths of each SMS ray-buffer field (paper VI-C enumeration)."""
    if config is None:
        from repro.core.presets import sms_config

        config = sms_config()
    return field_bits(
        sh_entries=config.sh_stack_entries or 8,
        warp_size=config.warp_size,
        max_borrows=config.max_borrows,
        max_flushes=config.max_flushes,
    )
