"""Named GPU configurations matching the paper's figure labels.

``RB_N`` — baseline with an N-entry ray-buffer stack, no SH stack.
``RB_N+SH_M`` — SMS with an M-entry shared-memory stack.
``+SK`` — skewed bank access; ``+RA`` — intra-warp reallocation.
``RB_FULL`` — unbounded on-chip stack (upper bound).

The paper's proposed design is ``RB_8+SH_8+SK+RA`` (56 KB L1D + 8 KB
shared memory out of the 64 KB unified SRAM).
"""

from __future__ import annotations

import re

from repro.errors import ConfigError
from repro.gpu.config import GPUConfig


def baseline_config(rb_entries: int = 8, **overrides) -> GPUConfig:
    """The RB_N baseline: short on-chip stack spilling to global memory."""
    return GPUConfig(rb_stack_entries=rb_entries, sh_stack_entries=0, **overrides)


def full_stack_config(**overrides) -> GPUConfig:
    """RB_FULL: impractical full per-ray on-chip stack (upper bound)."""
    return GPUConfig(rb_stack_entries=None, sh_stack_entries=0, **overrides)


def sms_config(
    rb_entries: int = 8,
    sh_entries: int = 8,
    skewed: bool = True,
    realloc: bool = True,
    inter_warp: bool = False,
    **overrides,
) -> GPUConfig:
    """An SMS configuration; defaults to the paper's proposed design."""
    return GPUConfig(
        rb_stack_entries=rb_entries,
        sh_stack_entries=sh_entries,
        skewed_bank_access=skewed,
        intra_warp_realloc=realloc,
        inter_warp_realloc=inter_warp,
        **overrides,
    )


#: The paper's proposed configuration (section IV-B).
PAPER_DEFAULT_SMS = sms_config()


def table1_config(**overrides) -> GPUConfig:
    """The paper's Table I parameters with no memory-system scaling.

    The library default scales the L2 to the ~1:100-scaled stand-in
    scenes (see ``GPUConfig``); this preset restores the paper's absolute
    3 MB L2 for runs against full-size scenes or sensitivity studies.
    """
    overrides.setdefault("l2_bytes", 3 * 1024 * 1024)
    return GPUConfig(**overrides)

_NAME_PATTERN = re.compile(
    r"^RB_(?P<rb>FULL|\d+)(?:\+SH_(?P<sh>\d+))?"
    r"(?P<sk>\+SK)?(?P<ra>\+RA)?(?P<iw>\+IW)?$"
)


def named_config(name: str, **overrides) -> GPUConfig:
    """Parse a figure-style label like ``"RB_8+SH_8+SK+RA"`` into a config."""
    match = _NAME_PATTERN.match(name.strip())
    if not match:
        raise ConfigError(
            f"unrecognized configuration name {name!r} "
            "(expected e.g. RB_8, RB_FULL, RB_8+SH_8+SK+RA)"
        )
    if match.group("rb") == "FULL":
        if match.group("sh") or match.group("sk") or match.group("ra"):
            raise ConfigError("RB_FULL takes no SH/SK/RA suffixes")
        return full_stack_config(**overrides)
    rb = int(match.group("rb"))
    if not match.group("sh"):
        if match.group("sk") or match.group("ra") or match.group("iw"):
            raise ConfigError("SK/RA/IW require an SH stack")
        return baseline_config(rb, **overrides)
    return sms_config(
        rb_entries=rb,
        sh_entries=int(match.group("sh")),
        skewed=bool(match.group("sk")),
        realloc=bool(match.group("ra")),
        inter_warp=bool(match.group("iw")),
        **overrides,
    )
