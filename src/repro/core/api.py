"""High-level entry points: trace a scene, time the traces, or both.

The two-phase split is exposed deliberately: ``trace_scene`` is expensive
(path tracing) but configuration-independent, so experiments trace each
scene once and call ``time_traces`` for every stack/cache configuration.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.bvh.api import build_bvh
from repro.bvh.wide import WideBVH
from repro.gpu.config import GPUConfig
from repro.gpu.simulator import GPUSimulator
from repro.core.results import SimulationResult
from repro.scene.scene import Scene
from repro.trace.depth import depth_statistics
from repro.trace.events import RayTrace
from repro.trace.path import PathTracerWorkload, generate_workload


def trace_scene(
    scene: Scene,
    width: int = 16,
    height: int = 16,
    spp: int = 1,
    max_bounces: int = 2,
    seed: int = 0,
    bvh: Optional[WideBVH] = None,
    bvh_width: int = 6,
) -> PathTracerWorkload:
    """Phase one: path-trace ``scene`` and return the traversal traces."""
    if bvh is None:
        bvh = build_bvh(scene, width=bvh_width)
    return generate_workload(
        bvh, width=width, height=height, spp=spp, max_bounces=max_bounces, seed=seed
    )


def time_traces(
    traces: Sequence[RayTrace],
    config: Optional[GPUConfig] = None,
    scene_name: str = "",
    verify_pops: bool = True,
    guard=None,
    fast_forward: bool = True,
) -> SimulationResult:
    """Phase two: replay traces through the timing model.

    ``guard`` (a :class:`~repro.guard.config.GuardConfig`) enables the
    simulation integrity layer for this run.  ``fast_forward=False``
    forces the fully stepped scheduler loop (bit-identical output; the
    default fast path only skips redundant arbitration).
    """
    simulator = GPUSimulator(
        config=config, verify_pops=verify_pops, guard=guard,
        fast_forward=fast_forward,
    )
    output = simulator.run_traces(traces)
    return SimulationResult(
        scene_name=scene_name,
        config=simulator.config,
        counters=output.counters,
        depth_stats=depth_statistics(traces),
        ray_count=len(traces),
    )


def simulate(
    scene: Scene,
    config: Optional[GPUConfig] = None,
    width: int = 16,
    height: int = 16,
    spp: int = 1,
    max_bounces: int = 2,
    seed: int = 0,
) -> SimulationResult:
    """Trace and time ``scene`` under ``config`` in one call."""
    workload = trace_scene(
        scene, width=width, height=height, spp=spp, max_bounces=max_bounces, seed=seed
    )
    return time_traces(workload.all_traces, config=config, scene_name=scene.name)
