"""Per-run result record."""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional

from repro.gpu.config import GPUConfig
from repro.gpu.counters import Counters
from repro.trace.depth import DepthStats


@dataclass
class SimulationResult:
    """Everything measured for one (scene, configuration) pair."""

    scene_name: str
    config: GPUConfig
    counters: Counters
    depth_stats: Optional[DepthStats] = None
    ray_count: int = 0
    #: The timing backend that actually executed (``"stepped"`` or
    #: ``"vector"``) — informational provenance; outputs are
    #: bit-identical across backends by contract.
    backend: str = "stepped"

    @property
    def label(self) -> str:
        """Figure-style configuration label."""
        return self.config.describe()

    @property
    def ipc(self) -> float:
        """Instructions per cycle."""
        return self.counters.ipc

    @property
    def cycles(self) -> int:
        """Total simulated cycles."""
        return self.counters.cycles

    @property
    def offchip_accesses(self) -> int:
        """Total DRAM transactions."""
        return self.counters.offchip_accesses

    def speedup_over(self, other: "SimulationResult") -> float:
        """IPC ratio of this run over ``other`` (same workload assumed)."""
        if other.ipc == 0:
            return float("inf")
        return self.ipc / other.ipc

    def to_dict(self) -> dict:
        """JSON-serializable form (the runtime result store's payload)."""
        return {
            "scene_name": self.scene_name,
            "config": asdict(self.config),
            "counters": self.counters.as_dict(),
            "depth_stats": (
                asdict(self.depth_stats) if self.depth_stats else None
            ),
            "ray_count": self.ray_count,
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` output.

        Exact round-trip: every field is an int, bool, str or float, and
        JSON preserves binary64 floats, so a deserialized result compares
        equal to the original.
        """
        depth = data.get("depth_stats")
        return cls(
            scene_name=data["scene_name"],
            config=GPUConfig(**data["config"]),
            counters=Counters.from_dict(data["counters"]),
            depth_stats=DepthStats(**depth) if depth else None,
            ray_count=data.get("ray_count", 0),
            backend=data.get("backend", "stepped"),
        )

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.scene_name:>8s} {self.label:<18s} "
            f"IPC={self.ipc:7.3f} cycles={self.cycles:>10d} "
            f"offchip={self.offchip_accesses:>8d} "
            f"bankdelay={self.counters.bank_conflict_delay_cycles:>7d}"
        )
