"""Per-run result record."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.gpu.config import GPUConfig
from repro.gpu.counters import Counters
from repro.trace.depth import DepthStats


@dataclass
class SimulationResult:
    """Everything measured for one (scene, configuration) pair."""

    scene_name: str
    config: GPUConfig
    counters: Counters
    depth_stats: Optional[DepthStats] = None
    ray_count: int = 0

    @property
    def label(self) -> str:
        """Figure-style configuration label."""
        return self.config.describe()

    @property
    def ipc(self) -> float:
        """Instructions per cycle."""
        return self.counters.ipc

    @property
    def cycles(self) -> int:
        """Total simulated cycles."""
        return self.counters.cycles

    @property
    def offchip_accesses(self) -> int:
        """Total DRAM transactions."""
        return self.counters.offchip_accesses

    def speedup_over(self, other: "SimulationResult") -> float:
        """IPC ratio of this run over ``other`` (same workload assumed)."""
        if other.ipc == 0:
            return float("inf")
        return self.ipc / other.ipc

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.scene_name:>8s} {self.label:<18s} "
            f"IPC={self.ipc:7.3f} cycles={self.cycles:>10d} "
            f"offchip={self.offchip_accesses:>8d} "
            f"bankdelay={self.counters.bank_conflict_delay_cycles:>7d}"
        )
