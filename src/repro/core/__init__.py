"""The public API of the reproduction.

Most users need three things:

* :func:`repro.core.api.simulate` — trace a scene and time it under a
  configuration;
* :mod:`repro.core.presets` — the paper's named configurations (RB_8,
  RB_8+SH_8+SK+RA, RB_FULL, ...);
* :class:`repro.core.results.SimulationResult` — IPC, traffic and stack
  statistics for one (scene, config) pair.
"""

from repro.core.api import simulate, trace_scene, time_traces
from repro.core.presets import (
    baseline_config,
    full_stack_config,
    sms_config,
    named_config,
    table1_config,
    PAPER_DEFAULT_SMS,
)
from repro.core.results import SimulationResult
from repro.core.overhead import sms_hardware_overhead, OverheadReport

__all__ = [
    "simulate",
    "trace_scene",
    "time_traces",
    "baseline_config",
    "full_stack_config",
    "sms_config",
    "named_config",
    "table1_config",
    "PAPER_DEFAULT_SMS",
    "SimulationResult",
    "sms_hardware_overhead",
    "OverheadReport",
]
