"""One-call BVH construction: binary build, wide collapse, address layout."""

from __future__ import annotations

from repro.bvh.builder import build_binary_bvh
from repro.bvh.layout import assign_addresses
from repro.bvh.wide import WideBVH, collapse_to_wide
from repro.scene.scene import Scene

#: Branching factor used throughout the paper's walkthroughs (BVH6).
DEFAULT_WIDTH = 6


def build_bvh(
    scene: Scene,
    width: int = DEFAULT_WIDTH,
    max_leaf_size: int = 4,
    strategy: str = "median",
) -> WideBVH:
    """Build a laid-out wide BVH ready for traversal and timing simulation.

    Args:
        scene: the scene to index.
        width: wide-BVH branching factor (paper uses BVH6).
        max_leaf_size: maximum triangles per leaf.
        strategy: binary split strategy, ``"median"`` or ``"sah"``.

    Returns:
        A :class:`WideBVH` with node addresses assigned.
    """
    binary = build_binary_bvh(scene, max_leaf_size=max_leaf_size, strategy=strategy)
    wide = collapse_to_wide(binary, width=width)
    assign_addresses(wide)
    return wide
