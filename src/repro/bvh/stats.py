"""BVH statistics (feeds the paper's Table II and scene characterization)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.bvh.wide import WideBVH


@dataclass
class BVHStats:
    """Structural statistics of a wide BVH."""

    node_count: int
    internal_count: int
    leaf_count: int
    max_depth: int
    avg_leaf_prims: float
    max_children: int
    avg_children: float
    total_bytes: int
    triangle_count: int

    @property
    def megabytes(self) -> float:
        """Footprint in MB."""
        return self.total_bytes / (1024.0 * 1024.0)

    @property
    def leaf_ratio(self) -> float:
        """Fraction of nodes that are leaves."""
        if self.node_count == 0:
            return 0.0
        return self.leaf_count / self.node_count


def compute_stats(wide: WideBVH) -> BVHStats:
    """Compute :class:`BVHStats` for a laid-out wide BVH."""
    leaves = [n for n in wide.nodes if n.is_leaf]
    internals = [n for n in wide.nodes if not n.is_leaf]
    leaf_prims = sum(len(n.prim_ids) for n in leaves)
    child_total = sum(n.child_count for n in internals)
    return BVHStats(
        node_count=wide.node_count,
        internal_count=len(internals),
        leaf_count=len(leaves),
        max_depth=wide.max_depth(),
        avg_leaf_prims=leaf_prims / len(leaves) if leaves else 0.0,
        max_children=max((n.child_count for n in internals), default=0),
        avg_children=child_total / len(internals) if internals else 0.0,
        total_bytes=wide.total_bytes,
        triangle_count=wide.scene.triangle_count,
    )
