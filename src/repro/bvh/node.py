"""BVH node records.

Two node flavours exist: :class:`BinaryNode` for the intermediate binary
tree and :class:`WideNode` for the collapsed wide BVH that traversal and
the timing model consume.  Both are stored in flat lists and reference
children by index, never by Python object pointer, so trees serialize and
address-map cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.geometry.aabb import AABB

#: Sentinel index meaning "no node".
NO_NODE = -1


@dataclass
class BinaryNode:
    """A node of the intermediate binary BVH.

    Leaves carry a primitive range ``[first_prim, first_prim + prim_count)``
    into the builder's primitive-order array; internal nodes carry the two
    child indices.
    """

    bounds: AABB
    left: int = NO_NODE
    right: int = NO_NODE
    first_prim: int = 0
    prim_count: int = 0

    @property
    def is_leaf(self) -> bool:
        """Leaves own primitives; internal nodes own children."""
        return self.prim_count > 0


@dataclass
class WideNode:
    """A node of the wide BVH (up to ``k`` children per internal node).

    ``address`` and ``size_bytes`` are filled in by the layout pass and
    give the node's location in the simulated global-memory space; the
    traversal stack stores these addresses (one 8-byte entry each, as in
    the paper).
    """

    index: int
    bounds: AABB
    children: List[int] = field(default_factory=list)
    prim_ids: List[int] = field(default_factory=list)
    address: int = 0
    size_bytes: int = 0
    depth: int = 0

    @property
    def is_leaf(self) -> bool:
        """True when the node holds primitives instead of children."""
        return not self.children

    @property
    def child_count(self) -> int:
        """Number of children (0 for leaves)."""
        return len(self.children)
