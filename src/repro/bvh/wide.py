"""Collapse a binary BVH into a wide BVH (BVHk).

Wide BVHs raise the branching factor so each internal node can push up to
``k - 1`` sibling addresses per visit — exactly the behaviour that stresses
short traversal stacks in the paper (Fig. 3 shows a BVH6 with a 4-entry
stack).  Collapse follows the usual approach: repeatedly replace the
largest-surface-area internal slot with its two binary children until the
node has ``k`` slots or only leaves remain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import BVHError
from repro.bvh.builder import BinaryBVH
from repro.bvh.node import WideNode
from repro.geometry.aabb import surface_area
from repro.scene.scene import Scene


@dataclass
class WideBVH:
    """The wide BVH consumed by traversal and the timing model.

    ``child_los[i]`` / ``child_his[i]`` hold node ``i``'s child bounds as
    ``(c, 3)`` arrays for the batched ray/AABB kernel.  ``address_to_node``
    is populated by the layout pass.
    """

    scene: Scene
    width: int
    nodes: List[WideNode] = field(default_factory=list)
    root: int = 0
    child_los: List[np.ndarray] = field(default_factory=list)
    child_his: List[np.ndarray] = field(default_factory=list)
    address_to_node: Dict[int, int] = field(default_factory=dict)
    total_bytes: int = 0
    _soa: object = field(default=None, repr=False, compare=False)
    _escape: object = field(default=None, repr=False, compare=False)

    #: Cache slots of lazily built derived structures; every slot listed
    #: here is cleared together by :meth:`invalidate_derived`.
    _DERIVED_SLOTS = ("_soa", "_escape")

    @property
    def node_count(self) -> int:
        """Total number of wide nodes."""
        return len(self.nodes)

    def _derived(self, slot: str, build):
        """Shared build-once logic for every derived-structure cache."""
        value = getattr(self, slot)
        if value is None:
            value = build(self)
            setattr(self, slot, value)
        return value

    def invalidate_derived(self) -> None:
        """Drop every cached derived structure.

        The layout pass calls this when it reassigns node addresses —
        addresses are baked into the SoA mirror, and the escape index's
        DFS link order mirrors the address assignment walk.
        """
        for slot in self._DERIVED_SLOTS:
            setattr(self, slot, None)

    def soa(self):
        """The flat structure-of-arrays mirror (built once, cached).

        Must be requested after layout assigns node addresses; the tracer
        does so via its constructor.
        """
        from repro.bvh.soa import BVHSoA

        return self._derived("_soa", BVHSoA)

    def escape(self):
        """The escape-link index for stackless traversal (built once, cached).

        Same caching and invalidation contract as :meth:`soa`.
        """
        from repro.bvh.escape import EscapeIndex

        return self._derived("_escape", EscapeIndex)

    def node_at_address(self, address: int) -> WideNode:
        """Resolve a global-memory address back to its node."""
        try:
            return self.nodes[self.address_to_node[address]]
        except KeyError:
            raise BVHError(f"no BVH node at address {address:#x}") from None

    def max_depth(self) -> int:
        """Depth of the deepest node (root = 0)."""
        return max((node.depth for node in self.nodes), default=0)


def _gather_wide_children(binary: BinaryBVH, binary_root: int, width: int) -> List[int]:
    """Pick up to ``width`` binary-node indices forming one wide node's children."""
    slots = [binary_root]
    while len(slots) < width:
        # Expand the internal slot with the largest surface area.
        best = -1
        best_area = -1.0
        for pos, b_index in enumerate(slots):
            node = binary.nodes[b_index]
            if node.is_leaf:
                continue
            area = surface_area(node.bounds)
            if area > best_area:
                best_area = area
                best = pos
        if best < 0:
            break  # all slots are leaves
        node = binary.nodes[slots[best]]
        slots[best : best + 1] = [node.left, node.right]
    return slots


def collapse_to_wide(binary: BinaryBVH, width: int = 6) -> WideBVH:
    """Collapse ``binary`` into a :class:`WideBVH` with branching factor ``width``.

    Binary leaves map 1:1 to wide leaves; binary internal nodes are grouped
    so every wide internal node has between 2 and ``width`` children.
    """
    if width < 2:
        raise BVHError("wide BVH width must be >= 2")
    wide = WideBVH(scene=binary.scene, width=width)

    root_binary = binary.nodes[binary.root]
    wide.nodes.append(WideNode(index=0, bounds=root_binary.bounds, depth=0))
    if root_binary.is_leaf:
        wide.nodes[0].prim_ids = list(binary.leaf_prims(binary.root))
        _finalize_child_arrays(wide)
        return wide

    # Work stack of (wide node index, binary node index backing it).
    work: List[Tuple[int, int]] = [(0, binary.root)]
    while work:
        wide_index, binary_index = work.pop()
        parent = wide.nodes[wide_index]
        for child_binary in _gather_wide_children(binary, binary_index, width):
            child_node = binary.nodes[child_binary]
            child_index = len(wide.nodes)
            child = WideNode(
                index=child_index, bounds=child_node.bounds, depth=parent.depth + 1
            )
            wide.nodes.append(child)
            parent.children.append(child_index)
            if child_node.is_leaf:
                child.prim_ids = list(binary.leaf_prims(child_binary))
            else:
                work.append((child_index, child_binary))
    _finalize_child_arrays(wide)
    return wide


def _finalize_child_arrays(wide: WideBVH) -> None:
    """Precompute per-node child-bounds arrays for the batched slab test."""
    wide.child_los = []
    wide.child_his = []
    for node in wide.nodes:
        if node.is_leaf:
            wide.child_los.append(np.zeros((0, 3)))
            wide.child_his.append(np.zeros((0, 3)))
        else:
            wide.child_los.append(
                np.stack([wide.nodes[c].bounds.lo for c in node.children])
            )
            wide.child_his.append(
                np.stack([wide.nodes[c].bounds.hi for c in node.children])
            )
