"""Global-memory layout of the wide BVH.

Assigns every node a byte address in the simulated global-memory space so
the timing model sees realistic node-fetch access patterns: siblings are
packed contiguously (depth-first subtree order), leaves embed their
triangle data, and all nodes are aligned to the cache-line-friendly
boundary used by real BVH layouts.

Stack entries hold these addresses — one 8-byte entry per node, matching
the paper's 8 B x 8-entry x 128-thread ray-buffer sizing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bvh.wide import WideBVH

#: Byte alignment for node records.
NODE_ALIGNMENT = 32
#: Fixed per-node header (bounds of the node itself, flags, counts).
NODE_HEADER_BYTES = 32
#: Bytes per child slot in an internal node (child AABB + pointer).
CHILD_SLOT_BYTES = 32
#: Bytes per triangle stored in a leaf (3 vertices x 3 floats + pad).
TRIANGLE_BYTES = 48
#: Base address of the BVH region in the simulated address space.
BVH_BASE_ADDRESS = 0x1000_0000


@dataclass
class MemoryLayout:
    """Summary of the address assignment."""

    base_address: int
    total_bytes: int
    node_count: int

    @property
    def megabytes(self) -> float:
        """Footprint in MB (the paper's Table II 'BVH (MB)' column)."""
        return self.total_bytes / (1024.0 * 1024.0)


def node_size_bytes(child_count: int, prim_count: int) -> int:
    """Size of a node record, aligned to :data:`NODE_ALIGNMENT`."""
    raw = NODE_HEADER_BYTES + child_count * CHILD_SLOT_BYTES + prim_count * TRIANGLE_BYTES
    return (raw + NODE_ALIGNMENT - 1) // NODE_ALIGNMENT * NODE_ALIGNMENT


def assign_addresses(wide: WideBVH, base_address: int = BVH_BASE_ADDRESS) -> MemoryLayout:
    """Assign byte addresses to every node in depth-first order.

    Depth-first order keeps each subtree contiguous, which is how real
    builders lay out nodes to make coherent traversals cache-friendly —
    and what makes *incoherent* traversals miss, the effect the paper's
    L1D study (Fig. 6b) measures.
    """
    cursor = base_address
    wide.address_to_node.clear()
    wide.invalidate_derived()  # SoA mirror and escape index both embed layout

    stack = [wide.root]
    while stack:
        index = stack.pop()
        node = wide.nodes[index]
        node.address = cursor
        node.size_bytes = node_size_bytes(node.child_count, len(node.prim_ids))
        wide.address_to_node[cursor] = index
        cursor += node.size_bytes
        # Reversed push so children come out in left-to-right order.
        for child in reversed(node.children):
            stack.append(child)
    wide.total_bytes = cursor - base_address
    return MemoryLayout(
        base_address=base_address,
        total_bytes=wide.total_bytes,
        node_count=wide.node_count,
    )
