"""Binary BVH construction.

Supports two split strategies:

* ``"median"`` — sort centroids along the longest axis and split in half;
  fast and balanced, our default for the large workload sweep.
* ``"sah"`` — binned surface-area heuristic; produces the tighter,
  more-adaptive trees real builders emit (and more varied traversal
  depths), used by the higher-fidelity scenes.

Construction is iterative (explicit work stack) so pathological scenes
cannot overflow Python's recursion limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.errors import BVHError
from repro.bvh.node import NO_NODE, BinaryNode
from repro.geometry.aabb import AABB, surface_area
from repro.scene.scene import Scene

_SAH_BINS = 16
_SAH_TRAVERSAL_COST = 1.0
_SAH_INTERSECT_COST = 2.0


@dataclass
class BinaryBVH:
    """The intermediate binary BVH over a scene.

    ``prim_order`` maps leaf primitive ranges to scene ``prim_id``s: leaf
    node ``n`` owns ``prim_order[n.first_prim : n.first_prim + n.prim_count]``.
    """

    scene: Scene
    nodes: List[BinaryNode] = field(default_factory=list)
    prim_order: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    root: int = NO_NODE

    @property
    def node_count(self) -> int:
        """Total number of nodes."""
        return len(self.nodes)

    def leaf_prims(self, node_index: int) -> np.ndarray:
        """Scene prim ids owned by leaf ``node_index``."""
        node = self.nodes[node_index]
        if not node.is_leaf:
            raise BVHError(f"node {node_index} is not a leaf")
        return self.prim_order[node.first_prim : node.first_prim + node.prim_count]


def _prim_bounds_arrays(scene: Scene) -> Tuple[np.ndarray, np.ndarray]:
    """Per-triangle (lo, hi) arrays, each of shape (n, 3)."""
    los = scene.vertices.min(axis=1)
    his = scene.vertices.max(axis=1)
    return los, his


def _range_bounds(los: np.ndarray, his: np.ndarray, ids: np.ndarray) -> AABB:
    return AABB(lo=los[ids].min(axis=0), hi=his[ids].max(axis=0))


def _median_split(
    centroids: np.ndarray, ids: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Split ``ids`` at the centroid median of the longest-extent axis."""
    cents = centroids[ids]
    extent = cents.max(axis=0) - cents.min(axis=0)
    axis = int(np.argmax(extent))
    order = ids[np.argsort(cents[:, axis], kind="stable")]
    mid = len(order) // 2
    return order[:mid], order[mid:]


def _sah_split(
    centroids: np.ndarray,
    los: np.ndarray,
    his: np.ndarray,
    ids: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Binned SAH split; falls back to median when SAH finds no gain."""
    cents = centroids[ids]
    lo = cents.min(axis=0)
    hi = cents.max(axis=0)
    extent = hi - lo
    axis = int(np.argmax(extent))
    if extent[axis] <= 1e-12:
        return _median_split(centroids, ids)

    bins = np.minimum(
        ((cents[:, axis] - lo[axis]) / extent[axis] * _SAH_BINS).astype(np.int64),
        _SAH_BINS - 1,
    )
    # Sweep bin boundaries accumulating bounds+counts from both ends.
    best_cost = np.inf
    best_boundary = -1
    counts = np.bincount(bins, minlength=_SAH_BINS)
    left_area = np.zeros(_SAH_BINS)
    right_area = np.zeros(_SAH_BINS)
    acc = AABB.empty()
    for b in range(_SAH_BINS):
        members = ids[bins == b]
        if len(members):
            acc = AABB(
                lo=np.minimum(acc.lo, los[members].min(axis=0)),
                hi=np.maximum(acc.hi, his[members].max(axis=0)),
            )
        left_area[b] = surface_area(acc)
    acc = AABB.empty()
    for b in range(_SAH_BINS - 1, -1, -1):
        members = ids[bins == b]
        if len(members):
            acc = AABB(
                lo=np.minimum(acc.lo, los[members].min(axis=0)),
                hi=np.maximum(acc.hi, his[members].max(axis=0)),
            )
        right_area[b] = surface_area(acc)
    left_counts = np.cumsum(counts)
    for b in range(_SAH_BINS - 1):
        n_left = left_counts[b]
        n_right = len(ids) - n_left
        if n_left == 0 or n_right == 0:
            continue
        cost = _SAH_TRAVERSAL_COST + _SAH_INTERSECT_COST * (
            left_area[b] * n_left + right_area[b + 1] * n_right
        )
        if cost < best_cost:
            best_cost = cost
            best_boundary = b
    if best_boundary < 0:
        return _median_split(centroids, ids)
    left_mask = bins <= best_boundary
    return ids[left_mask], ids[~left_mask]


def build_binary_bvh(
    scene: Scene,
    max_leaf_size: int = 4,
    strategy: str = "median",
) -> BinaryBVH:
    """Build a binary BVH over ``scene``.

    Args:
        scene: the scene to index; must contain at least one triangle.
        max_leaf_size: maximum primitives per leaf.
        strategy: ``"median"`` or ``"sah"``.

    Returns:
        The built :class:`BinaryBVH` with root index 0.
    """
    if scene.triangle_count == 0:
        raise BVHError("cannot build a BVH over an empty scene")
    if max_leaf_size < 1:
        raise BVHError("max_leaf_size must be >= 1")
    if strategy not in ("median", "sah"):
        raise BVHError(f"unknown split strategy {strategy!r}")

    los, his = _prim_bounds_arrays(scene)
    centroids = scene.centroids()
    bvh = BinaryBVH(scene=scene)
    prim_order: List[np.ndarray] = []
    next_prim_offset = 0

    all_ids = np.arange(scene.triangle_count, dtype=np.int64)
    bvh.nodes.append(BinaryNode(bounds=_range_bounds(los, his, all_ids)))
    bvh.root = 0
    # Work stack of (node_index, prim ids to place under it).
    work: List[Tuple[int, np.ndarray]] = [(0, all_ids)]
    while work:
        node_index, ids = work.pop()
        node = bvh.nodes[node_index]
        if len(ids) <= max_leaf_size:
            node.first_prim = next_prim_offset
            node.prim_count = len(ids)
            prim_order.append(ids)
            next_prim_offset += len(ids)
            continue
        if strategy == "sah":
            left_ids, right_ids = _sah_split(centroids, los, his, ids)
        else:
            left_ids, right_ids = _median_split(centroids, ids)
        if len(left_ids) == 0 or len(right_ids) == 0:
            # Degenerate split (all centroids identical): force a half split.
            mid = len(ids) // 2
            left_ids, right_ids = ids[:mid], ids[mid:]
        left_index = len(bvh.nodes)
        bvh.nodes.append(BinaryNode(bounds=_range_bounds(los, his, left_ids)))
        right_index = len(bvh.nodes)
        bvh.nodes.append(BinaryNode(bounds=_range_bounds(los, his, right_ids)))
        node.left = left_index
        node.right = right_index
        # LIFO order: right first so left subtrees materialize first.
        work.append((right_index, right_ids))
        work.append((left_index, left_ids))

    bvh.prim_order = (
        np.concatenate(prim_order) if prim_order else np.zeros(0, dtype=np.int64)
    )
    return bvh
