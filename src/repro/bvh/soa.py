"""Structure-of-arrays mirror of a wide BVH for the batched tracer.

The object graph (:class:`~repro.bvh.wide.WideBVH` / ``WideNode``) is the
right shape for layout and the timing model, but the functional tracer
visits nodes millions of times per workload and every visit used to
re-slice child bounds out of that graph and box a fresh ``Ray``.  This
module flattens everything the traversal loop touches into contiguous
numpy arrays (plus plain-python mirrors for the scalar inner loop, which
is faster off lists than off ``ndarray`` scalar indexing):

* per-node child bounds, concatenated into one ``(C, 3)`` pair of arrays
  indexed by ``child_offset[i] : child_offset[i] + child_count[i]``;
* child node indices and their global-memory addresses, flat;
* per-leaf primitive id ranges over one flat ``prim_ids`` list;
* triangle data in Moeller-Trumbore form: vertex ``a`` plus the two edge
  vectors, both as ``(n, 3)`` float64 arrays (rows feed ``np.dot``) and
  as python-float triples (components feed the manual cross products).

Bit-exactness contract: every array row here is numerically *identical*
(same IEEE-754 bits) to what the per-visit slicing used to produce —
``child_lo`` rows are copies of ``WideBVH.child_los`` entries and the
edge arrays are the same ``b - a`` / ``c - a`` subtractions the boxed
:class:`~repro.geometry.triangle.Triangle` path performs — so tracing on
the SoA yields byte-identical event streams.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.bvh.wide import WideBVH


class BVHSoA:
    """Flat arrays over one :class:`~repro.bvh.wide.WideBVH` and its scene.

    Built once per BVH (cached via :meth:`WideBVH.soa`); holds no mutable
    traversal state, so one instance is safely shared by every ray.
    """

    __slots__ = (
        "node_count",
        "node_address",
        "node_size_bytes",
        "node_is_leaf",
        "child_offset",
        "child_count",
        "child_index",
        "child_address",
        "child_lo",
        "child_hi",
        "prim_offset",
        "prim_count",
        "prim_ids",
        "tri_a",
        "tri_e1",
        "tri_e2",
        "tri_e1_f",
        "tri_e2_f",
    )

    def __init__(self, bvh: "WideBVH") -> None:
        nodes = bvh.nodes
        self.node_count = len(nodes)
        self.node_address = [node.address for node in nodes]
        self.node_size_bytes = [node.size_bytes for node in nodes]
        self.node_is_leaf = [node.is_leaf for node in nodes]

        child_offset = []
        child_count = []
        child_index = []
        child_address = []
        prim_offset = []
        prim_count = []
        prim_ids = []
        lo_blocks = []
        hi_blocks = []
        for node in nodes:
            child_offset.append(len(child_index))
            child_count.append(len(node.children))
            prim_offset.append(len(prim_ids))
            prim_count.append(len(node.prim_ids))
            for child in node.children:
                child_index.append(child)
                child_address.append(nodes[child].address)
            prim_ids.extend(node.prim_ids)
            if node.children:
                lo_blocks.append(bvh.child_los[node.index])
                hi_blocks.append(bvh.child_his[node.index])
        self.child_offset = child_offset
        self.child_count = child_count
        self.child_index = child_index
        self.child_address = child_address
        self.prim_offset = prim_offset
        self.prim_count = prim_count
        self.prim_ids = prim_ids
        if lo_blocks:
            self.child_lo = np.ascontiguousarray(np.concatenate(lo_blocks))
            self.child_hi = np.ascontiguousarray(np.concatenate(hi_blocks))
        else:
            self.child_lo = np.zeros((0, 3))
            self.child_hi = np.zeros((0, 3))

        verts = bvh.scene.vertices
        self.tri_a = np.ascontiguousarray(verts[:, 0, :])
        self.tri_e1 = np.ascontiguousarray(verts[:, 1, :] - verts[:, 0, :])
        self.tri_e2 = np.ascontiguousarray(verts[:, 2, :] - verts[:, 0, :])
        self.tri_e1_f = [tuple(row) for row in self.tri_e1.tolist()]
        self.tri_e2_f = [tuple(row) for row in self.tri_e2.tolist()]
