"""Bounding volume hierarchies.

Builds the acceleration structure the paper's RT unit traverses: a binary
SAH/median BVH collapsed into a wide BVH (``BVHk``, default ``k = 6`` as in
the paper's Fig. 3 walkthrough), laid out into a simulated global-memory
address space so the timing model sees realistic node-fetch addresses.
"""

from repro.bvh.node import BinaryNode, WideNode
from repro.bvh.builder import BinaryBVH, build_binary_bvh
from repro.bvh.wide import WideBVH, collapse_to_wide
from repro.bvh.layout import assign_addresses, MemoryLayout
from repro.bvh.stats import BVHStats, compute_stats
from repro.bvh.validate import validate_binary, validate_wide
from repro.bvh.api import build_bvh

__all__ = [
    "BinaryNode",
    "WideNode",
    "BinaryBVH",
    "build_binary_bvh",
    "WideBVH",
    "collapse_to_wide",
    "assign_addresses",
    "MemoryLayout",
    "BVHStats",
    "compute_stats",
    "validate_binary",
    "validate_wide",
    "build_bvh",
]
