"""Escape-link (skip-pointer) index over a wide BVH.

Stackless traversal replaces the traversal stack with two precomputed
links per node (Smits-style ropes; see Prokopenko & Lebrun-Grandie,
arXiv 2402.00665):

* ``first_child[n]`` — the node entered when the ray hits ``n``'s bounds
  and ``n`` is internal;
* ``escape[n]`` — the node entered when the ray misses ``n``'s bounds
  (or finishes ``n``'s primitives): the next unvisited sibling in
  depth-first order, inherited from the parent when ``n`` is its last
  child.  ``NO_NODE`` for the root and the last node of the DFS.

Following ``first_child`` on hit and ``escape`` otherwise enumerates
exactly the depth-first order a stack-based traversal would visit with
static (slot-order) child ordering — no state beyond the current node
index, so zero stack occupancy and zero spill traffic.

Built lazily via :meth:`~repro.bvh.wide.WideBVH.escape` and cached like
the SoA mirror; both caches invalidate together through
:meth:`~repro.bvh.wide.WideBVH.invalidate_derived` when the layout pass
reassigns addresses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.bvh.wide import WideBVH

#: Sentinel link target: traversal terminates.
NO_NODE = -1


class EscapeIndex:
    """Skip-pointer arrays over one :class:`~repro.bvh.wide.WideBVH`.

    Holds no mutable traversal state, so one instance is safely shared
    by every ray (same contract as :class:`~repro.bvh.soa.BVHSoA`).
    ``node_lo``/``node_hi`` mirror each node's *own* bounds as ``(n, 3)``
    arrays — stackless traversal tests one box per visit (the node
    itself) instead of the parent testing all children.
    """

    __slots__ = ("first_child", "escape", "node_lo", "node_hi")

    def __init__(self, bvh: "WideBVH") -> None:
        nodes = bvh.nodes
        count = len(nodes)
        first_child: List[int] = [NO_NODE] * count
        escape: List[int] = [NO_NODE] * count
        # Depth-first walk; a node's own escape link is final before its
        # children are visited, so each child's link can inherit it.
        stack = [bvh.root]
        while stack:
            index = stack.pop()
            children = nodes[index].children
            if not children:
                continue
            first_child[index] = children[0]
            for pos, child in enumerate(children):
                escape[child] = (
                    children[pos + 1] if pos + 1 < len(children)
                    else escape[index]
                )
            # Reversed push so children come out in slot order, matching
            # the layout pass's depth-first address assignment.
            for child in reversed(children):
                stack.append(child)
        self.first_child = first_child
        self.escape = escape
        if count:
            self.node_lo = np.ascontiguousarray(
                np.stack([node.bounds.lo for node in nodes])
            )
            self.node_hi = np.ascontiguousarray(
                np.stack([node.bounds.hi for node in nodes])
            )
        else:
            self.node_lo = np.zeros((0, 3))
            self.node_hi = np.zeros((0, 3))

    def dfs_order(self, root: int) -> List[int]:
        """Every node index reachable from ``root``, in link order.

        Follows ``first_child`` unconditionally (the always-hit walk);
        diagnostic/test use.
        """
        order: List[int] = []
        current = root
        while current != NO_NODE:
            order.append(current)
            nxt = self.first_child[current]
            if nxt == NO_NODE:
                nxt = self.escape[current]
            current = nxt
        return order
