"""Structural validation of BVHs.

These checks back the property-based tests: every triangle reachable
exactly once, child bounds contained in parent bounds, addresses unique
and non-overlapping, leaf/internal invariants respected.
"""

from __future__ import annotations

from typing import Set

from repro.errors import BVHError
from repro.bvh.builder import BinaryBVH
from repro.bvh.node import NO_NODE
from repro.bvh.wide import WideBVH

_EPS = 1e-9


def validate_binary(bvh: BinaryBVH) -> None:
    """Raise :class:`BVHError` if the binary BVH violates an invariant."""
    if bvh.root == NO_NODE:
        raise BVHError("binary BVH has no root")
    seen_prims: Set[int] = set()
    stack = [bvh.root]
    visited = 0
    while stack:
        index = stack.pop()
        node = bvh.nodes[index]
        visited += 1
        if node.is_leaf:
            if node.left != NO_NODE or node.right != NO_NODE:
                raise BVHError(f"leaf {index} has children")
            for prim in bvh.leaf_prims(index):
                if int(prim) in seen_prims:
                    raise BVHError(f"primitive {prim} reachable from two leaves")
                seen_prims.add(int(prim))
        else:
            if node.left == NO_NODE or node.right == NO_NODE:
                raise BVHError(f"internal node {index} is missing a child")
            for child in (node.left, node.right):
                child_bounds = bvh.nodes[child].bounds
                if not _contained(node.bounds, child_bounds):
                    raise BVHError(
                        f"child {child} bounds escape parent {index} bounds"
                    )
                stack.append(child)
    if visited != bvh.node_count:
        raise BVHError(
            f"{bvh.node_count - visited} binary nodes unreachable from root"
        )
    if seen_prims != set(range(bvh.scene.triangle_count)):
        raise BVHError("binary BVH does not cover every scene primitive exactly once")


def validate_wide(wide: WideBVH) -> None:
    """Raise :class:`BVHError` if the wide BVH violates an invariant."""
    seen_prims: Set[int] = set()
    stack = [wide.root]
    visited = 0
    addresses: Set[int] = set()
    while stack:
        index = stack.pop()
        node = wide.nodes[index]
        visited += 1
        if node.children and node.prim_ids:
            raise BVHError(f"node {index} is both internal and leaf")
        if node.is_leaf and not node.prim_ids:
            raise BVHError(f"leaf {index} owns no primitives")
        if not node.is_leaf and node.child_count > wide.width:
            raise BVHError(
                f"node {index} has {node.child_count} children, width {wide.width}"
            )
        if node.address in addresses:
            raise BVHError(f"duplicate node address {node.address:#x}")
        addresses.add(node.address)
        for prim in node.prim_ids:
            if prim in seen_prims:
                raise BVHError(f"primitive {prim} reachable from two leaves")
            seen_prims.add(prim)
        for child in node.children:
            child_node = wide.nodes[child]
            if child_node.depth != node.depth + 1:
                raise BVHError(f"node {child} has wrong depth annotation")
            if not _contained(node.bounds, child_node.bounds):
                raise BVHError(f"child {child} bounds escape parent {index} bounds")
            stack.append(child)
    if visited != wide.node_count:
        raise BVHError(f"{wide.node_count - visited} wide nodes unreachable from root")
    if seen_prims != set(range(wide.scene.triangle_count)):
        raise BVHError("wide BVH does not cover every scene primitive exactly once")


def _contained(parent, child) -> bool:
    """Containment with a small epsilon for floating-point slack."""
    return bool(
        (child.lo >= parent.lo - _EPS).all() and (child.hi <= parent.hi + _EPS).all()
    )
