"""Packet (grouped) traversal with a group-local stack (paper VIII-B).

The second family of related work: rays with similar paths traverse the
BVH *together*, sharing one traversal stack per group.  A node is visited
when **any** ray in the group intersects it, so coherent groups amortize
both node fetches and stack entries, while incoherent groups drag every
ray through the union of their paths — the weakness the paper notes
("often struggle with incoherent ray types").

This implementation traverses a whole group per node visit and reports
both the shared-stack activity and the per-ray intersection work, so the
``packet_study`` ablation can compare stack-entry and node-visit counts
against per-ray traversal on coherent (primary) and incoherent (bounce)
waves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.bvh.wide import WideBVH
from repro.geometry.intersect import ray_aabb_intersect_batch, ray_triangle_intersect
from repro.geometry.ray import Ray


@dataclass
class PacketTraceResult:
    """Outcome of tracing one ray group with a shared stack."""

    hit_prims: List[int]
    hit_ts: List[float]
    node_visits: int          # nodes fetched once for the whole group
    stack_pushes: int         # pushes onto the single shared stack
    max_stack_depth: int
    ray_box_tests: int        # per-ray AABB tests actually performed
    ray_tri_tests: int

    @property
    def ray_count(self) -> int:
        """Rays in the group."""
        return len(self.hit_prims)


def packet_trace(bvh: WideBVH, rays: Sequence[Ray]) -> PacketTraceResult:
    """Trace ``rays`` as one packet sharing a single traversal stack.

    Descends into any child hit by at least one live ray (children ordered
    by the earliest entry distance over the group), with per-ray intervals
    shrinking as closest hits are found.
    """
    scene = bvh.scene
    count = len(rays)
    best_t = np.array([ray.t_max for ray in rays])
    best_prim = [-1] * count

    stack: List[int] = []
    node_visits = 0
    pushes = 0
    max_depth = 0
    box_tests = 0
    tri_tests = 0

    current = bvh.root
    while True:
        node = bvh.nodes[current]
        node_visits += 1
        next_node = None
        if node.is_leaf:
            for prim_id in node.prim_ids:
                triangle = scene.triangle(prim_id)
                for i, ray in enumerate(rays):
                    tri_tests += 1
                    clipped = Ray(ray.origin, ray.direction, ray.t_min,
                                  float(best_t[i]))
                    t = ray_triangle_intersect(clipped, triangle)
                    if t is not None and t < best_t[i]:
                        best_t[i] = t
                        best_prim[i] = prim_id
        else:
            los = bvh.child_los[node.index]
            his = bvh.child_his[node.index]
            # Earliest entry over the group decides the visit order.
            group_enter = np.full(node.child_count, np.inf)
            group_hit = np.zeros(node.child_count, dtype=bool)
            for i, ray in enumerate(rays):
                box_tests += node.child_count
                clipped = Ray(ray.origin, ray.direction, ray.t_min,
                              float(best_t[i]))
                hit, t_enter = ray_aabb_intersect_batch(clipped, los, his)
                group_hit |= hit
                group_enter = np.where(
                    hit, np.minimum(group_enter, t_enter), group_enter
                )
            order = [
                (float(group_enter[slot]), node.children[slot])
                for slot in range(node.child_count)
                if group_hit[slot]
            ]
            if order:
                order.sort(key=lambda pair: pair[0])
                next_node = order[0][1]
                for _, child in reversed(order[1:]):
                    stack.append(child)
                    pushes += 1
                max_depth = max(max_depth, len(stack))
        if next_node is None:
            if not stack:
                break
            next_node = stack.pop()
        current = next_node

    return PacketTraceResult(
        hit_prims=best_prim,
        hit_ts=[float(t) if p >= 0 else float("inf")
                for t, p in zip(best_t, best_prim)],
        node_visits=node_visits,
        stack_pushes=pushes,
        max_stack_depth=max_depth,
        ray_box_tests=box_tests,
        ray_tri_tests=tri_tests,
    )
