"""Path-traced workload generation (paper section VII-A).

Generates the ray population of a path-traced frame: camera (primary)
rays, then per-bounce waves of shadow and bounce rays from the previous
wave's hit points.  Waves are kept separate because they are what a GPU
schedules: primary-ray warps are coherent, deeper waves increasingly
divergent — which is precisely the incoherence the paper's stack traffic
analysis depends on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.bvh.wide import WideBVH
from repro.geometry.ray import Ray
from repro.geometry.vec import normalize
from repro.scene.camera import PinholeCamera
from repro.trace.events import RayKind, RayTrace
from repro.trace.rng import DeterministicRng
from repro.trace.tracer import Tracer


@dataclass
class PathTracerWorkload:
    """All ray traces of one path-traced frame, grouped into waves.

    ``waves[0]`` holds primary rays in pixel order; ``waves[i]`` for
    ``i > 0`` alternates shadow and bounce rays spawned by earlier hits.
    ``all_traces`` flattens the waves in scheduling order.
    """

    scene_name: str
    width: int
    height: int
    spp: int
    max_bounces: int
    waves: List[List[RayTrace]] = field(default_factory=list)

    @property
    def all_traces(self) -> List[RayTrace]:
        """Every trace in wave order (the order warps are formed in)."""
        return [trace for wave in self.waves for trace in wave]

    @property
    def ray_count(self) -> int:
        """Total number of rays traced."""
        return sum(len(wave) for wave in self.waves)

    @property
    def total_steps(self) -> int:
        """Total node visits across all rays."""
        return sum(trace.step_count for wave in self.waves for trace in wave)


def _default_camera(bvh: WideBVH, width: int, height: int) -> PinholeCamera:
    """A camera framing the whole scene from a 3/4 view."""
    bounds = bvh.scene.bounds()
    center = bounds.centroid()
    extent = bounds.extent()
    radius = max(float(np.linalg.norm(extent)) / 2.0, 1e-3)
    position = center + np.array([0.8, 0.6, 1.4]) * radius * 1.8
    return PinholeCamera(
        position=position, look_at=center, width=width, height=height
    )


def generate_workload(
    bvh: WideBVH,
    width: int = 16,
    height: int = 16,
    spp: int = 1,
    max_bounces: int = 2,
    seed: int = 0,
    camera: PinholeCamera = None,
    tracer_factory=None,
) -> PathTracerWorkload:
    """Path-trace a frame and return every ray's traversal trace.

    Args:
        bvh: laid-out wide BVH over the scene.
        width, height: image resolution (the paper uses 128x128 or 32x32;
            defaults here are small so full sweeps stay fast — the paper
            itself notes trends are consistent across workload sizes).
        spp: samples per pixel.
        max_bounces: path depth; each bounce wave adds shadow+bounce rays.
        seed: workload RNG seed.
        camera: optional camera override.
        tracer_factory: ``bvh -> tracer`` constructor; defaults to the
            reference :class:`~repro.trace.tracer.Tracer`.  Traversal
            strategies substitute their own tracer here (e.g. the
            escape-link tracer).  The ray *population* is
            tracer-independent as long as closest hits agree: bounce and
            shadow spawning uses only closest-hit results.

    Returns:
        A :class:`PathTracerWorkload` with per-wave traces.
    """
    tracer = (tracer_factory or Tracer)(bvh)
    rng = DeterministicRng(seed)
    scene = bvh.scene
    if camera is None:
        camera = _default_camera(bvh, width, height)
    workload = PathTracerWorkload(
        scene_name=scene.name, width=width, height=height,
        spp=spp, max_bounces=max_bounces,
    )

    next_ray_id = 0
    # Wave 0: primary rays for every sample of every pixel, traced as one
    # wavefront.  Ray ids run in generation order, exactly as the scalar
    # loop assigned them.
    primary_rays: List[Ray] = []
    primary_ids: List[int] = []
    primary_pixels: List[int] = []
    primary_samples: List[int] = []
    for sample in range(spp):
        for pixel in range(camera.pixel_count):
            px, py = pixel % camera.width, pixel // camera.width
            jitter = (
                rng.uniform(pixel, sample, 1),
                rng.uniform(pixel, sample, 2),
            ) if spp > 1 else (0.5, 0.5)
            primary_rays.append(camera.ray_for_pixel(px, py, jitter=jitter))
            primary_ids.append(next_ray_id)
            primary_pixels.append(pixel)
            primary_samples.append(sample)
            next_ray_id += 1
    primary_results = tracer.trace_wave(
        primary_rays, primary_ids, primary_pixels, kind=RayKind.PRIMARY
    )
    workload.waves.append([result.trace for result in primary_results])
    frontier = [  # (pixel, sample, ray, trace_result) hits to extend
        (primary_pixels[i], primary_samples[i], primary_rays[i], result)
        for i, result in enumerate(primary_results)
        if result.hit
    ]

    for bounce in range(max_bounces):
        if not frontier:
            break
        # Spawn this wave's shadow and bounce rays first (ray ids
        # interleave per frontier entry: shadow — when the hit point is
        # not on the light — then bounce), then trace each wave batched.
        shadow_rays: List[Ray] = []
        shadow_ids: List[int] = []
        shadow_pixels: List[int] = []
        bounce_rays: List[Ray] = []
        bounce_ids: List[int] = []
        bounce_pixels: List[int] = []
        bounce_samples: List[int] = []
        for pixel, sample, ray, result in frontier:
            hit_point = ray.at(result.hit_t)
            tri = scene.triangle(result.hit_prim)
            normal = tri.normal()
            # Face the normal toward the incoming ray.
            if float(np.dot(normal, ray.direction)) > 0.0:
                normal = -normal
            # Shadow ray toward the light (any-hit).
            to_light = scene.light_position - hit_point
            distance = float(np.linalg.norm(to_light))
            if distance > 1e-6:
                shadow_rays.append(Ray(
                    origin=hit_point + normal * 1e-4,
                    direction=normalize(to_light),
                    t_max=distance,
                ))
                shadow_ids.append(next_ray_id)
                shadow_pixels.append(pixel)
                next_ray_id += 1
            # Bounce ray in a cosine-weighted random direction.
            direction = rng.cosine_hemisphere(normal, pixel, sample, bounce)
            bounce_rays.append(
                Ray(origin=hit_point + normal * 1e-4, direction=direction)
            )
            bounce_ids.append(next_ray_id)
            bounce_pixels.append(pixel)
            bounce_samples.append(sample)
            next_ray_id += 1
        shadow_results = tracer.trace_wave(
            shadow_rays, shadow_ids, shadow_pixels,
            kind=RayKind.SHADOW, any_hit=True,
        )
        bounce_results = tracer.trace_wave(
            bounce_rays, bounce_ids, bounce_pixels, kind=RayKind.BOUNCE
        )
        if shadow_results:
            workload.waves.append([result.trace for result in shadow_results])
        if bounce_results:
            workload.waves.append([result.trace for result in bounce_results])
        frontier = [
            (bounce_pixels[i], bounce_samples[i], bounce_rays[i], result)
            for i, result in enumerate(bounce_results)
            if result.hit
        ]

    return workload
