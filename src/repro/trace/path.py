"""Path-traced workload generation (paper section VII-A).

Generates the ray population of a path-traced frame: camera (primary)
rays, then per-bounce waves of shadow and bounce rays from the previous
wave's hit points.  Waves are kept separate because they are what a GPU
schedules: primary-ray warps are coherent, deeper waves increasingly
divergent — which is precisely the incoherence the paper's stack traffic
analysis depends on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.bvh.wide import WideBVH
from repro.geometry.ray import Ray
from repro.geometry.vec import normalize
from repro.scene.camera import PinholeCamera
from repro.trace.events import RayKind, RayTrace
from repro.trace.rng import DeterministicRng
from repro.trace.tracer import Tracer


@dataclass
class PathTracerWorkload:
    """All ray traces of one path-traced frame, grouped into waves.

    ``waves[0]`` holds primary rays in pixel order; ``waves[i]`` for
    ``i > 0`` alternates shadow and bounce rays spawned by earlier hits.
    ``all_traces`` flattens the waves in scheduling order.
    """

    scene_name: str
    width: int
    height: int
    spp: int
    max_bounces: int
    waves: List[List[RayTrace]] = field(default_factory=list)

    @property
    def all_traces(self) -> List[RayTrace]:
        """Every trace in wave order (the order warps are formed in)."""
        return [trace for wave in self.waves for trace in wave]

    @property
    def ray_count(self) -> int:
        """Total number of rays traced."""
        return sum(len(wave) for wave in self.waves)

    @property
    def total_steps(self) -> int:
        """Total node visits across all rays."""
        return sum(trace.step_count for wave in self.waves for trace in wave)


def _default_camera(bvh: WideBVH, width: int, height: int) -> PinholeCamera:
    """A camera framing the whole scene from a 3/4 view."""
    bounds = bvh.scene.bounds()
    center = bounds.centroid()
    extent = bounds.extent()
    radius = max(float(np.linalg.norm(extent)) / 2.0, 1e-3)
    position = center + np.array([0.8, 0.6, 1.4]) * radius * 1.8
    return PinholeCamera(
        position=position, look_at=center, width=width, height=height
    )


def generate_workload(
    bvh: WideBVH,
    width: int = 16,
    height: int = 16,
    spp: int = 1,
    max_bounces: int = 2,
    seed: int = 0,
    camera: PinholeCamera = None,
) -> PathTracerWorkload:
    """Path-trace a frame and return every ray's traversal trace.

    Args:
        bvh: laid-out wide BVH over the scene.
        width, height: image resolution (the paper uses 128x128 or 32x32;
            defaults here are small so full sweeps stay fast — the paper
            itself notes trends are consistent across workload sizes).
        spp: samples per pixel.
        max_bounces: path depth; each bounce wave adds shadow+bounce rays.
        seed: workload RNG seed.
        camera: optional camera override.

    Returns:
        A :class:`PathTracerWorkload` with per-wave traces.
    """
    tracer = Tracer(bvh)
    rng = DeterministicRng(seed)
    scene = bvh.scene
    if camera is None:
        camera = _default_camera(bvh, width, height)
    workload = PathTracerWorkload(
        scene_name=scene.name, width=width, height=height,
        spp=spp, max_bounces=max_bounces,
    )

    next_ray_id = 0
    # Wave 0: primary rays for every sample of every pixel.
    primary_wave: List[RayTrace] = []
    frontier = []  # (pixel, sample, ray, trace_result) hits to extend
    for sample in range(spp):
        for pixel in range(camera.pixel_count):
            px, py = pixel % camera.width, pixel // camera.width
            jitter = (
                rng.uniform(pixel, sample, 1),
                rng.uniform(pixel, sample, 2),
            ) if spp > 1 else (0.5, 0.5)
            ray = camera.ray_for_pixel(px, py, jitter=jitter)
            result = tracer.trace(
                ray, ray_id=next_ray_id, pixel=pixel, kind=RayKind.PRIMARY
            )
            next_ray_id += 1
            primary_wave.append(result.trace)
            if result.hit:
                frontier.append((pixel, sample, ray, result))
    workload.waves.append(primary_wave)

    for bounce in range(max_bounces):
        if not frontier:
            break
        shadow_wave: List[RayTrace] = []
        bounce_wave: List[RayTrace] = []
        next_frontier = []
        for pixel, sample, ray, result in frontier:
            hit_point = ray.at(result.hit_t)
            tri = scene.triangle(result.hit_prim)
            normal = tri.normal()
            # Face the normal toward the incoming ray.
            if float(np.dot(normal, ray.direction)) > 0.0:
                normal = -normal
            # Shadow ray toward the light (any-hit).
            to_light = scene.light_position - hit_point
            distance = float(np.linalg.norm(to_light))
            if distance > 1e-6:
                shadow = Ray(
                    origin=hit_point + normal * 1e-4,
                    direction=normalize(to_light),
                    t_max=distance,
                )
                shadow_result = tracer.trace(
                    shadow, ray_id=next_ray_id, pixel=pixel,
                    kind=RayKind.SHADOW, any_hit=True,
                )
                next_ray_id += 1
                shadow_wave.append(shadow_result.trace)
            # Bounce ray in a cosine-weighted random direction.
            direction = rng.cosine_hemisphere(normal, pixel, sample, bounce)
            bounced = Ray(origin=hit_point + normal * 1e-4, direction=direction)
            bounce_result = tracer.trace(
                bounced, ray_id=next_ray_id, pixel=pixel, kind=RayKind.BOUNCE
            )
            next_ray_id += 1
            bounce_wave.append(bounce_result.trace)
            if bounce_result.hit:
                next_frontier.append((pixel, sample, bounced, bounce_result))
        if shadow_wave:
            workload.waves.append(shadow_wave)
        if bounce_wave:
            workload.waves.append(bounce_wave)
        frontier = next_frontier

    return workload
