"""Trace serialization: persist traced workloads to disk and back.

Phase one (path tracing) dominates experiment time, and its output is
configuration-independent — a natural caching boundary.  Traces serialize
to a compact JSON structure; integers dominate so the files compress well
under any external compressor.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence

from repro.errors import TraversalError
from repro.trace.events import NodeKind, RayKind, RayTrace, Step

#: Bump when the on-disk structure changes.
FORMAT_VERSION = 1


def traces_to_dict(traces: Sequence[RayTrace]) -> dict:
    """Encode traces as a JSON-ready dict."""
    encoded = []
    for trace in traces:
        encoded.append(
            {
                "ray_id": int(trace.ray_id),
                "pixel": int(trace.pixel),
                "kind": trace.kind.value,
                # int()/float() coercion: hit results may carry numpy scalars.
                "hit_prim": int(trace.hit_prim),
                "hit_t": float(trace.hit_t) if trace.hit_prim >= 0 else None,
                # Steps as parallel arrays keep the JSON compact.
                "addresses": [int(s.address) for s in trace.steps],
                "sizes": [int(s.size_bytes) for s in trace.steps],
                "kinds": [1 if s.kind is NodeKind.LEAF else 0 for s in trace.steps],
                "tests": [int(s.tests) for s in trace.steps],
                "pushes": [[int(p) for p in s.pushes] for s in trace.steps],
                "popped": [1 if s.popped else 0 for s in trace.steps],
            }
        )
    return {"version": FORMAT_VERSION, "traces": encoded}


def traces_from_dict(data: dict) -> List[RayTrace]:
    """Decode traces written by :func:`traces_to_dict`."""
    if data.get("version") != FORMAT_VERSION:
        raise TraversalError(
            f"unsupported trace format version {data.get('version')!r} "
            f"(expected {FORMAT_VERSION})"
        )
    traces: List[RayTrace] = []
    for record in data["traces"]:
        trace = RayTrace(
            ray_id=record["ray_id"],
            pixel=record["pixel"],
            kind=RayKind(record["kind"]),
        )
        trace.hit_prim = record["hit_prim"]
        trace.hit_t = (
            record["hit_t"] if record["hit_t"] is not None else float("inf")
        )
        fields = zip(
            record["addresses"], record["sizes"], record["kinds"],
            record["tests"], record["pushes"], record["popped"],
        )
        for address, size, kind, tests, pushes, popped in fields:
            trace.steps.append(
                Step(
                    address=address,
                    size_bytes=size,
                    kind=NodeKind.LEAF if kind else NodeKind.INTERNAL,
                    tests=tests,
                    pushes=list(pushes),
                    popped=bool(popped),
                )
            )
        trace.validate()
        traces.append(trace)
    return traces


def save_traces(traces: Sequence[RayTrace], path) -> Path:
    """Write traces to a JSON file; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(traces_to_dict(traces)))
    return path


def load_traces(path) -> List[RayTrace]:
    """Read traces written by :func:`save_traces`."""
    return traces_from_dict(json.loads(Path(path).read_text()))
