"""Deterministic random streams for path tracing.

Every random decision in the workload (bounce directions, sub-pixel
jitter) is keyed on ``(seed, pixel, bounce, sample)`` through a counter
hash, so traces are bit-identical across runs and independent of
generation order — a requirement for the two-phase simulation design.
"""

from __future__ import annotations

from math import cos, pi, sin, sqrt
from typing import Tuple

import numpy as np

from repro.geometry.vec import Vec3, cross, normalize

_MASK64 = (1 << 64) - 1


def _splitmix64(state: int) -> int:
    """One round of SplitMix64 — a well-mixed 64-bit hash."""
    state = (state + 0x9E3779B97F4A7C15) & _MASK64
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


class DeterministicRng:
    """Counter-based RNG: hash of a key tuple, no mutable stream state."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed & _MASK64

    def uniform(self, *key: int) -> float:
        """A float in ``[0, 1)`` determined by ``(seed, *key)``."""
        state = self.seed
        for part in key:
            state = _splitmix64(state ^ (part & _MASK64))
        return (state >> 11) / float(1 << 53)

    def uniform_pair(self, *key: int) -> Tuple[float, float]:
        """Two independent uniforms for the same key."""
        return self.uniform(*key, 0xA5A5), self.uniform(*key, 0x5A5A)

    def cosine_hemisphere(self, normal: Vec3, *key: int) -> Vec3:
        """Cosine-weighted direction in the hemisphere around ``normal``."""
        u1, u2 = self.uniform_pair(*key)
        r = sqrt(u1)
        theta = 2.0 * pi * u2
        x = r * cos(theta)
        y = r * sin(theta)
        z = sqrt(max(0.0, 1.0 - u1))
        # Build an orthonormal basis around the normal.
        helper = np.array([1.0, 0.0, 0.0]) if abs(normal[0]) < 0.9 else np.array([0.0, 1.0, 0.0])
        tangent = normalize(cross(normal, helper))
        bitangent = cross(normal, tangent)
        return normalize(x * tangent + y * bitangent + z * normal)
