"""Warp formation orderings.

Warps are formed from consecutive rays, so ray order controls intra-warp
coherence: coherent lanes visit the same BVH nodes (coalesced fetches,
aligned stack behaviour), divergent lanes scatter.  Real GPUs rasterize
pixels in small tiles for exactly this reason; these helpers reorder a
primary wave into tile-major order so the effect can be measured (see the
``warp_formation_study`` ablation).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import TraversalError
from repro.trace.events import RayTrace


def traversal_locality_key(trace: RayTrace, key_depth: int = 8) -> tuple:
    """A ray's predicted-locality signature: its first node addresses.

    Rays whose early traversals touch the same nodes fetch the same
    cache lines and push the same children when scheduled into one warp;
    the address prefix is the cheapest proxy for that (the treelet id of
    ray-reordering hardware proposals, e.g. Meister et al. 2506.11273).
    """
    return tuple(step.address for step in trace.steps[:key_depth])


def reorder_wave_by_locality(
    wave: Sequence[RayTrace],
    key_depth: int = 8,
    window: int = 0,
) -> List[RayTrace]:
    """Stable-sort one wave so rays sharing an early traversal footprint
    become warp neighbours.

    ``window > 0`` models a finite reorder buffer: the wave is split into
    consecutive ``window``-ray segments and each segment is sorted
    independently (rays never move further than the buffer can hold).
    ``window = 0`` is the idealized whole-wave sort.  The sort is stable,
    so the result is a deterministic permutation of ``wave`` — the same
    multiset of traces, only the warp packing changes.
    """
    if window < 0:
        raise TraversalError("reorder window must be >= 0")
    traces = list(wave)
    span = window if window else len(traces)
    ordered: List[RayTrace] = []
    for start in range(0, len(traces), max(span, 1)):
        segment = traces[start : start + span]
        segment.sort(key=lambda trace: traversal_locality_key(trace, key_depth))
        ordered.extend(segment)
    return ordered


def tiled_pixel_order(
    width: int, height: int, tile_w: int = 8, tile_h: int = 4
) -> List[int]:
    """Pixel indices in tile-major order (tiles scanned row-major).

    A 8x4 tile holds exactly one 32-lane warp's worth of pixels — the
    classic fragment-quad-style mapping.
    """
    if width <= 0 or height <= 0 or tile_w <= 0 or tile_h <= 0:
        raise TraversalError("tiled_pixel_order needs positive dimensions")
    order: List[int] = []
    for tile_y in range(0, height, tile_h):
        for tile_x in range(0, width, tile_w):
            for y in range(tile_y, min(tile_y + tile_h, height)):
                for x in range(tile_x, min(tile_x + tile_w, width)):
                    order.append(y * width + x)
    return order


def reorder_wave_tiled(
    wave: Sequence[RayTrace],
    width: int,
    height: int,
    tile_w: int = 8,
    tile_h: int = 4,
) -> List[RayTrace]:
    """Reorder one wave of pixel-indexed traces into tile-major order.

    Traces whose pixels repeat (multi-sample) keep their relative order;
    traces with pixels outside the image are appended at the end.
    """
    by_pixel: dict = {}
    for trace in wave:
        by_pixel.setdefault(trace.pixel, []).append(trace)
    ordered: List[RayTrace] = []
    for pixel in tiled_pixel_order(width, height, tile_w, tile_h):
        ordered.extend(by_pixel.pop(pixel, ()))
    # Out-of-image leftovers append in first-seen (insertion) order — a
    # documented part of this function's contract, not hash order.
    # simlint: disable=SL103
    for leftovers in by_pixel.values():
        ordered.extend(leftovers)
    return ordered
