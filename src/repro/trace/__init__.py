"""Functional ray traversal producing stack-event traces.

The reproduction runs in two phases (DESIGN.md section 5).  This package is
phase one: a deterministic path tracer walks each ray through the wide BVH
with a depth-first traversal and records every node visit, stack push and
stack pop.  The logical event stream is the same for every stack
architecture; the timing phase (``repro.gpu``) replays it against a
particular stack design to see where entries physically live and what
memory traffic that causes.
"""

from repro.trace.events import RayKind, Step, RayTrace
from repro.trace.rng import DeterministicRng
from repro.trace.tracer import Tracer, TraceResult
from repro.trace.path import PathTracerWorkload, generate_workload
from repro.trace.depth import DepthStats, depth_statistics, depth_histogram

__all__ = [
    "RayKind",
    "Step",
    "RayTrace",
    "DeterministicRng",
    "Tracer",
    "TraceResult",
    "PathTracerWorkload",
    "generate_workload",
    "DepthStats",
    "depth_statistics",
    "depth_histogram",
]
