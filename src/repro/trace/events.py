"""Trace event records.

A :class:`RayTrace` is the complete record of one ray's traversal: an
ordered list of :class:`Step` objects.  Each step corresponds to one node
visit by the RT unit and carries the stack activity that visit caused:

* ``pushes`` — child node addresses pushed (far-to-near, so the nearest
  pushed sibling pops first);
* ``popped`` — whether the *next* node was obtained by popping the stack
  (``False`` when traversal continued directly into the nearest child, or
  when this is the final step).

Replaying the steps against any stack model therefore reconstructs the
exact push/pop sequence of the paper's Fig. 3 walkthrough.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Sequence


class RayKind(Enum):
    """What generated the ray (affects warp coherence, not traversal)."""

    PRIMARY = "primary"
    SHADOW = "shadow"
    BOUNCE = "bounce"


class NodeKind(Enum):
    """What the RT unit does at this node."""

    INTERNAL = "internal"  # ray-box tests against children
    LEAF = "leaf"          # ray-triangle tests


@dataclass
class Step:
    """One node visit in a ray's traversal."""

    __slots__ = ("address", "size_bytes", "kind", "tests", "pushes", "popped")

    address: int
    size_bytes: int
    kind: NodeKind
    tests: int           # number of box or triangle tests performed
    pushes: List[int]    # node addresses pushed onto the traversal stack
    popped: bool         # next node came from a stack pop


@dataclass
class RayTrace:
    """The full traversal record of one ray."""

    ray_id: int
    pixel: int
    kind: RayKind
    steps: List[Step] = field(default_factory=list)
    hit_prim: int = -1
    hit_t: float = float("inf")

    @property
    def hit(self) -> bool:
        """True when the ray found a closest hit."""
        return self.hit_prim >= 0

    @property
    def step_count(self) -> int:
        """Number of node visits."""
        return len(self.steps)

    def stack_depth_profile(self) -> List[int]:
        """Stack depth recorded after every push and pop (paper Fig. 5).

        The profile starts from an empty stack; each push appends
        ``depth + 1`` and each pop appends ``depth - 1``.
        """
        profile: List[int] = []
        depth = 0
        for step in self.steps:
            for _ in step.pushes:
                depth += 1
                profile.append(depth)
            if step.popped:
                depth -= 1
                profile.append(depth)
        return profile

    def max_stack_depth(self) -> int:
        """Peak stack depth over the traversal."""
        peak = 0
        depth = 0
        for step in self.steps:
            depth += len(step.pushes)
            peak = max(peak, depth)
            if step.popped:
                depth -= 1
        return peak

    def validate(self) -> None:
        """Check push/pop balance (depth never negative).

        Raises:
            repro.errors.TraversalError: on an inconsistent event stream.
        """
        from repro.errors import TraversalError

        depth = 0
        for i, step in enumerate(self.steps):
            depth += len(step.pushes)
            if step.popped:
                depth -= 1
            if depth < 0:
                raise TraversalError(
                    f"ray {self.ray_id}: stack depth negative at step {i}"
                )


def total_steps(traces: Sequence[RayTrace]) -> int:
    """Total node visits across a collection of traces."""
    return sum(trace.step_count for trace in traces)
