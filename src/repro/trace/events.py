"""Trace event records.

A :class:`RayTrace` is the complete record of one ray's traversal: an
ordered list of :class:`Step` objects.  Each step corresponds to one node
visit by the RT unit and carries the stack activity that visit caused:

* ``pushes`` — child node addresses pushed (far-to-near, so the nearest
  pushed sibling pops first);
* ``popped`` — whether the *next* node was obtained by popping the stack
  (``False`` when traversal continued directly into the nearest child, or
  when this is the final step).

Replaying the steps against any stack model therefore reconstructs the
exact push/pop sequence of the paper's Fig. 3 walkthrough.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Sequence


class RayKind(Enum):
    """What generated the ray (affects warp coherence, not traversal)."""

    PRIMARY = "primary"
    SHADOW = "shadow"
    BOUNCE = "bounce"


class NodeKind(Enum):
    """What the RT unit does at this node."""

    INTERNAL = "internal"  # ray-box tests against children
    LEAF = "leaf"          # ray-triangle tests


@dataclass
class Step:
    """One node visit in a ray's traversal."""

    __slots__ = ("address", "size_bytes", "kind", "tests", "pushes", "popped")

    address: int
    size_bytes: int
    kind: NodeKind
    tests: int           # number of box or triangle tests performed
    pushes: List[int]    # node addresses pushed onto the traversal stack
    popped: bool         # next node came from a stack pop


class RayTrace:
    """The full traversal record of one ray.

    A plain ``__slots__`` class rather than a dataclass: workloads hold
    hundreds of thousands of these and ``dataclass(slots=True)`` needs
    Python 3.10 while the package supports 3.9.  The constructor and
    equality semantics match the dataclass it replaced.
    """

    #: ``_vector_cache`` holds derived, recomputable artifacts of the
    #: vector timing backend (:mod:`repro.gpu.vector`): the SoA mirror
    #: and per-warp replay plans.  It is excluded from pickling and from
    #: equality — two traces with equal event streams are equal whether
    #: or not either has been vector-planned.
    __slots__ = (
        "ray_id", "pixel", "kind", "steps", "hit_prim", "hit_t",
        "_vector_cache",
    )

    #: Slots that carry trace *content* (pickled, compared, repr'd);
    #: everything else is a derived cache rebuilt on demand.
    _STATE_SLOTS = ("ray_id", "pixel", "kind", "steps", "hit_prim", "hit_t")

    def __init__(
        self,
        ray_id: int,
        pixel: int,
        kind: RayKind,
        steps: List[Step] = None,
        hit_prim: int = -1,
        hit_t: float = float("inf"),
    ) -> None:
        self.ray_id = ray_id
        self.pixel = pixel
        self.kind = kind
        self.steps = [] if steps is None else steps
        self.hit_prim = hit_prim
        self.hit_t = hit_t

    def __getstate__(self) -> dict:
        return {name: getattr(self, name) for name in self._STATE_SLOTS}

    def __setstate__(self, state: dict) -> None:
        for name in self._STATE_SLOTS:
            setattr(self, name, state[name])

    def __repr__(self) -> str:
        return (
            f"RayTrace(ray_id={self.ray_id!r}, pixel={self.pixel!r}, "
            f"kind={self.kind!r}, steps={self.steps!r}, "
            f"hit_prim={self.hit_prim!r}, hit_t={self.hit_t!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RayTrace):
            return NotImplemented
        return (
            self.ray_id == other.ray_id
            and self.pixel == other.pixel
            and self.kind == other.kind
            and self.steps == other.steps
            and self.hit_prim == other.hit_prim
            and self.hit_t == other.hit_t
        )

    @property
    def hit(self) -> bool:
        """True when the ray found a closest hit."""
        return self.hit_prim >= 0

    @property
    def step_count(self) -> int:
        """Number of node visits."""
        return len(self.steps)

    def stack_depth_profile(self) -> List[int]:
        """Stack depth recorded after every push and pop (paper Fig. 5).

        The profile starts from an empty stack; each push appends
        ``depth + 1`` and each pop appends ``depth - 1``.
        """
        profile: List[int] = []
        depth = 0
        for step in self.steps:
            for _ in step.pushes:
                depth += 1
                profile.append(depth)
            if step.popped:
                depth -= 1
                profile.append(depth)
        return profile

    def max_stack_depth(self) -> int:
        """Peak stack depth over the traversal."""
        peak = 0
        depth = 0
        for step in self.steps:
            depth += len(step.pushes)
            peak = max(peak, depth)
            if step.popped:
                depth -= 1
        return peak

    def validate(self) -> None:
        """Check push/pop balance (depth never negative).

        Raises:
            repro.errors.TraversalError: on an inconsistent event stream.
        """
        from repro.errors import TraversalError

        depth = 0
        for i, step in enumerate(self.steps):
            depth += len(step.pushes)
            if step.popped:
                depth -= 1
            if depth < 0:
                raise TraversalError(
                    f"ray {self.ray_id}: stack depth negative at step {i}"
                )


def total_steps(traces: Sequence[RayTrace]) -> int:
    """Total node visits across a collection of traces."""
    return sum(trace.step_count for trace in traces)
