"""Stack-depth statistics over traces (paper Figs. 4, 5 and 10)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.trace.events import RayTrace


@dataclass
class DepthStats:
    """Max/average/median stack depth over a workload (Fig. 4 bars)."""

    max_depth: int
    avg_depth: float
    median_depth: float
    sample_count: int


def depth_statistics(traces: Sequence[RayTrace]) -> DepthStats:
    """Depth recorded at every push and pop across all rays (paper III-A)."""
    samples: List[int] = []
    for trace in traces:
        samples.extend(trace.stack_depth_profile())
    if not samples:
        return DepthStats(max_depth=0, avg_depth=0.0, median_depth=0.0, sample_count=0)
    arr = np.asarray(samples)
    return DepthStats(
        max_depth=int(arr.max()),
        avg_depth=float(arr.mean()),
        median_depth=float(np.median(arr)),
        sample_count=len(samples),
    )


def depth_histogram(
    traces: Sequence[RayTrace], max_bucket: int = 40
) -> Dict[int, int]:
    """Counts of each observed stack depth (Fig. 5's distribution)."""
    histogram: Dict[int, int] = {}
    for trace in traces:
        for depth in trace.stack_depth_profile():
            bucket = min(depth, max_bucket)
            histogram[bucket] = histogram.get(bucket, 0) + 1
    return histogram


def bucket_fractions(
    histogram: Dict[int, int],
    buckets: Sequence[Tuple[int, int]] = ((1, 8), (9, 16), (17, 10**9)),
) -> List[float]:
    """Fraction of depth samples falling in each ``[lo, hi]`` bucket.

    The paper's Fig. 5 summary uses 1-8 / 9-16 / >16 (17.0% in 9-16,
    1.9% above 16).  Depth-0 samples (a pop emptying the stack) are not
    counted, matching the paper's 'required entries' framing.
    """
    total = sum(count for depth, count in histogram.items() if depth >= 1)
    if total == 0:
        return [0.0 for _ in buckets]
    fractions = []
    for lo, hi in buckets:
        in_bucket = sum(
            count for depth, count in histogram.items() if lo <= depth <= hi
        )
        fractions.append(in_bucket / total)
    return fractions


def per_thread_depth_series(traces: Sequence[RayTrace]) -> List[List[int]]:
    """Per-ray depth-at-each-access series (the rows of Fig. 10's heatmap)."""
    return [trace.stack_depth_profile() for trace in traces]
