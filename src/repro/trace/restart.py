"""Stackless restart-trail traversal (Laine 2010, paper section VIII-A).

The paper's related work positions SMS against *stackless* methods: they
eliminate traversal-stack traffic entirely but pay for it with redundant
node visits — every backtrack restarts from the root, replaying the path
recorded in a small per-level trail.  This module implements the pure
restart-trail variant for wide BVHs so the trade-off can be measured:
:func:`restart_trail_trace` returns both the hit result and the visit
counts, and ``repro.experiments.ablations`` compares its traversal-step
overhead against the stack-based architectures.

The trail stores, per level of the current path, the next child slot to
consider (fixed slot order, so the trail stays valid as the closest-hit
distance shrinks).  Per-level state is a handful of bits — the storage
economy that motivates stackless designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.bvh.wide import WideBVH
from repro.geometry.intersect import ray_aabb_intersect_batch, ray_triangle_intersect
from repro.geometry.ray import Ray


@dataclass
class RestartTraceResult:
    """Outcome of one restart-trail traversal."""

    hit_prim: int
    hit_t: float
    node_visits: int     # total node visits including restart replays
    restarts: int        # how many times traversal restarted from the root
    max_trail_depth: int

    @property
    def hit(self) -> bool:
        """True when the ray intersected a primitive."""
        return self.hit_prim >= 0


def restart_trail_trace(bvh: WideBVH, ray: Ray) -> RestartTraceResult:
    """Closest-hit traversal with no stack: a per-level trail plus restarts.

    Children are considered in fixed slot order (not front-to-back), as
    the trail must index a stable sequence while the search interval
    shrinks.  Every completed subtree advances the parent's trail entry
    and restarts descent from the root; nodes revisited during the replay
    are counted in ``node_visits`` — the overhead stack-based traversal
    avoids.
    """
    scene = bvh.scene
    best_t = ray.t_max
    best_prim = -1
    trail: List[int] = []
    node_visits = 0
    restarts = 0
    max_depth = 0

    while True:
        node = bvh.nodes[bvh.root]
        depth = 0
        ascended = False
        while not ascended:
            node_visits += 1
            if depth == len(trail):
                trail.append(0)
            max_depth = max(max_depth, depth + 1)
            if node.is_leaf:
                for prim_id in node.prim_ids:
                    clipped = Ray(ray.origin, ray.direction, ray.t_min, best_t)
                    t = ray_triangle_intersect(clipped, scene.triangle(prim_id))
                    if t is not None and t < best_t:
                        best_t = t
                        best_prim = prim_id
                ascended = True
                break
            clipped = Ray(ray.origin, ray.direction, ray.t_min, best_t)
            hit_mask, _ = ray_aabb_intersect_batch(
                clipped, bvh.child_los[node.index], bvh.child_his[node.index]
            )
            slot = trail[depth]
            while slot < node.child_count and not hit_mask[slot]:
                slot += 1
            trail[depth] = slot
            if slot >= node.child_count:
                ascended = True
                break
            node = bvh.nodes[node.children[slot]]
            depth += 1

        # The subtree rooted at `depth` is complete: advance the parent's
        # trail entry and replay from the root (or finish at the top).
        del trail[depth + 1 :]
        if depth == 0:
            break
        trail.pop()
        trail[depth - 1] += 1
        restarts += 1

    return RestartTraceResult(
        hit_prim=best_prim,
        hit_t=best_t if best_prim >= 0 else float("inf"),
        node_visits=node_visits,
        restarts=restarts,
        max_trail_depth=max_depth,
    )


def short_stack_restart_trace(
    bvh: WideBVH, ray: Ray, stack_entries: int = 4
) -> RestartTraceResult:
    """Laine's combined scheme: a bounded short stack plus the trail.

    Backtracking pops from a ``stack_entries``-deep stack when possible;
    pushes into a full stack drop the *oldest* entry (the shallowest
    pending sibling), and an empty-stack backtrack falls back to a
    trail-guided restart, which rediscovers any dropped siblings.  With a
    large enough stack no restart ever happens and visit counts equal the
    fixed-order DFS; with ``stack_entries = 0`` the scheme degenerates to
    :func:`restart_trail_trace`.

    This is the approach the paper's section VIII-A positions SMS against:
    it removes stack *memory traffic* at the cost of replayed node visits.
    """
    scene = bvh.scene
    best_t = ray.t_max
    best_prim = -1
    trail: List[int] = []
    # Bounded stack of (node_index, depth, child_slot); drops at the bottom.
    stack: List[tuple] = []
    node_visits = 0
    restarts = 0
    max_depth = 0
    ever_dropped = False

    node = bvh.nodes[bvh.root]
    depth = 0
    replay_limit = 0  # depths below this follow the trail directly
    while True:
        descend_target = None
        if depth == len(trail):
            trail.append(0)
        max_depth = max(max_depth, depth + 1)
        if depth < replay_limit - 1:
            # Trail replay after a restart: follow the recorded slot.
            node_visits += 1
            descend_target = bvh.nodes[node.children[trail[depth]]]
        else:
            node_visits += 1
            if node.is_leaf:
                for prim_id in node.prim_ids:
                    clipped = Ray(ray.origin, ray.direction, ray.t_min, best_t)
                    t = ray_triangle_intersect(clipped, scene.triangle(prim_id))
                    if t is not None and t < best_t:
                        best_t = t
                        best_prim = prim_id
            else:
                clipped = Ray(ray.origin, ray.direction, ray.t_min, best_t)
                hit_mask, _ = ray_aabb_intersect_batch(
                    clipped, bvh.child_los[node.index], bvh.child_his[node.index]
                )
                slot = trail[depth]
                while slot < node.child_count and not hit_mask[slot]:
                    slot += 1
                trail[depth] = slot
                if slot < node.child_count:
                    # Push the remaining hit siblings (nearest-slot pops
                    # first); drop the oldest entries beyond capacity.
                    for later in range(node.child_count - 1, slot, -1):
                        if hit_mask[later]:
                            stack.append(
                                (node.children[later], depth + 1, later)
                            )
                            if len(stack) > stack_entries:
                                # Drop the oldest (shallowest/farthest-slot)
                                # entry; the trail rediscovers it later.
                                stack.pop(0)
                                ever_dropped = True
                    descend_target = bvh.nodes[node.children[slot]]
        if descend_target is not None:
            node = descend_target
            depth += 1
            continue

        # Subtree at `depth` complete: backtrack — preferably by popping
        # the short stack; on underflow, by a trail-guided restart (which
        # also rediscovers any entries the bounded stack dropped).
        del trail[depth + 1 :]
        if stack:
            popped_node, popped_depth, popped_slot = stack.pop()
            del trail[popped_depth:]
            trail[popped_depth - 1] = popped_slot
            node = bvh.nodes[popped_node]
            depth = popped_depth
            replay_limit = 0
            continue
        if not ever_dropped or depth == 0:
            # A never-overflowed stack is exhaustive: empty means done.
            # (At the root the trail itself is exhausted either way.)
            break
        trail.pop()
        trail[-1] += 1
        restarts += 1
        replay_limit = len(trail)
        node = bvh.nodes[bvh.root]
        depth = 0

    return RestartTraceResult(
        hit_prim=best_prim,
        hit_t=best_t if best_prim >= 0 else float("inf"),
        node_visits=node_visits,
        restarts=restarts,
        max_trail_depth=max_depth,
    )
