"""Depth-first wide-BVH traversal with stack-event recording.

Implements the traversal loop of paper section II-A / Fig. 3: visit a node,
test the ray against all child bounds, continue into the nearest hit child
and push the remaining hit children (far-to-near); at leaves run
ray-triangle tests; obtain the next node by popping.  Closest-hit rays
shrink ``t_max`` as hits are found; any-hit (shadow) rays terminate on the
first triangle hit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.bvh.wide import WideBVH
from repro.geometry.intersect import ray_aabb_intersect_batch, ray_triangle_intersect
from repro.geometry.ray import Ray
from repro.trace.events import NodeKind, RayKind, RayTrace, Step


@dataclass
class TraceResult:
    """Outcome of tracing one ray."""

    trace: RayTrace
    hit_prim: int
    hit_t: float

    @property
    def hit(self) -> bool:
        """True when the ray intersected a primitive."""
        return self.hit_prim >= 0


class Tracer:
    """Traces rays through one wide BVH, emitting :class:`RayTrace` records."""

    def __init__(self, bvh: WideBVH) -> None:
        self.bvh = bvh
        self.scene = bvh.scene

    def trace(
        self,
        ray: Ray,
        ray_id: int = 0,
        pixel: int = 0,
        kind: RayKind = RayKind.PRIMARY,
        any_hit: bool = False,
    ) -> TraceResult:
        """Trace one ray to its closest hit (or first hit when ``any_hit``).

        Returns a :class:`TraceResult` whose trace carries the full stack
        event stream.
        """
        bvh = self.bvh
        trace = RayTrace(ray_id=ray_id, pixel=pixel, kind=kind)
        best_t = ray.t_max
        best_prim = -1

        # Traversal stack of node indices (the *logical* stack; physical
        # placement is the timing model's concern).
        stack: List[int] = []
        current: Optional[int] = bvh.root
        done = False
        while not done:
            node = bvh.nodes[current]
            pushes: List[int] = []
            if node.is_leaf:
                node_kind = NodeKind.LEAF
                tests = len(node.prim_ids)
                for prim_id in node.prim_ids:
                    t = ray_triangle_intersect(
                        Ray(ray.origin, ray.direction, ray.t_min, best_t),
                        self.scene.triangle(prim_id),
                    )
                    if t is not None and t < best_t:
                        best_t = t
                        best_prim = prim_id
                        if any_hit:
                            break
                next_node = None
            else:
                node_kind = NodeKind.INTERNAL
                clipped = Ray(ray.origin, ray.direction, ray.t_min, best_t)
                hit_mask, t_enter = ray_aabb_intersect_batch(
                    clipped, bvh.child_los[node.index], bvh.child_his[node.index]
                )
                tests = node.child_count
                hit_children = [
                    (float(t_enter[i]), node.children[i])
                    for i in range(node.child_count)
                    if hit_mask[i]
                ]
                if hit_children:
                    # Nearest child visited next; others pushed far-to-near
                    # so the nearest remaining sibling pops first.
                    hit_children.sort(key=lambda pair: pair[0])
                    next_node = hit_children[0][1]
                    for _, child_index in reversed(hit_children[1:]):
                        pushes.append(bvh.nodes[child_index].address)
                        stack.append(child_index)
                else:
                    next_node = None

            popped = False
            if next_node is None:
                if any_hit and best_prim >= 0:
                    done = True  # shadow ray satisfied; abandon the stack
                elif stack:
                    next_node = stack.pop()
                    popped = True
                else:
                    done = True
            trace.steps.append(
                Step(
                    address=node.address,
                    size_bytes=node.size_bytes,
                    kind=node_kind,
                    tests=tests,
                    pushes=pushes,
                    popped=popped,
                )
            )
            if next_node is not None:
                current = next_node

        trace.hit_prim = best_prim
        trace.hit_t = best_t if best_prim >= 0 else float("inf")
        return TraceResult(trace=trace, hit_prim=best_prim, hit_t=trace.hit_t)
