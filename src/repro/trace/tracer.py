"""Depth-first wide-BVH traversal with stack-event recording.

Implements the traversal loop of paper section II-A / Fig. 3: visit a node,
test the ray against all child bounds, continue into the nearest hit child
and push the remaining hit children (far-to-near); at leaves run
ray-triangle tests; obtain the next node by popping.  Closest-hit rays
shrink ``t_max`` as hits are found; any-hit (shadow) rays terminate on the
first triangle hit.

Two tracing entry points share one set of kernels:

* :meth:`Tracer.trace` — the scalar reference: one ray, one DFS, all data
  read from the BVH's structure-of-arrays mirror (no per-visit slicing or
  ``Ray`` boxing).
* :meth:`Tracer.trace_wave` — the batched path: a whole wavefront of rays
  streamed through the DFS node-major.  Each round groups active rays by
  the node they currently occupy and intersects the group against that
  node's children in a single ``(m, k, 3)`` slab call; rays fall back to
  the per-ray kernel only where divergence leaves a group of one.  The
  per-ray push/pop bookkeeping stays scalar, so the emitted event stream
  is byte-identical to :meth:`Tracer.trace` — traversal decisions depend
  only on per-ray arithmetic, and the broadcast slab test evaluates the
  exact same IEEE expressions as the scalar one.
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import itemgetter
from typing import List, Optional, Sequence

import numpy as np

from repro.bvh.wide import WideBVH
from repro.geometry.intersect import moeller_trumbore, slab_test
from repro.geometry.ray import Ray
from repro.trace.events import NodeKind, RayKind, RayTrace, Step

#: Node groups at least this large take the broadcast slab path; smaller
#: groups use the per-ray kernel (same bits, less numpy overhead).
_BATCH_THRESHOLD = 2


@dataclass
class TraceResult:
    """Outcome of tracing one ray."""

    trace: RayTrace
    hit_prim: int
    hit_t: float

    @property
    def hit(self) -> bool:
        """True when the ray intersected a primitive."""
        return self.hit_prim >= 0


class Tracer:
    """Traces rays through one wide BVH, emitting :class:`RayTrace` records."""

    def __init__(self, bvh: WideBVH) -> None:
        self.bvh = bvh
        self.scene = bvh.scene
        self.soa = bvh.soa()

    def trace(
        self,
        ray: Ray,
        ray_id: int = 0,
        pixel: int = 0,
        kind: RayKind = RayKind.PRIMARY,
        any_hit: bool = False,
    ) -> TraceResult:
        """Trace one ray to its closest hit (or first hit when ``any_hit``).

        Returns a :class:`TraceResult` whose trace carries the full stack
        event stream.
        """
        soa = self.soa
        node_address = soa.node_address
        node_size = soa.node_size_bytes
        node_is_leaf = soa.node_is_leaf
        child_offset = soa.child_offset
        child_count = soa.child_count
        child_index = soa.child_index
        child_address = soa.child_address
        child_lo = soa.child_lo
        child_hi = soa.child_hi
        prim_offset = soa.prim_offset
        prim_count = soa.prim_count
        prim_ids = soa.prim_ids
        tri_a = soa.tri_a
        tri_e1 = soa.tri_e1
        tri_e2 = soa.tri_e2
        tri_e1_f = soa.tri_e1_f
        tri_e2_f = soa.tri_e2_f

        origin = ray.origin
        direction = ray.direction
        inv = ray.inv_direction
        d0 = float(direction[0])
        d1 = float(direction[1])
        d2 = float(direction[2])
        t_min = ray.t_min
        best_t = ray.t_max
        best_prim = -1

        trace = RayTrace(ray_id=ray_id, pixel=pixel, kind=kind)
        steps = trace.steps
        # Traversal stack of node indices (the *logical* stack; physical
        # placement is the timing model's concern).
        stack: List[int] = []
        current: int = self.bvh.root
        done = False
        with np.errstate(invalid="ignore"):
            while not done:
                pushes: List[int] = []
                if node_is_leaf[current]:
                    node_kind = NodeKind.LEAF
                    p0 = prim_offset[current]
                    tests = prim_count[current]
                    for prim_id in prim_ids[p0 : p0 + tests]:
                        t = moeller_trumbore(
                            origin, d0, d1, d2, direction, t_min, best_t,
                            tri_a[prim_id], tri_e1[prim_id], tri_e2[prim_id],
                            tri_e1_f[prim_id], tri_e2_f[prim_id],
                        )
                        if t is not None and t < best_t:
                            best_t = t
                            best_prim = prim_id
                            if any_hit:
                                break
                    next_node: Optional[int] = None
                else:
                    node_kind = NodeKind.INTERNAL
                    c0 = child_offset[current]
                    tests = child_count[current]
                    hit_mask, t_enter = slab_test(
                        origin, inv, t_min, best_t,
                        child_lo[c0 : c0 + tests], child_hi[c0 : c0 + tests],
                    )
                    hits = hit_mask.tolist()
                    enters = t_enter.tolist()
                    hit_children = [
                        (enters[i], child_index[c0 + i], child_address[c0 + i])
                        for i in range(tests)
                        if hits[i]
                    ]
                    if hit_children:
                        # Nearest child visited next; others pushed far-to-near
                        # so the nearest remaining sibling pops first.
                        hit_children.sort(key=itemgetter(0))
                        next_node = hit_children[0][1]
                        for pos in range(len(hit_children) - 1, 0, -1):
                            pushes.append(hit_children[pos][2])
                            stack.append(hit_children[pos][1])
                    else:
                        next_node = None

                popped = False
                if next_node is None:
                    if any_hit and best_prim >= 0:
                        done = True  # shadow ray satisfied; abandon the stack
                    elif stack:
                        next_node = stack.pop()
                        popped = True
                    else:
                        done = True
                steps.append(
                    Step(
                        node_address[current], node_size[current],
                        node_kind, tests, pushes, popped,
                    )
                )
                if next_node is not None:
                    current = next_node

        trace.hit_prim = best_prim
        trace.hit_t = best_t if best_prim >= 0 else float("inf")
        return TraceResult(trace=trace, hit_prim=best_prim, hit_t=trace.hit_t)

    def trace_wave(
        self,
        rays: Sequence[Ray],
        ray_ids: Sequence[int],
        pixels: Sequence[int],
        kind: RayKind = RayKind.PRIMARY,
        any_hit: bool = False,
    ) -> List[TraceResult]:
        """Trace a wavefront of rays concurrently, node-major.

        All rays share ``kind`` and ``any_hit`` (a wave is homogeneous by
        construction).  Results come back in input order, and each ray's
        event stream is byte-identical to what :meth:`trace` emits for
        it — the wavefront only changes *when* each ray's per-node work
        runs, never its arithmetic.
        """
        count = len(rays)
        if count == 0:
            return []
        soa = self.soa
        node_address = soa.node_address
        node_size = soa.node_size_bytes
        node_is_leaf = soa.node_is_leaf
        child_offset = soa.child_offset
        child_count = soa.child_count
        child_index = soa.child_index
        child_address = soa.child_address
        child_lo = soa.child_lo
        child_hi = soa.child_hi
        prim_offset = soa.prim_offset
        prim_count = soa.prim_count
        prim_ids = soa.prim_ids
        tri_a = soa.tri_a
        tri_e1 = soa.tri_e1
        tri_e2 = soa.tri_e2
        tri_e1_f = soa.tri_e1_f
        tri_e2_f = soa.tri_e2_f

        origins = np.stack([ray.origin for ray in rays])
        invs = np.stack([ray.inv_direction for ray in rays])
        t_mins = np.array([ray.t_min for ray in rays])
        directions = [ray.direction for ray in rays]
        dir_f = [
            (float(d[0]), float(d[1]), float(d[2])) for d in directions
        ]
        best_t = [ray.t_max for ray in rays]
        best_prim = [-1] * count
        stacks: List[List[int]] = [[] for _ in range(count)]
        traces = [
            RayTrace(ray_id=ray_ids[i], pixel=pixels[i], kind=kind)
            for i in range(count)
        ]
        current = [self.bvh.root] * count
        active = list(range(count))

        with np.errstate(invalid="ignore"):
            while active:
                # Group the wavefront by occupied node; each group is one
                # batched children test (or a scalar visit for leaves and
                # fully diverged singleton rays).
                groups = {}
                for i in active:
                    node = current[i]
                    bucket = groups.get(node)
                    if bucket is None:
                        groups[node] = [i]
                    else:
                        bucket.append(i)
                next_active: List[int] = []
                # Insertion-ordered by construction: groups is keyed in
                # first-visit order of the (list-ordered) active rays, and
                # that order is part of the wave≡scalar byte-identity
                # contract.  # simlint: disable=SL103
                for node, members in groups.items():
                    leaf = node_is_leaf[node]
                    if leaf:
                        p0 = prim_offset[node]
                        tests = prim_count[node]
                        leaf_prims = prim_ids[p0 : p0 + tests]
                    else:
                        c0 = child_offset[node]
                        tests = child_count[node]
                        los = child_lo[c0 : c0 + tests]
                        his = child_hi[c0 : c0 + tests]
                        if len(members) >= _BATCH_THRESHOLD:
                            sel = np.array(members)
                            hit_mask, t_enter = slab_test(
                                origins[sel][:, None, :],
                                invs[sel][:, None, :],
                                t_mins[sel][:, None],
                                np.array([best_t[i] for i in members])[:, None],
                                los, his,
                            )
                            hit_rows = hit_mask.tolist()
                            enter_rows = t_enter.tolist()
                        else:
                            i = members[0]
                            hit_mask, t_enter = slab_test(
                                origins[i], invs[i], t_mins[i], best_t[i],
                                los, his,
                            )
                            hit_rows = [hit_mask.tolist()]
                            enter_rows = [t_enter.tolist()]
                    address = node_address[node]
                    size_bytes = node_size[node]
                    for row, i in enumerate(members):
                        pushes: List[int] = []
                        if leaf:
                            node_kind = NodeKind.LEAF
                            origin = origins[i]
                            d0, d1, d2 = dir_f[i]
                            direction = directions[i]
                            t_min = t_mins[i]
                            bt = best_t[i]
                            bp = best_prim[i]
                            for prim_id in leaf_prims:
                                t = moeller_trumbore(
                                    origin, d0, d1, d2, direction, t_min, bt,
                                    tri_a[prim_id], tri_e1[prim_id],
                                    tri_e2[prim_id],
                                    tri_e1_f[prim_id], tri_e2_f[prim_id],
                                )
                                if t is not None and t < bt:
                                    bt = t
                                    bp = prim_id
                                    if any_hit:
                                        break
                            best_t[i] = bt
                            best_prim[i] = bp
                            next_node: Optional[int] = None
                        else:
                            node_kind = NodeKind.INTERNAL
                            hits = hit_rows[row]
                            enters = enter_rows[row]
                            hit_children = [
                                (
                                    enters[q],
                                    child_index[c0 + q],
                                    child_address[c0 + q],
                                )
                                for q in range(tests)
                                if hits[q]
                            ]
                            if hit_children:
                                hit_children.sort(key=itemgetter(0))
                                next_node = hit_children[0][1]
                                stack = stacks[i]
                                for pos in range(len(hit_children) - 1, 0, -1):
                                    pushes.append(hit_children[pos][2])
                                    stack.append(hit_children[pos][1])
                            else:
                                next_node = None

                        popped = False
                        if next_node is None:
                            if any_hit and best_prim[i] >= 0:
                                pass  # shadow ray satisfied; abandon stack
                            elif stacks[i]:
                                next_node = stacks[i].pop()
                                popped = True
                        traces[i].steps.append(
                            Step(
                                address, size_bytes, node_kind,
                                tests, pushes, popped,
                            )
                        )
                        if next_node is not None:
                            current[i] = next_node
                            next_active.append(i)
                active = next_active

        results = []
        for i in range(count):
            trace = traces[i]
            trace.hit_prim = best_prim[i]
            trace.hit_t = best_t[i] if best_prim[i] >= 0 else float("inf")
            results.append(
                TraceResult(
                    trace=trace, hit_prim=trace.hit_prim, hit_t=trace.hit_t
                )
            )
        return results
