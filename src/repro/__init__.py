"""repro — reproduction of "Hierarchical Traversal Stack Design Using
Shared Memory for GPU Ray Tracing" (ISPASS 2025).

The package implements the paper's SMS architecture and every substrate it
rests on: geometry and BVH construction, a deterministic path tracer that
records traversal-stack events, all traversal stack designs (baseline
short stack, full stack, SMS with skewed bank access and intra-warp
reallocation), and a cycle-level GPU timing model.

Quickstart::

    from repro import simulate, named_config
    from repro.workloads import load_scene

    scene = load_scene("SPNZA")
    base = simulate(scene, named_config("RB_8"))
    sms = simulate(scene, named_config("RB_8+SH_8+SK+RA"))
    print(sms.ipc / base.ipc)
"""

from repro.core import (
    simulate,
    trace_scene,
    time_traces,
    baseline_config,
    full_stack_config,
    sms_config,
    named_config,
    SimulationResult,
)
from repro.gpu.config import GPUConfig

__version__ = "1.0.0"

__all__ = [
    "simulate",
    "trace_scene",
    "time_traces",
    "baseline_config",
    "full_stack_config",
    "sms_config",
    "named_config",
    "SimulationResult",
    "GPUConfig",
    "__version__",
]
