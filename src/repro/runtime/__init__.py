"""Parallel campaign execution engine with a persistent result store.

Every figure and table in the reproduction is a (scene x configuration)
sweep, and each cell of that sweep is a *pure* computation: trace the
scene deterministically, replay the traces through the timing model.
This package turns that purity into throughput:

- :mod:`repro.runtime.job` — one simulation as a hashable, picklable
  spec with a deterministic content-address key;
- :mod:`repro.runtime.store` — a JSON-per-key on-disk result store so
  repeated sweeps load instead of re-simulating;
- :mod:`repro.runtime.executor` — a process-pool executor with per-job
  timeouts, bounded retry with backoff, and graceful degradation to
  serial in-process execution when workers fail;
- :mod:`repro.runtime.metrics` — queued/running/done/failed/cache-hit
  counters, per-job latency and throughput, plus a live progress line;
- :mod:`repro.runtime.cache` — a drop-in :class:`WorkloadCache` whose
  sweeps run through the executor and the store, so every experiment
  driver gains parallelism and caching without changes.

Because the simulation is deterministic, a parallel cached sweep is
bit-identical to the legacy serial path.
"""

from repro.runtime.cache import CachedWorkloadCache, runtime_cache
from repro.runtime.executor import ExecutionPolicy, RunReport, run_jobs
from repro.runtime.job import CACHE_SCHEMA_VERSION, SimulationJob, cache_salt
from repro.runtime.metrics import ProgressReporter, RuntimeMetrics
from repro.runtime.store import DEFAULT_CACHE_DIR, ResultStore

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CachedWorkloadCache",
    "DEFAULT_CACHE_DIR",
    "ExecutionPolicy",
    "ProgressReporter",
    "ResultStore",
    "RunReport",
    "RuntimeMetrics",
    "SimulationJob",
    "cache_salt",
    "run_jobs",
    "runtime_cache",
]
