"""The job model: one simulation as a pure, content-addressed spec.

A :class:`SimulationJob` pins down everything that determines a
:class:`~repro.core.results.SimulationResult` — the scene, the full
:class:`~repro.gpu.config.GPUConfig`, and the workload resolution knobs
— in a frozen, picklable dataclass.  Because tracing and timing are both
deterministic, two jobs with equal specs produce bit-identical results,
so the spec's SHA-256 digest (:meth:`SimulationJob.key`) is a valid
content address for the result store.

The key also folds in a *code-version salt* (:func:`cache_salt`): bump
``repro.__version__`` (or set ``REPRO_CACHE_SALT``) and every previously
stored result is invalidated at once, because no new key can collide
with an old one.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

from repro.gpu.config import GPUConfig
from repro.workloads.params import DEFAULT_PARAMS, WorkloadParams

#: Bump when the stored-result layout changes incompatibly.
#: 2: job specs gained the traversal-strategy field.
#: 3: job specs gained the timing-backend field and stored results
#:    record which backend executed.
CACHE_SCHEMA_VERSION = 3

#: Traced workloads memoized per process (see :func:`_workload_traces`).
#: ``REPRO_TRACE_MEMO`` overrides the capacity — long-running service
#: shards tune it down to keep worker memory flat.
_TRACE_MEMO_CAPACITY = 4

_TRACE_MEMO: "OrderedDict[tuple, Tuple[str, list]]" = OrderedDict()

_TRACE_MEMO_EVICTIONS = 0


def _trace_memo_capacity() -> int:
    """The memo's LRU capacity (``REPRO_TRACE_MEMO`` or the default)."""
    try:
        return max(1, int(os.environ["REPRO_TRACE_MEMO"]))
    except (KeyError, ValueError):
        return _TRACE_MEMO_CAPACITY


def trace_memo_evictions() -> int:
    """Traced workloads this process has evicted from the memo.

    Reported by service shards alongside each result, so the
    coordinator's ``/metrics`` endpoint can expose fleet-wide in-memory
    cache pressure.
    """
    return _TRACE_MEMO_EVICTIONS


def cache_salt() -> str:
    """The code-version salt mixed into every job key.

    Combines the package version with the store schema version; the
    ``REPRO_CACHE_SALT`` environment variable is appended when set (handy
    for forcing a cold sweep without touching the store on disk).  The
    geometry scale (``REPRO_BENCH_SCALE``, see
    :func:`repro.workloads.lumibench.bench_scale`) is folded in too:
    scaled scenes are different workloads, so their results must never
    satisfy a reduced-scale job's content address (or vice versa).
    """
    import repro
    from repro.workloads.lumibench import bench_scale

    salt = f"repro-{repro.__version__}/schema-{CACHE_SCHEMA_VERSION}"
    scale = bench_scale()
    if scale is not None:
        salt = f"{salt}/geo-{scale:g}"
    extra = os.environ.get("REPRO_CACHE_SALT")
    return f"{salt}/{extra}" if extra else salt


@dataclass(frozen=True)
class SimulationJob:
    """One (scene, configuration, workload) cell of a sweep.

    Frozen and built only from hashable primitives (``GPUConfig`` is a
    frozen dataclass), so jobs can be dict keys, pickled to worker
    processes, and digested into content-address keys.
    """

    scene: str
    config: GPUConfig
    width: int
    height: int
    spp: int = 1
    max_bounces: int = 3
    seed: int = 0
    verify_pops: bool = False
    #: Run under the integrity layer (:mod:`repro.guard`).  Guards observe
    #: without perturbing, but the flag is still part of the spec: a
    #: guarded run that *completes* proves more than an unguarded one.
    guard: bool = False
    #: Watchdog cycle budget; only meaningful with ``guard=True``.
    max_cycles: Optional[int] = None
    #: Traversal strategy name (:mod:`repro.traversal`).  Part of the
    #: content address: both phases depend on it — the recorded traces
    #: (stackless re-traces, reorder permutes) and the timing replay.
    strategy: str = "sms"
    #: Timing backend (``"stepped"`` or ``"vector"``).  Backends are
    #: bit-identical by contract, but the field is still part of the
    #: content address: a cached result records *how* it was produced,
    #: and keeping the addresses distinct means a backend-parity bug can
    #: never silently satisfy a stepped request from a vector result.
    backend: str = "stepped"

    @classmethod
    def from_params(
        cls,
        scene: str,
        config: GPUConfig,
        params: WorkloadParams = DEFAULT_PARAMS,
        max_bounces: Optional[int] = None,
        verify_pops: bool = False,
        strategy: str = "sms",
        backend: str = "stepped",
    ) -> "SimulationJob":
        """Build a job resolving the two-tier resolution scheme.

        Mirrors :class:`~repro.experiments.common.WorkloadCache`: complex
        scenes get the reduced tier of ``params``, and ``max_bounces``
        (when given) overrides the params' bounce budget.
        """
        width, height, spp = params.for_scene(scene)
        return cls(
            scene=scene.upper(),
            config=config,
            width=width,
            height=height,
            spp=spp,
            max_bounces=(
                max_bounces if max_bounces is not None else params.max_bounces
            ),
            seed=params.seed,
            verify_pops=verify_pops,
            strategy=strategy,
            backend=backend,
        )

    def spec(self) -> Dict:
        """The canonical, JSON-serializable description of this job.

        Includes the :func:`cache_salt`, so the digest of this dict is
        automatically invalidated by version bumps.
        """
        return {
            "scene": self.scene,
            "config": asdict(self.config),
            "width": self.width,
            "height": self.height,
            "spp": self.spp,
            "max_bounces": self.max_bounces,
            "seed": self.seed,
            "verify_pops": self.verify_pops,
            "guard": self.guard,
            "max_cycles": self.max_cycles,
            "strategy": self.strategy,
            "backend": self.backend,
            "salt": cache_salt(),
        }

    def key(self) -> str:
        """Deterministic content-address: SHA-256 of the canonical spec."""
        blob = json.dumps(self.spec(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def run(self):
        """Execute the job in this process and return the result.

        Pure with respect to the spec: no reliance on ambient state
        beyond the deterministic scene generators, so it is safe to run
        in any worker process.  Traces are memoized per process (keyed by
        everything but the config), so a worker that draws several
        configurations of the same scene traces it once.
        """
        from repro.core.api import time_traces

        guard = None
        if self.guard or self.max_cycles is not None:
            from repro.guard import GuardConfig

            guard = GuardConfig(max_cycles=self.max_cycles)
        scene_name, traces = _workload_traces(self)
        return time_traces(
            traces,
            config=self.config,
            scene_name=scene_name,
            verify_pops=self.verify_pops,
            guard=guard,
            strategy=self.strategy,
            backend=self.backend,
        )

    def describe(self) -> str:
        """Short human-readable label (scene + config + strategy)."""
        label = f"{self.scene}/{self.config.describe()}"
        if self.strategy != "sms":
            label += f"[{self.strategy}]"
        if self.backend != "stepped":
            label += f"@{self.backend}"
        return label


def _workload_traces(job: SimulationJob) -> Tuple[str, List]:
    """Trace the job's workload, memoizing per process (small LRU).

    The memo key deliberately excludes the GPU configuration — phase one
    is configuration-independent, which is the whole point of the
    two-phase split.  It keys on the strategy's *trace key* rather than
    its name, so strategies that record identical streams share entries.
    """
    from repro.traversal.registry import resolve_strategy
    from repro.workloads.lumibench import bench_scale

    strategy = resolve_strategy(job.strategy)
    memo_key = (
        job.scene, job.width, job.height, job.spp, job.max_bounces, job.seed,
        strategy.trace_key(), bench_scale(),
    )
    cached = _TRACE_MEMO.get(memo_key)
    if cached is not None:
        _TRACE_MEMO.move_to_end(memo_key)
        return cached
    from repro.bvh.api import build_bvh
    from repro.workloads.lumibench import load_scene

    scene = load_scene(job.scene)
    bvh = build_bvh(scene)
    workload = strategy.build_workload(
        bvh,
        width=job.width,
        height=job.height,
        spp=job.spp,
        max_bounces=job.max_bounces,
        seed=job.seed,
    )
    entry = (scene.name, workload.all_traces)
    _TRACE_MEMO[memo_key] = entry
    global _TRACE_MEMO_EVICTIONS
    while len(_TRACE_MEMO) > _trace_memo_capacity():
        _TRACE_MEMO.popitem(last=False)
        _TRACE_MEMO_EVICTIONS += 1
    return entry
