"""Persistent, content-addressed result store (JSON file per key).

Layout: ``<root>/<key[:2]>/<key>.json`` — two-level sharding keeps
directory listings small on big sweeps.  Each file records the store
schema version, the job spec that produced it (for debuggability), and
the serialized :class:`~repro.core.results.SimulationResult`.

Invalidation is purely key-based: the job key already digests the full
spec plus the code-version salt, so changed configs or a version bump
simply miss.  Stale entries are garbage, not hazards; ``clear()`` or a
plain ``rm -r`` reclaims the space.

Writes are atomic (temp file + ``os.replace``), so concurrent sweeps
sharing a store never observe torn files; unparseable or
schema-mismatched entries are treated as misses and deleted.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, Iterator, Optional

from repro.core.results import SimulationResult

#: Default store location; override per-store or via ``REPRO_CACHE_DIR``.
DEFAULT_CACHE_DIR = Path("~/.cache/repro-sms")

#: On-disk payload schema; mismatched entries read as misses.
STORE_SCHEMA_VERSION = 1


class ResultStore:
    """On-disk map from job key to simulation result."""

    def __init__(self, root=None):
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
        self.root = Path(root).expanduser()

    def path_for(self, key: str) -> Path:
        """Where a given key lives (whether or not it exists yet)."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[SimulationResult]:
        """The stored result for ``key``, or ``None`` on a miss.

        Corrupt or schema-mismatched files are removed and read as
        misses, so a store poisoned by an interrupted legacy writer
        heals itself.
        """
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
            if payload.get("schema") != STORE_SCHEMA_VERSION:
                raise ValueError("schema mismatch")
            return SimulationResult.from_dict(payload["result"])
        except FileNotFoundError:
            return None
        except (ValueError, KeyError, TypeError):
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(
        self, key: str, result: SimulationResult, spec: Optional[Dict] = None
    ) -> Path:
        """Persist ``result`` under ``key`` atomically; returns the path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": STORE_SCHEMA_VERSION,
            "key": key,
            "created": time.time(),
            "spec": spec,
            "result": result.to_dict(),
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, indent=1, sort_keys=True))
        os.replace(tmp, path)
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def keys(self) -> Iterator[str]:
        """All keys currently stored."""
        if not self.root.exists():
            return
        for path in sorted(self.root.glob("*/*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def size_bytes(self) -> int:
        """Total bytes the store occupies on disk."""
        if not self.root.exists():
            return 0
        return sum(path.stat().st_size for path in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for key in list(self.keys()):
            try:
                self.path_for(key).unlink()
                removed += 1
            except OSError:
                pass
        return removed
