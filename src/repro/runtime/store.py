"""Persistent, content-addressed result store (JSON file per key).

Layout: ``<root>/<key[:2]>/<key>.json`` — two-level sharding keeps
directory listings small on big sweeps.  Each file records the store
schema version, the job spec that produced it (for debuggability), and
the serialized :class:`~repro.core.results.SimulationResult`.

Invalidation is purely key-based: the job key already digests the full
spec plus the code-version salt, so changed configs or a version bump
simply miss.  Stale entries are garbage, not hazards; ``clear()`` or a
plain ``rm -r`` reclaims the space.

Writes are crash-safe: the payload is written to a temp file, flushed
and ``fsync``-ed, then ``os.replace``-d into place and the directory
entry fsync-ed — so neither a concurrent sweep, a worker killed
mid-write, nor a power cut can leave a torn JSON entry behind (a kill
mid-write leaves at most an orphaned ``*.tmp.*`` file, which no read
path ever matches).  Unparseable or
schema-mismatched entries read as misses, but they are *quarantined* to
``<root>/corrupt/`` (with a logged warning) rather than deleted — a
corrupt cache entry is evidence of a writer bug, and evidence should
survive the read that discovers it.

Guard violations are recorded under ``<root>/failures/`` by
:meth:`ResultStore.record_failure`: a deterministic integrity failure
must never be cached as a (partial) result, but *that the job fails, and
how* is itself worth persisting for diagnosis.
"""

from __future__ import annotations

import itertools
import json
import logging
import os
import time
import traceback
from pathlib import Path
from typing import Dict, Iterator, Optional

from repro.core.results import SimulationResult

logger = logging.getLogger(__name__)

#: Per-process sequence for temp-file names: two writes of the same key
#: from one process (retry after a corrupt read, say) must never race on
#: one temp path.
_TMP_SEQUENCE = itertools.count()


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry to disk (best-effort on odd filesystems)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _write_json_crash_safe(path: Path, payload: Dict) -> None:
    """Write ``payload`` to ``path`` so a kill can never tear it.

    temp file -> flush -> fsync -> ``os.replace`` -> directory fsync:
    a reader (or a post-crash restart) sees either the complete previous
    entry or the complete new one, never a prefix.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(f".tmp.{os.getpid()}.{next(_TMP_SEQUENCE)}")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, indent=1, sort_keys=True))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)

#: Default store location; override per-store or via ``REPRO_CACHE_DIR``.
DEFAULT_CACHE_DIR = Path("~/.cache/repro-sms")

#: On-disk payload schema; mismatched entries read as misses.
STORE_SCHEMA_VERSION = 1

#: Shard-directory glob: result entries only (never the ``corrupt/`` or
#: ``failures/`` sidecars, whose names are not two hex characters).
_SHARD_GLOB = "[0-9a-f][0-9a-f]/*.json"


class ResultStore:
    """On-disk map from job key to simulation result."""

    def __init__(self, root=None):
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
        self.root = Path(root).expanduser()

    def path_for(self, key: str) -> Path:
        """Where a given key lives (whether or not it exists yet)."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[SimulationResult]:
        """The stored result for ``key``, or ``None`` on a miss.

        Corrupt or schema-mismatched files read as misses and are moved
        to ``<root>/corrupt/`` with a logged warning, so a store poisoned
        by an interrupted legacy writer heals itself without destroying
        the evidence.
        """
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
            if payload.get("schema") != STORE_SCHEMA_VERSION:
                raise ValueError(
                    f"schema {payload.get('schema')!r} != "
                    f"{STORE_SCHEMA_VERSION}"
                )
            return SimulationResult.from_dict(payload["result"])
        except FileNotFoundError:
            return None
        except (ValueError, KeyError, TypeError) as error:
            self._quarantine(path, error)
            return None

    def _quarantine(self, path: Path, error: Exception) -> None:
        """Move an unreadable entry aside instead of deleting it."""
        target = self.root / "corrupt" / path.name
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            logger.warning(
                "result store: corrupt entry %s (%s) could not be "
                "quarantined; leaving it in place", path, error,
            )
            return
        logger.warning(
            "result store: corrupt entry %s (%s) quarantined to %s",
            path, error, target,
        )

    def put(
        self, key: str, result: SimulationResult, spec: Optional[Dict] = None
    ) -> Path:
        """Persist ``result`` under ``key`` crash-safely; returns the path."""
        path = self.path_for(key)
        payload = {
            "schema": STORE_SCHEMA_VERSION,
            "key": key,
            # Store *metadata*, outside the simulated clock: created-at
            # never feeds a result and exists only for cache forensics.
            # One of the two sanctioned wall-clock reads in src/ (see the
            # SL101 rule docs in docs/architecture.md section 10).
            "created": time.time(),  # simlint: disable=SL101
            "spec": spec,
            "result": result.to_dict(),
        }
        _write_json_crash_safe(path, payload)
        return path

    # ------------------------------------------------------------------
    # structured failures (guard violations)
    # ------------------------------------------------------------------

    def failure_path_for(self, key: str) -> Path:
        """Where ``key``'s failure record lives (if any)."""
        return self.root / "failures" / f"{key}.json"

    def record_failure(
        self,
        key: str,
        error: Exception,
        spec: Optional[Dict] = None,
        traceback_text: Optional[str] = None,
    ) -> Path:
        """Persist a structured failure record for ``key``.

        Used for deterministic failures (guard violations): the result
        slot stays empty — a partial result must never poison the cache
        — but the failure itself, with its diagnostic fields, is kept
        for inspection.  ``traceback_text`` (the formatted traceback
        captured where the exception was caught) rides along so the
        record pinpoints the raise site, not just the message.  When it
        is not supplied, whatever traceback the exception still carries
        is formatted here.  Returns the path written.
        """
        path = self.failure_path_for(key)
        diagnostics = getattr(error, "diagnostics", None)
        if traceback_text is None and error.__traceback__ is not None:
            traceback_text = "".join(
                traceback.format_exception(
                    type(error), error, error.__traceback__
                )
            )
        payload = {
            "schema": STORE_SCHEMA_VERSION,
            "key": key,
            # Sanctioned wall-clock read: failure-record metadata (see
            # the SL101 note on the result payload above).
            "created": time.time(),  # simlint: disable=SL101
            "spec": spec,
            "error": {
                "type": type(error).__name__,
                "message": getattr(error, "message", str(error)),
                "rendered": str(error),
                "diagnostics": diagnostics() if callable(diagnostics) else {},
                "traceback": traceback_text,
            },
        }
        _write_json_crash_safe(path, payload)
        return path

    def failure_for(self, key: str) -> Optional[Dict]:
        """The recorded failure payload for ``key``, or ``None``."""
        try:
            return json.loads(self.failure_path_for(key).read_text())
        except (OSError, ValueError):
            return None

    def failures(self) -> Iterator[str]:
        """Keys with a recorded structured failure."""
        root = self.root / "failures"
        if not root.exists():
            return
        for path in sorted(root.glob("*.json")):
            yield path.stem

    # ------------------------------------------------------------------
    # admin
    # ------------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def keys(self) -> Iterator[str]:
        """All keys currently stored."""
        if not self.root.exists():
            return
        for path in sorted(self.root.glob(_SHARD_GLOB)):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def size_bytes(self) -> int:
        """Total bytes the store's result entries occupy on disk."""
        if not self.root.exists():
            return 0
        return sum(path.stat().st_size for path in self.root.glob(_SHARD_GLOB))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for key in list(self.keys()):
            try:
                self.path_for(key).unlink()
                removed += 1
            except OSError:
                pass
        return removed
