"""Process-pool job executor with retry, timeout and serial fallback.

:func:`run_jobs` resolves a list of jobs against the result store and a
``concurrent.futures.ProcessPoolExecutor``:

1. every job's content key is checked against the store (cache hits are
   free and bit-identical, since the simulation is deterministic);
2. identical jobs within one call are deduplicated and computed once;
3. misses run on a bounded pool of worker processes — each failure is
   retried on a deterministic seeded exponential-backoff-with-jitter
   schedule (:func:`repro.runtime.backoff.backoff_delay`, shared with
   the serving layer) up to the policy's retry budget, each job has an
   optional wall-clock timeout, and a broken pool (a worker killed by
   the OS, say) degrades the remaining jobs to serial in-process
   execution rather than failing the sweep;
4. completed results are written back to the store.

Results come back in job order; jobs that can never succeed raise
:class:`~repro.errors.JobExecutionError` after exhausting retries.

Guard violations (:class:`~repro.errors.GuardViolationError`) are
*deterministic* — the same spec fails the same way every time — so they
skip the retry budget entirely.  Instead the structured failure is
recorded in the store's ``failures/`` sidecar (never the result cache)
and the job raises immediately.
"""

from __future__ import annotations

import os
import time
import traceback
from collections import OrderedDict, deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

from repro.errors import GuardViolationError, JobExecutionError
from repro.runtime.backoff import backoff_delay
from repro.runtime.metrics import ProgressReporter, RuntimeMetrics
from repro.runtime.store import ResultStore

#: Seconds between timeout checks while futures are in flight.
_TIMEOUT_TICK = 0.05


@dataclass(frozen=True)
class ExecutionPolicy:
    """Executor knobs for one sweep.

    ``workers=None`` auto-sizes to the machine (``os.cpu_count()``,
    capped by the number of distinct pending jobs); ``workers<=1`` runs
    serially in-process with no pool at all.  ``timeout`` bounds each
    job's wall-clock seconds in a worker — an expired job is cancelled
    and re-run serially in-process (where it cannot be preempted but
    also cannot be lost).  ``retries`` is the number of *additional*
    attempts after a failure, each preceded by a deterministic seeded
    exponential-backoff sleep: ``backoff`` is the first-retry base
    delay, ``backoff_cap`` bounds the exponential growth, and
    ``backoff_seed`` selects the jitter stream (see
    :func:`repro.runtime.backoff.backoff_delay`).
    """

    workers: Optional[int] = None
    timeout: Optional[float] = None
    retries: int = 2
    backoff: float = 0.1
    backoff_cap: float = 2.0
    backoff_seed: int = 0
    progress: bool = False

    def effective_workers(self, pending: int) -> int:
        """Pool size for ``pending`` distinct jobs under this policy."""
        workers = self.workers if self.workers is not None else os.cpu_count() or 1
        return max(1, min(workers, pending))

    def retry_delay(self, attempt: int, key: str = "") -> float:
        """The deterministic backoff before retry number ``attempt``."""
        return backoff_delay(
            attempt,
            base=self.backoff,
            cap=self.backoff_cap,
            seed=self.backoff_seed,
            key=key,
        )


@dataclass
class RunReport:
    """What a :func:`run_jobs` call produced."""

    #: One result per submitted job, in submission order.
    results: List[Any]
    #: Counters and latencies for the run.
    metrics: RuntimeMetrics


@dataclass
class _JobState:
    """Dispatch bookkeeping for one distinct job."""

    job: Any
    key: str
    indices: List[int] = field(default_factory=list)
    attempts: int = 0


def _execute(job):
    """Worker entry point: run the job (module-level, so it pickles)."""
    return job.run()


def run_jobs(
    jobs: Sequence,
    store: Optional[ResultStore] = None,
    policy: Optional[ExecutionPolicy] = None,
    serial_runner: Optional[Callable] = None,
) -> RunReport:
    """Resolve every job via store, pool, or serial fallback.

    ``jobs`` may be :class:`~repro.runtime.job.SimulationJob` instances
    or any picklable object with ``key() -> str`` and ``run()``.
    ``serial_runner`` overrides how jobs execute on the serial paths
    (in-process sweeps reuse already-traced scenes this way); worker
    processes always call ``job.run()``.
    """
    policy = policy or ExecutionPolicy()
    jobs = list(jobs)
    metrics = RuntimeMetrics(jobs_total=len(jobs))
    progress = ProgressReporter(enabled=policy.progress)
    results: List[Any] = [None] * len(jobs)
    started = time.monotonic()

    # Store lookups + same-run deduplication.
    pending: "OrderedDict[str, _JobState]" = OrderedDict()
    for index, job in enumerate(jobs):
        key = job.key()
        state = pending.get(key)
        if state is not None:
            state.indices.append(index)
            metrics.deduplicated += 1
            continue
        if store is not None:
            hit = store.get(key)
            if hit is not None:
                results[index] = hit
                metrics.cache_hits += 1
                progress.update(metrics)
                continue
        pending[key] = _JobState(job=job, key=key, indices=[index])

    states = list(pending.values())
    try:
        if states:
            workers = policy.effective_workers(len(states))
            if workers <= 1:
                _run_serial(states, results, store, policy, metrics,
                            progress, serial_runner)
            else:
                _run_parallel(states, results, store, policy, metrics,
                              progress, serial_runner, workers)
    finally:
        metrics.running = 0
        metrics.elapsed_seconds = time.monotonic() - started
        progress.close(metrics)
    return RunReport(results=results, metrics=metrics)


def _record(state, value, results, store, metrics) -> None:
    """File a finished job's value under every index that wants it."""
    for index in state.indices:
        results[index] = value
    metrics.simulated += 1
    backend = getattr(value, "backend", None)
    if backend:
        metrics.backends[backend] = metrics.backends.get(backend, 0) + 1
    if store is not None and hasattr(value, "to_dict"):
        spec = state.job.spec() if hasattr(state.job, "spec") else None
        store.put(state.key, value, spec=spec)


def _describe(job) -> str:
    return job.describe() if hasattr(job, "describe") else repr(job)


def _format_traceback(exc) -> str:
    """The full formatted traceback of a caught exception.

    Includes chained causes — for pool workers that is the remote
    traceback ``concurrent.futures`` attaches as ``__cause__``, so the
    record names the raise site inside the worker, not just this
    process's ``future.result()`` frame.
    """
    return "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    )


def _give_up(state, exc, store, metrics, traceback_text=None):
    """Raise the terminal failure for a job, recording guard violations.

    A :class:`GuardViolationError` is a deterministic integrity failure:
    retrying cannot help, and caching any partial result would poison
    the store.  Record it as a structured failure sidecar instead — with
    the captured traceback attached, so the record pinpoints the raise
    site — then surface it wrapped in :class:`JobExecutionError`.  The
    wrapper carries the traceback text as ``traceback_text`` for
    non-guard failures too.
    """
    metrics.failed += 1
    if traceback_text is None:
        traceback_text = _format_traceback(exc)
    if isinstance(exc, GuardViolationError):
        if store is not None:
            spec = state.job.spec() if hasattr(state.job, "spec") else None
            store.record_failure(
                state.key, exc, spec=spec, traceback_text=traceback_text
            )
        error = JobExecutionError(
            f"job {_describe(state.job)} violated a simulation "
            f"integrity guard (not retried): {exc}"
        )
        error.traceback_text = traceback_text
        raise error from exc
    error = JobExecutionError(
        f"job {_describe(state.job)} failed after "
        f"{state.attempts + 1} attempt(s): {exc}"
    )
    error.traceback_text = traceback_text
    raise error from exc


def _run_one_serial(state, policy, metrics, serial_runner, store=None):
    """One job in-process, honoring the retry budget."""
    runner = serial_runner or _execute
    while True:
        try:
            return runner(state.job)
        except Exception as exc:
            if (isinstance(exc, GuardViolationError)
                    or state.attempts >= policy.retries):
                _give_up(state, exc, store, metrics,
                         traceback_text=_format_traceback(exc))
            state.attempts += 1
            metrics.retries += 1
            delay = policy.retry_delay(state.attempts, key=state.key)
            metrics.backoff_total_s += delay
            time.sleep(delay)


def _run_serial(states, results, store, policy, metrics, progress,
                serial_runner) -> None:
    """Serial in-process execution (workers<=1, or fallback)."""
    for state in states:
        metrics.running = 1
        progress.update(metrics)
        begun = time.monotonic()
        value = _run_one_serial(state, policy, metrics, serial_runner,
                                store=store)
        metrics.job_seconds.append(time.monotonic() - begun)
        metrics.running = 0
        _record(state, value, results, store, metrics)
        progress.update(metrics)


def _run_parallel(states, results, store, policy, metrics, progress,
                  serial_runner, workers) -> None:
    """Pool execution with retry, per-job timeout, and degradation.

    Jobs are dispatched one per free worker slot (so a job's timeout
    clock starts when it can actually start running, not when it is
    queued).  Timeouts and a broken pool both divert jobs to
    ``fallback``, which re-runs them serially in this process.
    """
    queue = deque(states)
    in_flight = {}  # future -> (state, start time)
    fallback: List[_JobState] = []
    broken = False
    abandoned = False  # a timed-out task is still occupying a worker
    pool = ProcessPoolExecutor(max_workers=workers)
    try:
        while queue or in_flight:
            while queue and len(in_flight) < workers and not broken:
                state = queue.popleft()
                try:
                    future = pool.submit(_execute, state.job)
                except RuntimeError:  # pool broken or shut down
                    broken = True
                    fallback.append(state)
                    break
                in_flight[future] = (state, time.monotonic())
            metrics.running = len(in_flight)
            progress.update(metrics)
            if not in_flight:
                if broken:
                    fallback.extend(queue)
                    queue.clear()
                    break
                continue
            tick = _TIMEOUT_TICK if policy.timeout is not None else None
            done, _ = wait(
                list(in_flight), timeout=tick, return_when=FIRST_COMPLETED
            )
            for future in done:
                state, begun = in_flight.pop(future)
                try:
                    value = future.result()
                except BrokenProcessPool:
                    broken = True
                    fallback.append(state)
                except Exception as exc:
                    if (isinstance(exc, GuardViolationError)
                            or state.attempts >= policy.retries):
                        _give_up(state, exc, store, metrics,
                                 traceback_text=_format_traceback(exc))
                    state.attempts += 1
                    metrics.retries += 1
                    delay = policy.retry_delay(state.attempts, key=state.key)
                    metrics.backoff_total_s += delay
                    time.sleep(delay)
                    queue.append(state)
                else:
                    metrics.job_seconds.append(time.monotonic() - begun)
                    _record(state, value, results, store, metrics)
                    progress.update(metrics)
            if broken:
                fallback.extend(state for state, _ in in_flight.values())
                in_flight.clear()
                fallback.extend(queue)
                queue.clear()
                break
            if policy.timeout is not None:
                now = time.monotonic()
                for future, (state, begun) in list(in_flight.items()):
                    if now - begun > policy.timeout:
                        if not future.cancel():
                            abandoned = True
                        del in_flight[future]
                        metrics.timeouts += 1
                        fallback.append(state)
    finally:
        processes = list((getattr(pool, "_processes", None) or {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        if abandoned:
            # Every live result is already collected, so any worker still
            # busy is running a task nobody wants; don't let it keep the
            # interpreter (or the next sweep's CPUs) hostage.
            for process in processes:
                process.terminate()
    if fallback:
        metrics.serial_fallbacks += len(fallback)
        _run_serial(fallback, results, store, policy, metrics, progress,
                    serial_runner)
