"""A workload cache whose sweeps are parallel, persistent, and metered.

:class:`CachedWorkloadCache` is a drop-in
:class:`~repro.experiments.common.WorkloadCache`: every experiment
driver that takes a cache (``cache.simulate``, ``cache.sweep``,
``cache.traced``) works unchanged, but

- ``simulate`` consults the persistent :class:`ResultStore` before
  simulating, and writes back on a miss;
- ``sweep`` dispatches the whole (scene x config) matrix through
  :func:`~repro.runtime.executor.run_jobs` — store hits are free, the
  misses run on a process pool per the :class:`ExecutionPolicy`;
- ``metrics`` accumulates cache-hit/latency/throughput counters across
  every call, for reporting at the end of a campaign.

Serial paths reuse this cache's already-traced scenes, so mixing
``traced()``-based experiments (depth figures) with sweeps never traces
a scene twice in-process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.core.results import SimulationResult
from repro.experiments.common import WorkloadCache, _unique_labels
from repro.gpu.config import GPUConfig
from repro.runtime.executor import ExecutionPolicy, run_jobs
from repro.runtime.job import SimulationJob
from repro.runtime.metrics import RuntimeMetrics
from repro.runtime.store import ResultStore


@dataclass
class CachedWorkloadCache(WorkloadCache):
    """Workload cache backed by the runtime executor and result store.

    ``store=None`` disables persistence (every simulation recomputes);
    the default :class:`ExecutionPolicy` auto-sizes the worker pool to
    the machine.
    """

    store: Optional[ResultStore] = None
    policy: ExecutionPolicy = field(default_factory=ExecutionPolicy)
    metrics: RuntimeMetrics = field(default_factory=RuntimeMetrics)

    def _on_evict(self) -> None:
        """Traced-scene LRU evictions flow into the run metrics."""
        self.metrics.evictions += 1

    def job_for(
        self, name: str, config: GPUConfig, verify_pops: bool = False
    ) -> SimulationJob:
        """The content-addressed job for one (scene, config) cell."""
        return SimulationJob.from_params(
            name,
            config,
            params=self.params,
            max_bounces=self.max_bounces,
            verify_pops=verify_pops,
            backend=self.backend,
        )

    def simulate(
        self, name: str, config: GPUConfig, verify_pops: bool = False
    ) -> SimulationResult:
        """Time one scene under one configuration, store-first."""
        job = self.job_for(name, config, verify_pops)
        self.metrics.jobs_total += 1
        if self.store is not None:
            hit = self.store.get(job.key())
            if hit is not None:
                self.metrics.cache_hits += 1
                return hit
        result = super().simulate(name, config, verify_pops)
        self.metrics.simulated += 1
        backend = getattr(result, "backend", None)
        if backend:
            self.metrics.backends[backend] = (
                self.metrics.backends.get(backend, 0) + 1
            )
        if self.store is not None:
            self.store.put(job.key(), result, spec=job.spec())
        return result

    def _local_run(self, job: SimulationJob) -> SimulationResult:
        """Serial runner reusing this cache's traced scenes."""
        return WorkloadCache.simulate(self, job.scene, job.config,
                                      job.verify_pops)

    def sweep(
        self, configs: Sequence[GPUConfig], verify_pops: bool = False
    ) -> Dict[str, Dict[str, SimulationResult]]:
        """Run every (scene, config) pair through the runtime.

        Same shape and values as the serial base class — the simulation
        is deterministic, so store hits and pool results are
        bit-identical to freshly computed ones.
        """
        labels = _unique_labels(configs)
        names = self.names
        jobs = [
            self.job_for(name, config, verify_pops)
            for name in names
            for config in configs
        ]
        report = run_jobs(
            jobs,
            store=self.store,
            policy=self.policy,
            serial_runner=self._local_run,
        )
        self.metrics.merge(report.metrics)
        flat = iter(report.results)
        return {
            name: {label: next(flat) for label in labels} for name in names
        }


def runtime_cache(
    params=None,
    scene_names=None,
    jobs: Optional[int] = None,
    use_cache: bool = True,
    cache_dir=None,
    timeout: Optional[float] = None,
    progress: bool = False,
    max_traced: Optional[int] = None,
    backend: str = "stepped",
) -> CachedWorkloadCache:
    """Build a :class:`CachedWorkloadCache` from user-facing knobs.

    The translation used by ``run_all`` and the CLI: ``jobs`` is the
    worker count (``None`` auto-sizes, ``1`` forces serial),
    ``use_cache=False`` drops the persistent store entirely,
    ``cache_dir`` overrides the store location (default
    ``~/.cache/repro-sms`` or ``$REPRO_CACHE_DIR``), ``max_traced``
    LRU-bounds the in-memory traced-scene cache (``None`` = unbounded;
    long-running service processes set a bound), and ``backend``
    selects the timing backend every job requests (``"stepped"`` or
    ``"vector"`` — bit-identical results, different wall-clock).
    """
    from repro.workloads.params import DEFAULT_PARAMS

    return CachedWorkloadCache(
        params=params or DEFAULT_PARAMS,
        scene_names=scene_names,
        max_traced=max_traced,
        backend=backend,
        store=ResultStore(cache_dir) if use_cache else None,
        policy=ExecutionPolicy(workers=jobs, timeout=timeout,
                               progress=progress),
    )
