"""Deterministic seeded exponential backoff with jitter.

One helper shared by every retry site in the repo — the executor's
failed-job retries, the service coordinator's shard restarts and job
redeliveries.  The delay for attempt *n* is::

    min(cap, base * 2**(n-1)) * jitter,   jitter in [0.5, 1.0)

with the jitter derived from SHA-256 of ``(key, seed, attempt)`` rather
than a live RNG: the same job retried at the same attempt always waits
the same time, so campaign wall-clock behavior replays exactly and tests
can assert the schedule to the microsecond.  Jitter still decorrelates
*different* jobs (their keys differ), which is all jitter is for.
"""

from __future__ import annotations

import hashlib


def backoff_delay(
    attempt: int,
    *,
    base: float = 0.1,
    cap: float = 2.0,
    seed: int = 0,
    key: str = "",
) -> float:
    """Seconds to wait before retry number ``attempt`` (1-based).

    ``base`` is the first-attempt delay, ``cap`` bounds the exponential
    growth, and ``(key, seed)`` select the deterministic jitter stream.
    ``attempt < 1`` is clamped to 1; ``base <= 0`` yields 0 (no wait).
    """
    if base <= 0:
        return 0.0
    attempt = max(1, attempt)
    raw = min(cap, base * (2.0 ** (attempt - 1)))
    digest = hashlib.sha256(f"{key}:{seed}:{attempt}".encode()).digest()
    fraction = int.from_bytes(digest[:8], "big") / 2.0**64
    return raw * (0.5 + 0.5 * fraction)
