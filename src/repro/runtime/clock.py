"""Injectable clocks for the runtime and serving layers.

The serving layer (:mod:`repro.service`) lives inside simlint's
timing-critical scope: it may not read the host clock directly (SL101),
because every time-dependent decision — heartbeat staleness, token
refill, breaker cooldowns — must be testable deterministically.  All of
it therefore goes through a :class:`Clock` object injected at
construction time.  This module owns the two implementations:

- :class:`MonotonicClock` — the production clock, backed by
  ``time.monotonic`` (this module is *not* timing-critical, so the host
  reads are sanctioned here and only here);
- :class:`ManualClock` — a test clock whose time only moves when the
  test calls :meth:`ManualClock.advance`, with async sleepers woken in
  deadline order.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import time
from typing import List, Tuple


class Clock:
    """Interface: a monotonic time source with sync and async sleeps."""

    def now(self) -> float:
        """Seconds on a monotonic axis (origin unspecified)."""
        raise NotImplementedError

    def block(self, seconds: float) -> None:
        """Synchronous sleep (client-side polling, executor backoff)."""
        raise NotImplementedError

    async def sleep(self, seconds: float) -> None:
        """Asynchronous sleep (coordinator loops, HTTP streaming)."""
        raise NotImplementedError


class MonotonicClock(Clock):
    """The production clock: host monotonic time, real sleeps."""

    def now(self) -> float:
        return time.monotonic()

    def block(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)

    async def sleep(self, seconds: float) -> None:
        await asyncio.sleep(max(0.0, seconds))


class ManualClock(Clock):
    """A clock tests drive by hand.

    ``now()`` returns the value last set; :meth:`advance` moves it
    forward and wakes every async sleeper whose deadline has passed (in
    deadline order, ties broken by sleep order, so wakeups are
    deterministic).  ``block`` advances time itself — a synchronous
    caller would otherwise deadlock waiting for the test to advance.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        self._sequence = itertools.count()
        self._sleepers: List[Tuple[float, int, asyncio.Future]] = []

    def now(self) -> float:
        return self._now

    def block(self, seconds: float) -> None:
        self._now += max(0.0, seconds)
        self._wake()

    async def sleep(self, seconds: float) -> None:
        if seconds <= 0:
            await asyncio.sleep(0)
            return
        future = asyncio.get_running_loop().create_future()
        heapq.heappush(
            self._sleepers,
            (self._now + seconds, next(self._sequence), future),
        )
        await future

    def advance(self, seconds: float) -> None:
        """Move time forward and release due sleepers."""
        self._now += max(0.0, seconds)
        self._wake()

    def _wake(self) -> None:
        while self._sleepers and self._sleepers[0][0] <= self._now:
            _, _, future = heapq.heappop(self._sleepers)
            if not future.done():
                future.set_result(None)
