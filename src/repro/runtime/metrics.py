"""Progress and throughput accounting for runtime sweeps.

:class:`RuntimeMetrics` is the summary object every executor run returns
(and :class:`~repro.runtime.cache.CachedWorkloadCache` accumulates
across sweeps); :class:`ProgressReporter` renders it as a live,
single-line stderr progress display.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class RuntimeMetrics:
    """Counters for one (or several merged) executor runs."""

    #: Jobs submitted, including duplicates and cache hits.
    jobs_total: int = 0
    #: Jobs served from the persistent result store.
    cache_hits: int = 0
    #: Jobs actually simulated to completion.
    simulated: int = 0
    #: Jobs resolved by pointing at another identical job in the same run.
    deduplicated: int = 0
    #: Attempts re-submitted after a failure.
    retries: int = 0
    #: Total seconds slept in retry backoff (deterministic schedule; see
    #: :func:`repro.runtime.backoff.backoff_delay`).
    backoff_total_s: float = 0.0
    #: In-memory traced-scene entries evicted by the workload cache's LRU
    #: bound (:class:`repro.experiments.common.WorkloadCache`).
    evictions: int = 0
    #: Jobs whose worker execution exceeded the per-job timeout.
    timeouts: int = 0
    #: Jobs degraded to serial in-process execution (timeout/broken pool).
    serial_fallbacks: int = 0
    #: Jobs that exhausted their retry budget.
    failed: int = 0
    #: Jobs currently executing (transient; only meaningful live).
    running: int = 0
    #: Wall-clock seconds each simulated job took.
    job_seconds: List[float] = field(default_factory=list)
    #: Wall-clock seconds for the whole run.
    elapsed_seconds: float = 0.0
    #: Simulated jobs per *effective* timing backend (what actually ran,
    #: after any vector-to-stepped fallback) — e.g. ``{"vector": 12,
    #: "stepped": 3}``.  Cache hits and dedups are not counted; only
    #: fresh simulations say anything about backend usage.
    backends: Dict[str, int] = field(default_factory=dict)

    @property
    def done(self) -> int:
        """Jobs resolved so far, however they were served."""
        return self.cache_hits + self.simulated + self.deduplicated

    @property
    def throughput(self) -> float:
        """Resolved jobs per second of wall clock."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.done / self.elapsed_seconds

    @property
    def mean_job_seconds(self) -> float:
        """Mean per-job simulation latency (simulated jobs only)."""
        if not self.job_seconds:
            return 0.0
        return sum(self.job_seconds) / len(self.job_seconds)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of submitted jobs served from the store."""
        if self.jobs_total == 0:
            return 0.0
        return self.cache_hits / self.jobs_total

    def merge(self, other: "RuntimeMetrics") -> "RuntimeMetrics":
        """Accumulate another run's counters into this one."""
        self.jobs_total += other.jobs_total
        self.cache_hits += other.cache_hits
        self.simulated += other.simulated
        self.deduplicated += other.deduplicated
        self.retries += other.retries
        self.backoff_total_s += other.backoff_total_s
        self.evictions += other.evictions
        self.timeouts += other.timeouts
        self.serial_fallbacks += other.serial_fallbacks
        self.failed += other.failed
        self.job_seconds.extend(other.job_seconds)
        self.elapsed_seconds += other.elapsed_seconds
        for backend, count in other.backends.items():
            self.backends[backend] = self.backends.get(backend, 0) + count
        return self

    def summary(self) -> str:
        """One-line human-readable account of the run."""
        parts = [
            f"{self.done}/{self.jobs_total} jobs",
            f"{self.cache_hits} cached",
            f"{self.simulated} simulated",
        ]
        if self.deduplicated:
            parts.append(f"{self.deduplicated} deduplicated")
        if self.backends:
            breakdown = "/".join(
                f"{count} {backend}"
                for backend, count in sorted(self.backends.items())
            )
            parts.append(f"backends {breakdown}")
        if self.retries:
            parts.append(
                f"{self.retries} retries "
                f"({self.backoff_total_s:.2f}s backoff)"
            )
        if self.evictions:
            parts.append(f"{self.evictions} evictions")
        if self.timeouts:
            parts.append(f"{self.timeouts} timeouts")
        if self.serial_fallbacks:
            parts.append(f"{self.serial_fallbacks} serial fallbacks")
        if self.failed:
            parts.append(f"{self.failed} failed")
        parts.append(f"{self.elapsed_seconds:.2f}s")
        if self.simulated:
            parts.append(f"{self.mean_job_seconds:.2f}s/job")
        if self.elapsed_seconds > 0:
            parts.append(f"{self.throughput:.1f} jobs/s")
        return ", ".join(parts)


class ProgressReporter:
    """Live single-line progress display on stderr (or any stream).

    Disabled by default; the executor updates it after every state
    change.  The line is rewritten in place with ``\\r`` and finished
    with a newline by :meth:`close`, so it composes with ordinary
    stdout report output.
    """

    def __init__(self, enabled: bool = False, stream=None):
        self.enabled = enabled
        self.stream = stream if stream is not None else sys.stderr
        self._wrote = False

    def update(self, metrics: RuntimeMetrics) -> None:
        """Redraw the progress line for the current counters."""
        if not self.enabled:
            return
        line = (
            f"[repro] {metrics.done}/{metrics.jobs_total} done "
            f"({metrics.cache_hits} cached, {metrics.running} running"
        )
        if metrics.failed or metrics.timeouts:
            line += f", {metrics.failed} failed, {metrics.timeouts} timed out"
        line += ")"
        self.stream.write("\r" + line.ljust(79))
        self.stream.flush()
        self._wrote = True

    def close(self, metrics: Optional[RuntimeMetrics] = None) -> None:
        """Finish the line; optionally print the final summary."""
        if not self.enabled:
            return
        if metrics is not None:
            self.stream.write(
                "\r" + f"[repro] {metrics.summary()}".ljust(79) + "\n"
            )
        elif self._wrote:
            self.stream.write("\n")
        self.stream.flush()
