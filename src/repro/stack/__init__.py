"""Traversal stack architectures.

Every design the paper discusses lives here, behind one interface
(:class:`repro.stack.base.StackModel`):

* :class:`~repro.stack.reference.ReferenceStack` — unbounded logical stack,
  the correctness oracle for property tests.
* :class:`~repro.stack.full.FullStack` — RB_FULL: per-ray stack entirely in
  on-chip storage (impractical in hardware; the paper's upper bound).
* :class:`~repro.stack.baseline.BaselineStack` — RB_N short stack spilling
  directly to thread-local global memory (paper Fig. 3).
* :class:`~repro.stack.sms.SmsStack` — the paper's contribution: RB stack
  backed by a circular-queue shared-memory stack, with optional skewed bank
  access and dynamic intra-warp reallocation.

Stack operations return explicit :class:`~repro.stack.ops.MemoryOp` chains;
the timing model (``repro.gpu``) prices them, so these classes stay purely
architectural.
"""

from repro.stack.ops import MemSpace, OpKind, MemoryOp, StackActivity
from repro.stack.fields import RayBufferFields
from repro.stack.layout import SharedStackLayout
from repro.stack.skew import base_entry_index
from repro.stack.base import StackModel
from repro.stack.reference import ReferenceStack
from repro.stack.full import FullStack
from repro.stack.baseline import BaselineStack
from repro.stack.sms import SmsStack
from repro.stack.interwarp import InterWarpSmsStack, SlotView
from repro.stack.factory import make_stack_model

__all__ = [
    "MemSpace",
    "OpKind",
    "MemoryOp",
    "StackActivity",
    "RayBufferFields",
    "SharedStackLayout",
    "base_entry_index",
    "StackModel",
    "ReferenceStack",
    "FullStack",
    "BaselineStack",
    "SmsStack",
    "InterWarpSmsStack",
    "SlotView",
    "make_stack_model",
]
