"""RB_FULL: a full per-ray stack kept entirely on chip.

The paper's upper bound (Fig. 8, Fig. 13 "FULL" bars): no spills, no
reloads, no traffic — but impractical hardware, since worst-case depth
(~30 entries x 8 B x 128 threads) would rival the register file.  The
model is the reference stack under another name, kept separate so results
read like the paper's configurations.
"""

from __future__ import annotations

from repro.stack.reference import ReferenceStack


class FullStack(ReferenceStack):
    """Unbounded on-chip stack; generates no memory operations."""

    #: No memory ops at all — trivially slot-invariant for vector replay.
    vector_replayable = True
