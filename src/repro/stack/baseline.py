"""Baseline short stack: RB stack spilling directly to global memory.

This is the architecture of paper Fig. 3: an N-entry on-chip ray-buffer
stack per thread.  A push into a full stack first spills the *oldest*
entry to thread-local global memory (one global store); every pop while
spilled entries exist eagerly reloads the most recently spilled entry
into the bottom of the RB stack (one global load), exactly the sequence
the figure's steps 2/3 and 4/5 show.

Spill addresses are thread-specific (``spill_base + thread * region``),
which is why the paper notes spill traffic cannot coalesce across
divergent rays.
"""

from __future__ import annotations

from typing import List

from repro.errors import StackError
from repro.stack.base import StackModel
from repro.stack.ops import (
    EMPTY_ACTIVITY,
    MemoryOp,
    MemSpace,
    OpKind,
    StackActivity,
    no_activity,
)
from repro.stack.spill import SPILL_BASE_ADDRESS, SpillRegion


class BaselineStack(StackModel):
    """RB_N short stack with direct global-memory overflow."""

    #: Spill addresses shift by whole warp windows per slot; no shared
    #: memory involved — safe for canonical vector replay.
    vector_replayable = True

    def __init__(
        self,
        rb_entries: int = 8,
        warp_size: int = 32,
        spill_base: int = SPILL_BASE_ADDRESS,
        warp_index: int = 0,
    ) -> None:
        super().__init__(warp_size)
        if rb_entries < 1:
            raise StackError("RB stack needs at least one entry")
        self.rb_entries = rb_entries
        self.warp_index = warp_index
        self._spill_region = SpillRegion(
            warp_index, warp_size=warp_size, base_address=spill_base
        )
        self._rb: List[List[int]] = [[] for _ in range(warp_size)]
        self._spilled: List[List[int]] = [[] for _ in range(warp_size)]

    def _spill_address(self, lane: int, index: int) -> int:
        return self._spill_region.address(lane, index)

    def push(self, lane: int, value: int) -> StackActivity:
        self._check_lane(lane)
        rb = self._rb[lane]
        activity = EMPTY_ACTIVITY
        if len(rb) == self.rb_entries:
            # Overflow: oldest RB entry spills to global memory.
            oldest = rb.pop(0)
            spill = self._spilled[lane]
            activity = no_activity()
            activity.ops.append(
                MemoryOp(
                    space=MemSpace.GLOBAL,
                    kind=OpKind.STORE,
                    address=self._spill_address(lane, len(spill)),
                )
            )
            spill.append(oldest)
        rb.append(value)
        return activity

    def pop(self, lane: int) -> "tuple[int, StackActivity]":
        self._check_lane(lane)
        rb = self._rb[lane]
        if not rb:
            raise StackError(f"pop from empty baseline stack (lane {lane})")
        value = rb.pop()
        activity = EMPTY_ACTIVITY
        spill = self._spilled[lane]
        if spill:
            # Eager reload: most recently spilled entry returns to the
            # bottom of the RB stack (Fig. 3 steps 4-5).
            activity = no_activity()
            activity.ops.append(
                MemoryOp(
                    space=MemSpace.GLOBAL,
                    kind=OpKind.LOAD,
                    address=self._spill_address(lane, len(spill) - 1),
                )
            )
            rb.insert(0, spill.pop())
        return value, activity

    def depth(self, lane: int) -> int:
        self._check_lane(lane)
        return len(self._rb[lane]) + len(self._spilled[lane])

    def contents(self, lane: int) -> List[int]:
        self._check_lane(lane)
        return list(self._spilled[lane]) + list(self._rb[lane])

    def finish(self, lane: int) -> None:
        self._check_lane(lane)
        self._rb[lane].clear()
        self._spilled[lane].clear()

    def reset(self) -> None:
        self._rb = [[] for _ in range(self.warp_size)]
        self._spilled = [[] for _ in range(self.warp_size)]
