"""Physical layout of SH stacks in shared memory (paper Fig. 9).

Shared memory is organized as 32 banks of 4-byte words; a row of 32 words
spans 128 bytes.  Each lane owns a static region of ``entries * 8`` bytes.
Regions pack row-major: with 8-entry stacks (64 B), two lanes share each
128-byte row, so even lanes cover banks 0-15 and odd lanes banks 16-31 —
exactly the Fig. 9 picture.  Entry ``e`` of a lane's region spans the two
adjacent banks ``(2e, 2e+1)`` relative to the region start.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ConfigError

#: Shared-memory bank count and word width on the modeled GPU.
BANK_COUNT = 32
BANK_WIDTH_BYTES = 4
ROW_BYTES = BANK_COUNT * BANK_WIDTH_BYTES
#: Bytes per stack entry (one 8-byte node address).
ENTRY_BYTES = 8


@dataclass(frozen=True)
class SharedStackLayout:
    """Address arithmetic for per-lane SH stack regions.

    Args:
        entries: SH stack entries per lane (N).
        warp_size: lanes per warp.
        base_address: byte offset of this warp's SH stack block within
            shared memory (each warp in the RT unit gets its own block).
    """

    entries: int
    warp_size: int = 32
    base_address: int = 0

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ConfigError("SH stack layout needs at least one entry")
        if self.warp_size <= 0:
            raise ConfigError("warp size must be positive")

    @property
    def region_bytes(self) -> int:
        """Bytes of shared memory owned by one lane."""
        return self.entries * ENTRY_BYTES

    @property
    def lanes_per_row(self) -> int:
        """How many lane regions fit in one 128-byte bank row."""
        return max(1, ROW_BYTES // self.region_bytes)

    @property
    def total_bytes(self) -> int:
        """Shared memory consumed by one warp's stacks."""
        rows_needed = (self.warp_size + self.lanes_per_row - 1) // self.lanes_per_row
        if self.region_bytes >= ROW_BYTES:
            return self.warp_size * self.region_bytes
        return rows_needed * ROW_BYTES

    def region_base(self, lane: int) -> int:
        """Byte address of lane ``lane``'s region."""
        if not 0 <= lane < self.warp_size:
            raise ConfigError(f"lane {lane} outside warp of {self.warp_size}")
        if self.region_bytes >= ROW_BYTES:
            return self.base_address + lane * self.region_bytes
        row = lane // self.lanes_per_row
        slot = lane % self.lanes_per_row
        return self.base_address + row * ROW_BYTES + slot * self.region_bytes

    def entry_address(self, lane: int, entry: int) -> int:
        """Byte address of entry ``entry`` in lane ``lane``'s region."""
        if not 0 <= entry < self.entries:
            raise ConfigError(f"entry {entry} outside stack of {self.entries}")
        return self.region_base(lane) + entry * ENTRY_BYTES

    def banks_of_entry(self, lane: int, entry: int) -> Tuple[int, int]:
        """The two banks an 8-byte entry spans (Fig. 9's coloring)."""
        address = self.entry_address(lane, entry)
        first = (address // BANK_WIDTH_BYTES) % BANK_COUNT
        second = ((address + BANK_WIDTH_BYTES) // BANK_WIDTH_BYTES) % BANK_COUNT
        return first, second


def words_of_access(address: int, size_bytes: int) -> List[int]:
    """Word indices touched by an access (for bank-conflict accounting)."""
    first = address // BANK_WIDTH_BYTES
    last = (address + size_bytes - 1) // BANK_WIDTH_BYTES
    return list(range(first, last + 1))


def bank_of_word(word: int) -> int:
    """Bank a word index maps to."""
    return word % BANK_COUNT
