"""Skewed bank access (paper section V-A / VI-B).

With every lane starting its circular SH stack at entry 0, all 32 lanes of
a warp hit the same entry index — and therefore the same shared-memory
banks — in lockstep, serializing accesses.  The paper's fix offsets each
lane's *base entry* by

    base = (TID / k) mod N,  where k = 32 / (N * 2)

so first accesses spread across the banks (Fig. 9: with N = 8, threads
0 and 16 start at entry 0, threads 2 and 18 at entry 1, ...).
"""

from __future__ import annotations

from repro.errors import ConfigError

#: Number of lanes in a warp (fixed by the architecture).
WARP_SIZE = 32


def skew_group_size(stack_entries: int) -> int:
    """The paper's ``k = 32 / (N * 2)``, clamped to at least 1.

    ``k`` is the number of consecutive lanes sharing a base entry.  For
    ``N >= 16`` the formula gives ``k <= 1``; clamping to 1 assigns every
    lane its own base, the natural extension.
    """
    if stack_entries <= 0:
        raise ConfigError("SH stack must have at least one entry to skew")
    return max(1, WARP_SIZE // (stack_entries * 2))


def base_entry_index(tid: int, stack_entries: int, skewed: bool = True) -> int:
    """Initial Top/Bottom entry index for lane ``tid``.

    Without skewing every lane starts at entry 0 (the paper's initial
    design, which it shows suffers severe bank conflicts).
    """
    if not 0 <= tid < WARP_SIZE:
        raise ConfigError(f"thread id {tid} outside warp of {WARP_SIZE}")
    if not skewed:
        return 0
    k = skew_group_size(stack_entries)
    return (tid // k) % stack_entries
