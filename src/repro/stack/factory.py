"""Construct stack models from simulator configuration."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConfigError
from repro.stack.base import StackModel
from repro.stack.baseline import BaselineStack
from repro.stack.full import FullStack
from repro.stack.sms import SmsStack

if TYPE_CHECKING:
    from repro.gpu.config import GPUConfig


def make_stack_model(config: "GPUConfig", warp_index: int = 0) -> StackModel:
    """Build the stack model one warp slot uses under ``config``.

    ``warp_index`` must be unique per concurrently resident warp so that
    global spill regions and shared-memory blocks do not alias.
    """
    if config.rb_stack_entries is None:
        return FullStack(warp_size=config.warp_size)
    if config.sh_stack_entries == 0:
        return BaselineStack(
            rb_entries=config.rb_stack_entries,
            warp_size=config.warp_size,
            warp_index=warp_index,
        )
    if config.sh_stack_entries < 0:
        raise ConfigError("sh_stack_entries must be >= 0")
    from repro.stack.layout import SharedStackLayout

    # Shared memory is per-SM: the warp's slot within its RT unit picks its
    # block.  Global spill regions must be unique GPU-wide, so they key on
    # the full warp_index.
    slot = warp_index % config.max_warps_per_rt_unit
    block_bytes = SharedStackLayout(
        entries=config.sh_stack_entries, warp_size=config.warp_size
    ).total_bytes
    layout = SharedStackLayout(
        entries=config.sh_stack_entries,
        warp_size=config.warp_size,
        base_address=slot * block_bytes,
    )
    return SmsStack(
        rb_entries=config.rb_stack_entries,
        sh_entries=config.sh_stack_entries,
        warp_size=config.warp_size,
        skewed=config.skewed_bank_access,
        realloc=config.intra_warp_realloc,
        max_borrows=config.max_borrows,
        max_flushes=config.max_flushes,
        layout=layout,
        warp_index=warp_index,
    )
