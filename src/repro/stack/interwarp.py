"""Inter-warp SH stack reallocation — the design the paper rejected.

Paper section V-B limits reallocation to threads *within the same warp*,
arguing that borrowing across warps "would involve complex tracking and
management of stack ownerships, as threads would need to return borrowed
stacks to the newly entered warp."  This module implements that rejected
design so the trade-off can be measured: one :class:`InterWarpSmsStack`
spans every warp slot of an RT unit, lanes may borrow any idle region in
the unit, and the complexity the paper predicted shows up concretely in
:meth:`reset_slot` — a newly admitted warp can find its lanes' own regions
still on loan to other warps, leaving them regionless until the borrower
releases.

The ``inter_warp_study`` ablation compares it against intra-warp
reallocation; the observed gain is small, supporting the paper's choice.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import StackError
from repro.stack.layout import SharedStackLayout
from repro.stack.ops import StackActivity
from repro.stack.sms import SmsStack, _Region
from repro.stack.spill import SPILL_BASE_ADDRESS, SpillRegion


class InterWarpSmsStack(SmsStack):
    """SMS stacks for all warp slots of one RT unit, with unit-wide borrowing.

    Lanes are addressed globally: slot ``s``, lane ``l`` is lane
    ``s * lanes_per_warp + l``.  Shared-memory blocks and global spill
    regions stay per-slot, exactly as in the intra-warp design — only the
    borrow domain widens.
    """

    def __init__(
        self,
        rb_entries: int = 8,
        sh_entries: int = 8,
        slots: int = 4,
        lanes_per_warp: int = 32,
        skewed: bool = False,
        max_borrows: int = 4,
        max_flushes: int = 3,
        spill_base: int = SPILL_BASE_ADDRESS,
        unit_index: int = 0,
    ) -> None:
        if slots < 1:
            raise StackError("inter-warp stack needs at least one slot")
        self.slots = slots
        self.lanes_per_warp = lanes_per_warp
        block = SharedStackLayout(
            entries=sh_entries, warp_size=lanes_per_warp
        ).total_bytes
        self._layouts = [
            SharedStackLayout(
                entries=sh_entries,
                warp_size=lanes_per_warp,
                base_address=slot * block,
            )
            for slot in range(slots)
        ]
        self._spill_regions = [
            SpillRegion(
                unit_index * slots + slot,
                warp_size=lanes_per_warp,
                base_address=spill_base,
            )
            for slot in range(slots)
        ]
        super().__init__(
            rb_entries=rb_entries,
            sh_entries=sh_entries,
            warp_size=slots * lanes_per_warp,
            skewed=skewed,
            realloc=True,
            max_borrows=max_borrows,
            max_flushes=max_flushes,
            layout=self._layouts[0],
            spill_base=spill_base,
            warp_index=unit_index * slots,
        )

    # ------------------------------------------------------------------
    # per-slot addressing
    # ------------------------------------------------------------------

    def _shared_address(self, region: _Region, entry: int) -> int:
        slot, lane = divmod(region.owner, self.lanes_per_warp)
        return self._layouts[slot].entry_address(lane, entry)

    def _spill_address(self, lane: int, index: int) -> int:
        slot, local = divmod(lane, self.lanes_per_warp)
        return self._spill_regions[slot].address(local, index)

    # ------------------------------------------------------------------
    # warp replacement — the paper's complexity case
    # ------------------------------------------------------------------

    def reset_slot(self, slot: int) -> None:
        """A new warp enters ``slot``: reinitialize its lanes.

        Regions this slot's lanes had *borrowed* are returned to their
        owners.  A lane's *own* region may still be on loan to a lane of
        another slot; it stays there, and the new lane starts regionless —
        it reclaims the region (or borrows another) on its first overflow.
        """
        if not 0 <= slot < self.slots:
            raise StackError(f"slot {slot} outside RT unit of {self.slots}")
        start = slot * self.lanes_per_warp
        lanes = range(start, start + self.lanes_per_warp)
        for lane in lanes:
            self._rb[lane] = []
            self._spilled[lane] = []
            self._finished[lane] = False
            for region in self._chain[lane]:
                region.clear()
                self._borrowed_by[region.owner] = None
                self._idle[region.owner] = self._finished[region.owner]
            self._chain[lane] = []
        for lane in lanes:
            self._idle[lane] = False
            if self._borrowed_by[lane] is None or self._borrowed_by[lane] == lane:
                region = self._own[lane]
                region.clear()
                self._borrowed_by[lane] = lane
                self._chain[lane] = [region]
            # else: on loan to another slot; the lane starts regionless.

    def regionless_lanes(self, slot: int) -> List[int]:
        """Lanes of ``slot`` whose own region is on loan elsewhere."""
        start = slot * self.lanes_per_warp
        return [
            lane
            for lane in range(start, start + self.lanes_per_warp)
            if not self._chain[lane] and not self._finished[lane]
        ]


class SlotView:
    """Adapter exposing one slot of an :class:`InterWarpSmsStack` as a
    per-warp :class:`~repro.stack.base.StackModel` to the RT unit."""

    def __init__(self, shared: InterWarpSmsStack, slot: int) -> None:
        self.shared = shared
        self.slot = slot
        self.warp_size = shared.lanes_per_warp

    def _global(self, lane: int) -> int:
        return self.slot * self.shared.lanes_per_warp + lane

    def push(self, lane: int, value: int) -> StackActivity:
        return self.shared.push(self._global(lane), value)

    def pop(self, lane: int):
        return self.shared.pop(self._global(lane))

    def depth(self, lane: int) -> int:
        return self.shared.depth(self._global(lane))

    def contents(self, lane: int):
        return self.shared.contents(self._global(lane))

    def finish(self, lane: int) -> None:
        self.shared.finish(self._global(lane))

    def reset(self) -> None:
        self.shared.reset_slot(self.slot)
