"""Unbounded reference stack — the correctness oracle.

Generates no memory traffic and never overflows.  Every other model must
pop exactly the values this one pops for any push/pop sequence; the
property-based tests in ``tests/stack/test_equivalence.py`` enforce that.
"""

from __future__ import annotations

from typing import List

from repro.errors import StackError
from repro.stack.base import StackModel
from repro.stack.ops import EMPTY_ACTIVITY, StackActivity


class ReferenceStack(StackModel):
    """A plain per-lane Python list with stack semantics."""

    def __init__(self, warp_size: int = 32) -> None:
        super().__init__(warp_size)
        self._stacks: List[List[int]] = [[] for _ in range(warp_size)]

    def push(self, lane: int, value: int) -> StackActivity:
        self._check_lane(lane)
        self._stacks[lane].append(value)
        return EMPTY_ACTIVITY

    def pop(self, lane: int) -> "tuple[int, StackActivity]":
        self._check_lane(lane)
        if not self._stacks[lane]:
            raise StackError(f"pop from empty reference stack (lane {lane})")
        return self._stacks[lane].pop(), EMPTY_ACTIVITY

    def depth(self, lane: int) -> int:
        self._check_lane(lane)
        return len(self._stacks[lane])

    def contents(self, lane: int) -> List[int]:
        self._check_lane(lane)
        return list(self._stacks[lane])

    def finish(self, lane: int) -> None:
        self._check_lane(lane)
        self._stacks[lane].clear()

    def reset(self) -> None:
        self._stacks = [[] for _ in range(self.warp_size)]
