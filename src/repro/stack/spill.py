"""Thread-local global-memory spill regions.

Spilled stack entries live in thread-local ("local") memory, which GPUs
lay out *interleaved*: entry ``i`` of all 32 lanes is contiguous, so a
warp spilling the same entry index coalesces into one or two cache lines,
while a single lane's consecutive entries are strided ``warp_size *
ENTRY_BYTES`` apart.  Under the divergent stack depths of incoherent rays
the lanes' indices differ, accesses scatter across lines, and spill
traffic stops coalescing — the exact behaviour paper section II-C
describes.
"""

from __future__ import annotations

from repro.stack.base import ENTRY_BYTES

#: Base of the thread-local spill space in the simulated address map.
SPILL_BASE_ADDRESS = 0x8000_0000
#: Entry slots reserved per lane before the region wraps.
SPILL_SLOTS_PER_LANE = 128


class SpillRegion:
    """Address generator for one warp's spill space."""

    def __init__(
        self,
        warp_index: int,
        warp_size: int = 32,
        base_address: int = SPILL_BASE_ADDRESS,
    ) -> None:
        self.warp_size = warp_size
        self.warp_bytes = SPILL_SLOTS_PER_LANE * warp_size * ENTRY_BYTES
        self.base = base_address + warp_index * self.warp_bytes

    def address(self, lane: int, index: int) -> int:
        """Interleaved (SoA) address of spill slot ``index`` for ``lane``."""
        slot = index % SPILL_SLOTS_PER_LANE
        return self.base + slot * self.warp_size * ENTRY_BYTES + lane * ENTRY_BYTES
