"""Ray-buffer bookkeeping fields (paper section VI-A / VI-C).

The SMS stack manager extends each thread's ray-buffer record with Top,
Bottom and Overflow fields, plus Next TID / Idle / Priority / Flush for
dynamic intra-warp reallocation.  This module models those fields and
reproduces the paper's storage-overhead arithmetic (96 B + 176 B = 272 B
per SM for the default configuration).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2

from repro.errors import ConfigError


@dataclass
class RayBufferFields:
    """Per-thread SMS bookkeeping state.

    ``top`` / ``bottom`` are circular entry indices into the lane's SH
    stack region; ``overflow`` flags entries spilled to global memory;
    ``idle`` marks a finished lane whose SH stack may be borrowed;
    ``next_tid`` links borrowed stacks (-1 = end of chain); ``priority``
    tracks allocation order and ``flush`` counts consecutive flushes.
    """

    top: int = 0
    bottom: int = 0
    overflow: bool = False
    idle: bool = False
    next_tid: int = -1
    priority: int = 0
    flush: int = 0


def field_bits(
    sh_entries: int,
    warp_size: int = 32,
    max_borrows: int = 4,
    max_flushes: int = 3,
) -> dict:
    """Bit width of each ray-buffer field for a given configuration."""
    if sh_entries <= 0:
        raise ConfigError("sh_entries must be positive")
    index_bits = max(1, ceil(log2(sh_entries)))
    return {
        "top": index_bits,
        "bottom": index_bits,
        "overflow": 1,
        "idle": 1,
        "next_tid": max(1, ceil(log2(warp_size))),
        "priority": max(1, ceil(log2(max_borrows))),
        "flush": max(1, ceil(log2(max_flushes + 1))),
    }


def overhead_bytes_per_rt_unit(
    sh_entries: int = 8,
    warp_size: int = 32,
    warps_per_rt_unit: int = 4,
    max_borrows: int = 4,
    max_flushes: int = 3,
) -> dict:
    """Storage overhead of the SMS fields, as in paper section VI-C.

    For the default configuration (8-entry SH stacks, 32 threads, 4 warps)
    this yields 96 bytes of Top/Bottom state and 176 bytes of
    Overflow/Idle/NextTID/Priority/Flush state — 272 bytes per RT unit.
    """
    bits = field_bits(sh_entries, warp_size, max_borrows, max_flushes)
    threads = warp_size * warps_per_rt_unit
    index_bits = (bits["top"] + bits["bottom"]) * threads
    other_bits = (
        bits["overflow"] + bits["idle"] + bits["next_tid"]
        + bits["priority"] + bits["flush"]
    ) * threads
    return {
        "top_bottom_bytes": index_bits // 8,
        "management_bytes": other_bits // 8,
        "total_bytes": index_bits // 8 + other_bits // 8,
    }
