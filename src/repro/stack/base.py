"""Abstract interface every traversal stack architecture implements.

A stack model manages the traversal stacks of one warp (``warp_size``
lanes).  Pushes and pops return the memory-request chains the paper's
stack manager would generate; the timing model prices them.  Models also
expose logical state (depth, contents) so tests can verify LIFO
equivalence against the reference stack.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List

from repro.errors import StackError
from repro.stack.ops import StackActivity

#: Bytes per traversal stack entry (a node address), as in the paper.
ENTRY_BYTES = 8


class StackModel(ABC):
    """Per-warp traversal stack manager."""

    #: Whether the vector timing backend may replay this model once on
    #: a canonical (slot 0, SM 0) instance and reuse the resulting op
    #: chains for every warp slot.  A model may only opt in when its
    #: push/pop behaviour is slot-invariant: shared-memory addresses may
    #: shift only by a bank-row multiple per slot and global spill
    #: addresses only by a whole ``warp_bytes`` window (see
    #: :mod:`repro.gpu.vector.plan`).  Models that keep cross-warp
    #: state (e.g. inter-warp reallocation views) must stay ``False``.
    vector_replayable = False

    def __init__(self, warp_size: int = 32) -> None:
        if warp_size <= 0:
            raise StackError("warp size must be positive")
        self.warp_size = warp_size

    @abstractmethod
    def push(self, lane: int, value: int) -> StackActivity:
        """Push ``value`` for ``lane``; returns the spill op chain (if any)."""

    @abstractmethod
    def pop(self, lane: int) -> "tuple[int, StackActivity]":
        """Pop ``lane``'s newest value; returns it and the reload op chain.

        Raises:
            StackError: when the lane's stack is logically empty.
        """

    @abstractmethod
    def depth(self, lane: int) -> int:
        """Current logical stack depth of ``lane``."""

    @abstractmethod
    def contents(self, lane: int) -> List[int]:
        """Logical stack contents, oldest first (test/diagnostic use)."""

    def finish(self, lane: int) -> None:
        """Lane's ray completed traversal.

        Any leftover entries (an any-hit ray abandoning its stack) are
        discarded; reallocation-aware models additionally release borrowed
        stacks and mark the lane's own stack idle.
        """

    def reset(self) -> None:
        """Restore the model to its initial state (a new warp arrives)."""

    def _check_lane(self, lane: int) -> None:
        if not 0 <= lane < self.warp_size:
            raise StackError(f"lane {lane} outside warp of {self.warp_size}")
