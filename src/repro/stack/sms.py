"""SMS: the paper's two-level hierarchical traversal stack.

Architecture (paper sections IV and VI):

* the **RB stack** (primary) holds the newest entries in the ray buffer —
  register-class storage, no memory traffic;
* the **SH stack** (secondary) is a per-lane circular queue in shared
  memory, tracked by Top/Bottom fields; RB overflow spills the oldest RB
  entry to the SH top (one shared store), pops eagerly reload the SH top
  into the RB bottom (one shared load);
* **global memory** (tertiary) absorbs SH overflow: a push into two full
  stacks issues shared load -> global store -> shared store; a pop with
  global-resident entries refills the SH bottom with global load ->
  shared store.

Optimizations:

* **skewed bank access** — each lane's circular queue starts at
  ``base = (TID / k) mod N`` (``repro.stack.skew``), spreading first
  touches across shared-memory banks;
* **dynamic intra-warp reallocation** — a lane that exhausts its SH region
  borrows the idle region of a finished lane (up to ``max_borrows``
  concurrent borrows, chained oldest-to-newest).  When nothing is
  borrowable, the *bottom* region of the chain is flushed wholesale to
  global memory and rotated to the top (up to ``max_flushes`` consecutive
  flushes per allocated region); beyond that the model degrades gracefully
  to per-entry global spills.

Logical LIFO order is preserved across all three levels and every
reallocation path; the property tests verify pop-equivalence with the
unbounded reference stack under arbitrary operation sequences.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.errors import StackError
from repro.stack.base import StackModel
from repro.stack.layout import SharedStackLayout
from repro.stack.ops import (
    EMPTY_ACTIVITY,
    MemoryOp,
    MemSpace,
    OpKind,
    StackActivity,
    no_activity,
)
from repro.stack.skew import base_entry_index
from repro.stack.spill import SpillRegion

#: Base of the thread-local SH-overflow spill region in global memory.
SPILL_BASE_ADDRESS = 0x9000_0000


class _Region:
    """One lane-sized circular queue in shared memory.

    Entries live at positions ``bottom .. top`` (circular).  ``push_top``
    and ``pop_top`` operate at the newest end (RB-facing), ``spill_bottom``
    and ``refill_bottom`` at the oldest end (global-memory-facing).  When
    the region empties, both pointers reset to the owner's (possibly
    skewed) base entry, matching the paper's field initialization.
    """

    __slots__ = ("owner", "capacity", "base_entry", "top", "bottom",
                 "count", "values", "flush_count")

    def __init__(self, owner: int, capacity: int, base_entry: int) -> None:
        self.owner = owner
        self.capacity = capacity
        self.base_entry = base_entry
        self.top = base_entry
        self.bottom = base_entry
        self.count = 0
        self.values: Deque[int] = deque()
        self.flush_count = 0

    @property
    def is_full(self) -> bool:
        return self.count == self.capacity

    @property
    def is_empty(self) -> bool:
        return self.count == 0

    def clear(self) -> None:
        self.top = self.base_entry
        self.bottom = self.base_entry
        self.count = 0
        self.values.clear()
        self.flush_count = 0

    def push_top(self, value: int) -> int:
        """Store at the newest end; returns the entry index written."""
        if self.is_full:
            raise StackError("push into full SH region")
        if self.count > 0:
            self.top = (self.top + 1) % self.capacity
        self.count += 1
        self.values.append(value)
        return self.top

    def pop_top(self) -> "tuple[int, int]":
        """Read and remove the newest entry; returns (value, entry index)."""
        if self.is_empty:
            raise StackError("pop from empty SH region")
        entry = self.top
        value = self.values.pop()
        self.count -= 1
        if self.count == 0:
            self.top = self.base_entry
            self.bottom = self.base_entry
        else:
            self.top = (self.top - 1) % self.capacity
        return value, entry

    def spill_bottom(self) -> "tuple[int, int]":
        """Read and remove the oldest entry; returns (value, entry index)."""
        if self.is_empty:
            raise StackError("spill from empty SH region")
        entry = self.bottom
        value = self.values.popleft()
        self.count -= 1
        if self.count == 0:
            self.top = self.base_entry
            self.bottom = self.base_entry
        else:
            self.bottom = (self.bottom + 1) % self.capacity
        return value, entry

    def refill_bottom(self, value: int) -> int:
        """Store below the oldest entry; returns the entry index written."""
        if self.is_full:
            raise StackError("refill into full SH region")
        if self.count > 0:
            self.bottom = (self.bottom - 1) % self.capacity
        self.count += 1
        self.values.appendleft(value)
        return self.bottom


class SmsStack(StackModel):
    """The SMS hierarchical stack (RB + SH + global)."""

    #: Slot-invariant by construction: the SH layout base is a bank-row
    #: multiple per slot and spills shift by whole warp windows, so the
    #: vector backend may replay a canonical slot-0 instance.
    vector_replayable = True

    def __init__(
        self,
        rb_entries: int = 8,
        sh_entries: int = 8,
        warp_size: int = 32,
        skewed: bool = False,
        realloc: bool = False,
        max_borrows: int = 4,
        max_flushes: int = 3,
        layout: Optional[SharedStackLayout] = None,
        spill_base: int = SPILL_BASE_ADDRESS,
        warp_index: int = 0,
    ) -> None:
        super().__init__(warp_size)
        if rb_entries < 1:
            raise StackError("RB stack needs at least one entry")
        if sh_entries < 1:
            raise StackError("SH stack needs at least one entry")
        self.rb_entries = rb_entries
        self.sh_entries = sh_entries
        self.skewed = skewed
        self.realloc = realloc
        self.max_borrows = max_borrows
        self.max_flushes = max_flushes
        self.warp_index = warp_index
        self.layout = layout or SharedStackLayout(
            entries=sh_entries, warp_size=warp_size
        )
        self._spill_region = SpillRegion(
            warp_index, warp_size=warp_size, base_address=spill_base
        )
        # Statistics exposed to the timing model / experiments.
        self.borrow_count = 0
        self.flush_count = 0
        self.forced_flush_count = 0
        self.reset()

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------

    def reset(self) -> None:
        self._rb: List[List[int]] = [[] for _ in range(self.warp_size)]
        self._spilled: List[List[int]] = [[] for _ in range(self.warp_size)]
        self._own: List[_Region] = [
            _Region(
                owner=lane,
                capacity=self.sh_entries,
                base_entry=base_entry_index(
                    lane % 32, self.sh_entries, skewed=self.skewed
                ),
            )
            for lane in range(self.warp_size)
        ]
        # Chains are ordered oldest (bottom) -> newest (top).
        self._chain: List[List[_Region]] = [[self._own[lane]] for lane in range(self.warp_size)]
        self._idle: List[bool] = [False] * self.warp_size
        self._finished: List[bool] = [False] * self.warp_size
        # Which lane currently holds lane i's own region (None = free).
        self._borrowed_by: List[Optional[int]] = list(range(self.warp_size))

    # ------------------------------------------------------------------
    # address helpers
    # ------------------------------------------------------------------

    def _shared_address(self, region: _Region, entry: int) -> int:
        return self.layout.entry_address(region.owner, entry)

    def _spill_address(self, lane: int, index: int) -> int:
        return self._spill_region.address(lane, index)

    def _chain_walk_cycles(self, lane: int) -> int:
        """Latency of walking Next TID links to find the top stack."""
        if not self.realloc:
            return 0
        return max(0, len(self._chain[lane]) - 1)

    # ------------------------------------------------------------------
    # chain management (reallocation)
    # ------------------------------------------------------------------

    def _sh_count(self, lane: int) -> int:
        return sum(region.count for region in self._chain[lane])

    def _top_nonempty_region(self, lane: int) -> Optional[_Region]:
        for region in reversed(self._chain[lane]):
            if not region.is_empty:
                return region
        return None

    def _release_empty_borrowed(self, lane: int) -> None:
        """Return empty borrowed regions to their owners' idle pools.

        A released region becomes *borrowable* (idle) only if its owner
        has finished; an owner made regionless by an inter-warp reset is
        active and reclaims the region itself on its next overflow.
        """
        chain = self._chain[lane]
        kept: List[_Region] = []
        for region in chain:
            if region.is_empty and region.owner != lane:
                region.clear()
                self._borrowed_by[region.owner] = None
                self._idle[region.owner] = self._finished[region.owner]
            else:
                kept.append(region)
        self._chain[lane] = kept

    def _reclaim_or_borrow(self, lane: int) -> Optional[_Region]:
        """Give a chainless lane an SH region: its own if free, else borrow."""
        if self._borrowed_by[lane] is None:
            region = self._own[lane]
            region.clear()
            self._borrowed_by[lane] = lane
            self._idle[lane] = False
            self._chain[lane].append(region)
            return region
        return self._try_borrow(lane)

    def _try_borrow(self, lane: int) -> Optional[_Region]:
        """Borrow an idle finished lane's region, if policy allows."""
        if not self.realloc:
            return None
        if len(self._chain[lane]) - 1 >= self.max_borrows:
            return None
        for other in range(self.warp_size):
            if other != lane and self._idle[other]:
                self._idle[other] = False
                self._borrowed_by[other] = lane
                region = self._own[other]
                region.clear()
                self._chain[lane].append(region)
                self.borrow_count += 1
                return region
        return None

    # ------------------------------------------------------------------
    # stack protocol
    # ------------------------------------------------------------------

    def push(self, lane: int, value: int) -> StackActivity:
        self._check_lane(lane)
        if self._finished[lane]:
            raise StackError(
                f"lane {lane} has finished; reset() the warp before reuse"
            )
        rb = self._rb[lane]
        activity = EMPTY_ACTIVITY
        if len(rb) == self.rb_entries:
            oldest = rb.pop(0)
            activity = self._spill_to_sh(lane, oldest)
        rb.append(value)
        return activity

    def _spill_to_sh(self, lane: int, value: int) -> StackActivity:
        """Move the oldest RB entry into the SH hierarchy."""
        activity = no_activity()
        chain = self._chain[lane]
        if not chain:
            # A lane left regionless (its own region is on loan after an
            # inter-warp reset): reclaim or borrow; failing both, spill
            # straight to global memory — still LIFO-correct, since any
            # later-acquired SH region only ever holds newer entries.
            if self._reclaim_or_borrow(lane) is None:
                spill = self._spilled[lane]
                activity.ops.append(
                    MemoryOp(
                        space=MemSpace.GLOBAL,
                        kind=OpKind.STORE,
                        address=self._spill_address(lane, len(spill)),
                    )
                )
                spill.append(value)
                return activity
            chain = self._chain[lane]
        top_region = chain[-1]
        if top_region.is_full:
            borrowed = self._try_borrow(lane)
            if borrowed is not None:
                top_region = borrowed
            elif self.realloc:
                # No stack to borrow: flush the bottom region wholesale to
                # global memory and rotate it to the top (paper VI-B).  The
                # paper bounds this at max_flushes per allocated region and
                # shows the bound is never hit; if a workload exceeds it we
                # flush anyway (counting it) rather than deadlock, since a
                # per-entry spill from a multi-region chain would violate
                # LIFO order — the very reason the paper flushes.
                if chain[0].flush_count >= self.max_flushes:
                    self.forced_flush_count += 1
                activity = activity.merge(self._flush_bottom(lane))
                top_region = self._chain[lane][-1]
            else:
                # Double overflow without reallocation (single region):
                # the SH bottom entry migrates to global memory (shared
                # load + global store), freeing the slot the new entry
                # will occupy at the circular top.
                bottom_region = chain[0]
                spilled_value, entry = bottom_region.spill_bottom()
                spill = self._spilled[lane]
                activity.ops.append(
                    MemoryOp(
                        space=MemSpace.SHARED,
                        kind=OpKind.LOAD,
                        address=self._shared_address(bottom_region, entry),
                    )
                )
                activity.ops.append(
                    MemoryOp(
                        space=MemSpace.GLOBAL,
                        kind=OpKind.STORE,
                        address=self._spill_address(lane, len(spill)),
                    )
                )
                spill.append(spilled_value)
                top_region = bottom_region
        entry = top_region.push_top(value)
        activity.ops.append(
            MemoryOp(
                space=MemSpace.SHARED,
                kind=OpKind.STORE,
                address=self._shared_address(top_region, entry),
            )
        )
        activity.extra_cycles += self._chain_walk_cycles(lane)
        return activity

    def _flush_bottom(self, lane: int) -> StackActivity:
        """Flush the bottom region to global memory and rotate it to top."""
        activity = no_activity()
        chain = self._chain[lane]
        bottom_region = chain[0]
        spill = self._spilled[lane]
        while not bottom_region.is_empty:
            value, entry = bottom_region.spill_bottom()
            activity.ops.append(
                MemoryOp(
                    space=MemSpace.SHARED,
                    kind=OpKind.LOAD,
                    address=self._shared_address(bottom_region, entry),
                )
            )
            activity.ops.append(
                MemoryOp(
                    space=MemSpace.GLOBAL,
                    kind=OpKind.STORE,
                    address=self._spill_address(lane, len(spill)),
                )
            )
            spill.append(value)
        bottom_region.flush_count += 1
        flushes = bottom_region.flush_count
        bottom_region.clear()
        bottom_region.flush_count = flushes
        chain.pop(0)
        chain.append(bottom_region)
        self.flush_count += 1
        return activity

    def pop(self, lane: int) -> "tuple[int, StackActivity]":
        self._check_lane(lane)
        if self._finished[lane]:
            raise StackError(
                f"lane {lane} has finished; reset() the warp before reuse"
            )
        rb = self._rb[lane]
        if not rb:
            raise StackError(f"pop from empty SMS stack (lane {lane})")
        value = rb.pop()
        region = self._top_nonempty_region(lane)
        if region is None and not self._spilled[lane]:
            return value, EMPTY_ACTIVITY
        activity = no_activity()
        if region is not None:
            # SH top -> RB bottom (shared load).
            reloaded, entry = region.pop_top()
            activity.ops.append(
                MemoryOp(
                    space=MemSpace.SHARED,
                    kind=OpKind.LOAD,
                    address=self._shared_address(region, entry),
                )
            )
            rb.insert(0, reloaded)
            activity.extra_cycles += self._chain_walk_cycles(lane)
            self._release_empty_borrowed(lane)
            # Global top -> SH bottom when entries live off chip and the
            # bottom region has a free slot (global load + shared store).
            spill = self._spilled[lane]
            bottom_region = self._chain[lane][0]
            if spill and not bottom_region.is_full:
                activity.ops.append(
                    MemoryOp(
                        space=MemSpace.GLOBAL,
                        kind=OpKind.LOAD,
                        address=self._spill_address(lane, len(spill) - 1),
                    )
                )
                refill_entry = bottom_region.refill_bottom(spill.pop())
                activity.ops.append(
                    MemoryOp(
                        space=MemSpace.SHARED,
                        kind=OpKind.STORE,
                        address=self._shared_address(bottom_region, refill_entry),
                    )
                )
        elif self._spilled[lane]:
            # SH drained entirely (possible after any-hit resets): reload
            # straight from global memory.
            spill = self._spilled[lane]
            activity.ops.append(
                MemoryOp(
                    space=MemSpace.GLOBAL,
                    kind=OpKind.LOAD,
                    address=self._spill_address(lane, len(spill) - 1),
                )
            )
            rb.insert(0, spill.pop())
        return value, activity

    def depth(self, lane: int) -> int:
        self._check_lane(lane)
        return (
            len(self._rb[lane]) + self._sh_count(lane) + len(self._spilled[lane])
        )

    def contents(self, lane: int) -> List[int]:
        self._check_lane(lane)
        sh_values: List[int] = []
        for region in self._chain[lane]:
            sh_values.extend(region.values)
        return list(self._spilled[lane]) + sh_values + list(self._rb[lane])

    def finish(self, lane: int) -> None:
        """Lane completed traversal: free its stacks for reallocation.

        Every region in the lane's chain (its own and any borrowed ones)
        is cleared and returned to the idle pool.  An already-finished
        lane's second ``finish`` is a no-op — in particular it must not
        touch the lane's own region, which may meanwhile be borrowed by
        another lane.  A finished lane cannot push or pop again until
        :meth:`reset`.
        """
        self._check_lane(lane)
        self._rb[lane].clear()
        self._spilled[lane].clear()
        self._finished[lane] = True
        for region in self._chain[lane]:
            region.clear()
            self._borrowed_by[region.owner] = None
            self._idle[region.owner] = self._finished[region.owner]
        self._chain[lane] = []

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert the model's internal consistency (test/diagnostic use).

        Verifies: every region appears in exactly one chain (or is idle),
        borrowed_by agrees with chain membership, idle implies unowned,
        region occupancy matches its circular pointers, and only the
        topmost chain regions may be partially filled.

        Raises:
            StackError: on any violation.
        """
        # Identity-matched (region, holder) pairs: SL104 bans id()-keyed
        # maps in model code, and `is`-search over <= warp_size regions
        # is plenty for a diagnostic path.
        seen_regions: list = []

        def holder_of(region):
            for held, holder in seen_regions:
                if held is region:
                    return holder
            return None

        for lane in range(self.warp_size):
            for region in self._chain[lane]:
                previous = holder_of(region)
                if previous is not None:
                    raise StackError(
                        f"region of lane {region.owner} appears in chains of "
                        f"lanes {previous} and {lane}"
                    )
                seen_regions.append((region, lane))
                if self._borrowed_by[region.owner] != lane:
                    raise StackError(
                        f"region of lane {region.owner} is in lane {lane}'s "
                        f"chain but borrowed_by says "
                        f"{self._borrowed_by[region.owner]}"
                    )
        for lane in range(self.warp_size):
            holder = self._borrowed_by[lane]
            in_chain = holder_of(self._own[lane]) is not None
            if holder is None:
                if in_chain:
                    raise StackError(
                        f"lane {lane}'s region marked free but is in a chain"
                    )
            elif not in_chain:
                raise StackError(
                    f"lane {lane}'s region marked held by {holder} "
                    f"but is in no chain"
                )
            if self._idle[lane] and self._borrowed_by[lane] is not None:
                raise StackError(f"lane {lane} idle yet borrowed")
        for lane in range(self.warp_size):
            chain = self._chain[lane]
            for region in chain:
                if region.count != len(region.values):
                    raise StackError(
                        f"region of lane {region.owner}: count "
                        f"{region.count} != values {len(region.values)}"
                    )
                if region.count > region.capacity:
                    raise StackError(
                        f"region of lane {region.owner} over capacity"
                    )

    def sh_occupancy(self, lane: int) -> int:
        """Entries currently in shared memory for ``lane``."""
        self._check_lane(lane)
        return self._sh_count(lane)

    def global_occupancy(self, lane: int) -> int:
        """Entries currently spilled to global memory for ``lane``."""
        self._check_lane(lane)
        return len(self._spilled[lane])

    def chain_length(self, lane: int) -> int:
        """Number of SH regions (own + borrowed) in ``lane``'s chain."""
        self._check_lane(lane)
        return len(self._chain[lane])

    def soa_state(self) -> dict:
        """Warp-wide occupancy as contiguous arrays (SoA view).

        One array per stack tier — RB, SH (own + borrowed) and global
        spill entries per lane — for whole-warp invariant checks and
        diagnostics without a per-lane Python call per query.  Used by
        the vector backend's plan sampler
        (:class:`repro.guard.vector.VectorPlanSampler`).
        """
        import numpy as np

        warp_size = self.warp_size
        sh = np.fromiter(
            (self._sh_count(lane) for lane in range(warp_size)),
            dtype=np.int64, count=warp_size,
        )
        spilled = np.fromiter(
            (len(self._spilled[lane]) for lane in range(warp_size)),
            dtype=np.int64, count=warp_size,
        )
        rb = np.fromiter(
            (len(self._rb[lane]) for lane in range(warp_size)),
            dtype=np.int64, count=warp_size,
        )
        return {"rb": rb, "sh": sh, "global": spilled}
