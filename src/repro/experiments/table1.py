"""Table I — baseline GPU parameters.

Rendered from the live configuration objects so the table can never
drift from what the simulator actually runs.  Two columns are shown:
the paper's absolute parameters (``table1_config``) and the library's
scene-scaled default (see ``GPUConfig`` for the scaling rationale).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.presets import table1_config
from repro.experiments.report import format_table
from repro.gpu.config import GPUConfig


@dataclass
class Table1Result:
    """The two configurations the table describes."""

    paper: GPUConfig
    default: GPUConfig


def run() -> Table1Result:
    """Materialize both configurations."""
    return Table1Result(paper=table1_config(), default=GPUConfig())


def render(result: Table1Result) -> str:
    """The parameter table."""
    paper, default = result.paper, result.default
    rows = [
        ("# SMs", paper.num_sms, default.num_sms),
        ("warp size", paper.warp_size, default.warp_size),
        ("warp scheduler", "GTO", "GTO"),
        ("# RT units per SM", paper.rt_units_per_sm, default.rt_units_per_sm),
        ("max warps per RT unit", paper.max_warps_per_rt_unit,
         default.max_warps_per_rt_unit),
        ("RB stack entries / thread", paper.rb_stack_entries,
         default.rb_stack_entries),
        ("L1D/shared SRAM", f"{paper.unified_cache_bytes // 1024}KB",
         f"{default.unified_cache_bytes // 1024}KB"),
        ("L1D latency / assoc", f"{paper.l1_latency} cyc, fully assoc",
         f"{default.l1_latency} cyc, fully assoc"),
        ("L2 size", f"{paper.l2_bytes // 1024}KB",
         f"{default.l2_bytes // 1024}KB (scene-scaled)"),
        ("L2 latency / assoc", f"{paper.l2_latency} cyc, {paper.l2_assoc}-way",
         f"{default.l2_latency} cyc, {default.l2_assoc}-way"),
        ("DRAM latency", paper.dram_latency, default.dram_latency),
        ("line size", paper.line_bytes, default.line_bytes),
    ]
    return format_table(
        ["parameter", "paper (Table I)", "library default"],
        rows,
        title="Table I: baseline GPU parameters",
    )
