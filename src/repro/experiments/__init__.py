"""Experiment drivers — one module per table/figure of the paper.

Every driver exposes a ``run(...)`` returning a structured result and a
``render(result)`` returning the text table/series the paper reports.
``repro.experiments.runner`` regenerates everything in one call.

Index (see DESIGN.md section 4):

==========  ====================================================
table1      Baseline GPU parameters
table2      Benchmark scene statistics
fig4        Max/avg/median stack depth per workload
fig5        Stack-depth distribution buckets
fig6        IPC vs RB stack size (a) and L1D size (b)
fig8        IPC for SH stack size configurations
fig10       Per-thread stack-depth series (PARTY)
fig13       SMS IPC improvements (+SH_8 / +SK / +RA vs FULL)
fig14       Bank-conflict delay cycles with/without skewed access
fig15       IPC (a) and off-chip accesses (b) vs RB size, +/- SMS
==========  ====================================================
"""

from repro.experiments.common import WorkloadCache, geomean
from repro.experiments.runner import run_experiment, EXPERIMENTS

__all__ = ["WorkloadCache", "geomean", "run_experiment", "EXPERIMENTS"]
