"""Fig. 4 — maximum, average and median stack depth per workload.

The paper measures depth at every push/pop across all rays and reports,
per scene, the maximum (~30 in the worst case), the average (4-5) and the
median.  This motivates the whole design: an 8-entry stack covers the
common case but the tail overflows constantly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.experiments.common import WorkloadCache
from repro.experiments.report import format_table
from repro.trace.depth import DepthStats, depth_statistics


@dataclass
class Fig4Result:
    """Per-scene depth statistics plus the all-scene aggregate."""

    per_scene: Dict[str, DepthStats]
    overall: DepthStats


def run(cache: Optional[WorkloadCache] = None) -> Fig4Result:
    """Compute the figure's data over the workload suite."""
    cache = cache or WorkloadCache()
    per_scene: Dict[str, DepthStats] = {}
    all_traces = []
    for name in cache.names:
        traced = cache.traced(name)
        per_scene[name] = depth_statistics(traced.traces)
        all_traces.extend(traced.traces)
    return Fig4Result(per_scene=per_scene, overall=depth_statistics(all_traces))


def render(result: Fig4Result) -> str:
    """The figure's bar values as a table."""
    rows = [
        (name, stats.max_depth, stats.avg_depth, stats.median_depth)
        for name, stats in result.per_scene.items()
    ]
    rows.append(
        (
            "ALL",
            result.overall.max_depth,
            result.overall.avg_depth,
            result.overall.median_depth,
        )
    )
    return format_table(
        ["scene", "max", "avg", "median"],
        rows,
        title="Fig. 4: traversal stack depth per workload "
        "(paper: avg/median 4-5, max ~30)",
    )
