"""Fig. 13 — the headline result: SMS IPC improvements per scene.

Paper (normalized to RB_8, averaged over scenes): +SH_8 = 1.151,
+SK = 1.194, +RA = 1.232, FULL = 1.253.  The key claims: each component
adds performance, complex scenes (ROBOT, PARK) and SHIP gain most,
simple scenes (REF, BATH) least, and the final design approaches the
impractical full stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.presets import baseline_config, full_stack_config, sms_config
from repro.experiments.common import WorkloadCache, mean_row, normalized_ipc
from repro.experiments.report import format_table

PAPER_MEANS = {
    "RB_8": 1.0,
    "RB_8+SH_8": 1.151,
    "RB_8+SH_8+SK": 1.194,
    "RB_8+SH_8+SK+RA": 1.232,
    "RB_FULL": 1.253,
}


@dataclass
class Fig13Result:
    """Per-scene and mean normalized IPC for the SMS ablation ladder."""

    per_scene: Dict[str, Dict[str, float]]
    means: Dict[str, float]


def run(cache: Optional[WorkloadCache] = None) -> Fig13Result:
    """Run the four-config ladder plus FULL over the suite."""
    cache = cache or WorkloadCache()
    configs = [
        baseline_config(),
        sms_config(skewed=False, realloc=False),
        sms_config(skewed=True, realloc=False),
        sms_config(skewed=True, realloc=True),
        full_stack_config(),
    ]
    results = cache.sweep(configs)
    per_scene = normalized_ipc(results, "RB_8")
    return Fig13Result(per_scene=per_scene, means=mean_row(per_scene))


def render(result: Fig13Result) -> str:
    """Per-scene bars plus the mean row, as in the paper's figure."""
    labels = [l for l in result.means if l != "RB_8"]
    rows = []
    for scene, values in result.per_scene.items():
        rows.append([scene] + [values[label] for label in labels])
    mean_cells = ["MEAN"] + [result.means[label] for label in labels]
    rows.append(mean_cells)
    paper_cells = ["PAPER"] + [PAPER_MEANS.get(label, float("nan")) for label in labels]
    rows.append(paper_cells)
    return format_table(
        ["scene"] + labels,
        rows,
        title="Fig. 13: IPC improvements of the SMS architecture "
        "(normalized to RB_8)",
    )
