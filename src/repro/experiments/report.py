"""Plain-text rendering of experiment results.

Every figure driver renders through these helpers so the benchmark
harness prints uniform, diff-able tables (the "rows/series the paper
reports").  :func:`format_value` is the single rounding rule —
``repro compare``'s strategy tables and the ablation reporter both
format cells through it, so a precision change lands everywhere at
once instead of drifting between hand-rolled f-strings.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

#: Digits a float renders with when no per-column precision is given.
DEFAULT_PRECISION = 3


def format_value(cell, precision: Optional[int] = None) -> str:
    """Render one table cell.

    Floats round to ``precision`` digits (default
    :data:`DEFAULT_PRECISION`); everything else renders via ``str``.
    ``precision`` is ignored for non-floats, so mixed columns (a float
    ratio with a ``"-"`` placeholder row) format consistently.
    """
    if isinstance(cell, float):
        digits = DEFAULT_PRECISION if precision is None else precision
        return f"{cell:.{digits}f}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
    precision: Optional[Sequence[Optional[int]]] = None,
) -> str:
    """Render an aligned ASCII table.

    ``precision`` optionally gives per-column float digits (``None``
    entries fall back to :data:`DEFAULT_PRECISION`); shorter sequences
    cover the leading columns.  Cells are rendered through
    :func:`format_value`, so callers pass raw numbers instead of
    pre-formatted strings.
    """
    per_column = list(precision) if precision is not None else []

    def _digits(index: int) -> Optional[int]:
        return per_column[index] if index < len(per_column) else None

    str_rows = [
        [format_value(cell, _digits(i)) for i, cell in enumerate(row)]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_bar_series(
    series: Dict[str, float],
    title: str = "",
    width: int = 40,
    reference: float = 1.0,
) -> str:
    """Render a labelled horizontal bar chart (for normalized-IPC figures)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    peak = max(list(series.values()) + [reference, 1e-12])
    for label, value in series.items():
        bar = "#" * max(1, int(round(value / peak * width)))
        lines.append(f"{label:>20s} {value:6.3f} {bar}")
    return "\n".join(lines)
