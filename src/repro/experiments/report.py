"""Plain-text rendering of experiment results.

Every figure driver renders through these helpers so the benchmark
harness prints uniform, diff-able tables (the "rows/series the paper
reports").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_bar_series(
    series: Dict[str, float],
    title: str = "",
    width: int = 40,
    reference: float = 1.0,
) -> str:
    """Render a labelled horizontal bar chart (for normalized-IPC figures)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    peak = max(list(series.values()) + [reference, 1e-12])
    for label, value in series.items():
        bar = "#" * max(1, int(round(value / peak * width)))
        lines.append(f"{label:>20s} {value:6.3f} {bar}")
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
