"""Table II — benchmark scene statistics.

Our stand-in scenes next to the paper's originals: triangle counts
(scaled ~1:100) and BVH memory footprints from the actual built BVHs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.bvh.stats import BVHStats
from repro.experiments.common import WorkloadCache
from repro.experiments.report import format_table
from repro.workloads.lumibench import scene_recipe


@dataclass
class Table2Result:
    """Per-scene BVH statistics."""

    stats: Dict[str, BVHStats]


def run(cache: Optional[WorkloadCache] = None) -> Table2Result:
    """Build every scene's BVH and collect statistics."""
    cache = cache or WorkloadCache()
    stats = {name: cache.traced(name).bvh_stats for name in cache.names}
    return Table2Result(stats=stats)


def render(result: Table2Result) -> str:
    """The scene table with paper columns alongside."""
    rows = []
    for name, stats in result.stats.items():
        recipe = scene_recipe(name)
        rows.append(
            (
                name,
                stats.triangle_count,
                recipe.paper_triangles,
                f"{stats.megabytes:.2f}",
                f"{recipe.paper_bvh_mb:.1f}",
                stats.max_depth,
                f"{stats.leaf_ratio:.2f}",
            )
        )
    return format_table(
        ["scene", "tris (ours)", "tris (paper)", "BVH MB (ours)",
         "BVH MB (paper)", "depth", "leaf ratio"],
        rows,
        title="Table II: benchmark scenes (stand-ins at ~1:100 scale)",
    )
