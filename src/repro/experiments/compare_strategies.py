"""Head-to-head traversal-strategy comparison across the workload suite.

The comparison the subsystem exists for: run any subset of registered
traversal strategies (:mod:`repro.traversal`) over the Table II scenes
from one base configuration and tabulate, per scene and aggregated, the
quantities the paper argues about — IPC, stack/spill traffic, L1D and
DRAM bytes, and memory-system energy.  Each strategy adapts the base
configuration its own way (stackless returns the SH carve-out to the
L1D; baseline strips the SMS knobs), so the table compares *architectures*
at equal SRAM budget, not just stack parameters.

Runs through :mod:`repro.runtime` when given a runtime-backed cache:
every (scene, strategy) cell is one content-addressed
:class:`~repro.runtime.job.SimulationJob` (strategy folded into the
key), so sweeps parallelize and repeat runs are store hits.  With a
plain :class:`~repro.experiments.common.WorkloadCache` (or ``None``)
the jobs run serially in-process.

CLI: ``repro compare --strategies sms,stackless,reorder``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.results import SimulationResult
from repro.experiments.common import WorkloadCache, geomean
from repro.experiments.report import format_table
from repro.gpu.config import GPUConfig
from repro.gpu.energy import estimate_energy
from repro.runtime.job import SimulationJob
from repro.traversal import resolve_strategy

#: The default head-to-head: the paper's architecture vs the two
#: alternatives the subsystem adds.
DEFAULT_STRATEGIES = ("sms", "stackless", "reorder")


@dataclass
class StrategyComparison:
    """Per-scene results of one strategy sweep."""

    strategies: List[str]
    base_label: str
    #: scene -> strategy name -> result.
    per_scene: Dict[str, Dict[str, SimulationResult]]


def _metrics(result: SimulationResult) -> Dict[str, float]:
    """The table row for one (scene, strategy) cell."""
    counters = result.counters
    line_bytes = result.config.line_bytes
    energy = estimate_energy(counters, num_sms=result.config.num_sms)
    return {
        "ipc": result.ipc,
        "cycles": float(result.cycles),
        "stack_global": float(counters.stack_global_ops),
        "stack_shared": float(counters.stack_shared_ops),
        "l1d_kb": counters.l1_accesses * line_bytes / 1024.0,
        "dram_kb": counters.offchip_accesses * line_bytes / 1024.0,
        "energy_uj": energy.total_nj / 1e3,
    }


def run(
    cache: Optional[WorkloadCache] = None,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    base_config: Optional[GPUConfig] = None,
) -> StrategyComparison:
    """Run every (scene, strategy) cell and collect the results.

    ``base_config`` defaults to the paper's full SMS configuration
    (``RB_8+SH_8+SK+RA``); each strategy adapts it via
    ``adapt_config``.  Strategy names are validated up front so typos
    fail before any tracing starts.
    """
    from repro.core.presets import sms_config

    cache = cache or WorkloadCache()
    names = [resolve_strategy(spec).name for spec in strategies]
    if not names:
        names = list(DEFAULT_STRATEGIES)
    config = base_config if base_config is not None else sms_config()
    backend = getattr(cache, "backend", "stepped")
    # Scene-major job order keeps each scene's phase-one traces warm in
    # the per-process memo across its strategy cells.
    jobs = [
        SimulationJob.from_params(
            scene,
            config,
            params=cache.params,
            max_bounces=cache.max_bounces,
            strategy=name,
            backend=backend,
        )
        for scene in cache.names
        for name in names
    ]
    store = getattr(cache, "store", None)
    policy = getattr(cache, "policy", None)
    if policy is not None:
        from repro.runtime.executor import run_jobs

        report = run_jobs(jobs, store=store, policy=policy)
        metrics = getattr(cache, "metrics", None)
        if metrics is not None:
            metrics.merge(report.metrics)
        results = report.results
    else:
        results = [job.run() for job in jobs]
    flat = iter(results)
    per_scene = {
        scene: {name: next(flat) for name in names} for scene in cache.names
    }
    return StrategyComparison(
        strategies=names,
        base_label=config.describe(),
        per_scene=per_scene,
    )


#: Float digits for the per-scene table columns (see ``render``).
_SCENE_PRECISION = (None, None, None, 4, 3, None, None, None, 1, 1, 2)
#: Float digits for the aggregate table columns.
_AGGREGATE_PRECISION = (None, 3, None, None, 1, 1, 2)


def render(result: StrategyComparison) -> str:
    """Per-scene tables plus the aggregate, paper-style.

    Cells are raw numbers; rounding and alignment are the shared
    :func:`~repro.experiments.report.format_table` helper's job (one
    rule for this table and the ablation reporter).
    """
    headers = [
        "strategy", "config", "backend", "IPC", "vs " + result.strategies[0],
        "cycles", "stack gbl", "stack shd", "L1D KB", "DRAM KB", "uJ",
    ]
    blocks: List[str] = []
    base_name = result.strategies[0]
    for scene, per_strategy in result.per_scene.items():
        base = _metrics(per_strategy[base_name])
        rows = []
        for name in result.strategies:
            cell = per_strategy[name]
            m = _metrics(cell)
            rows.append((
                name,
                cell.label,
                cell.backend,
                m["ipc"],
                m["ipc"] / base["ipc"] if base["ipc"] else "-",
                int(m["cycles"]),
                int(m["stack_global"]),
                int(m["stack_shared"]),
                m["l1d_kb"],
                m["dram_kb"],
                m["energy_uj"],
            ))
        blocks.append(format_table(
            headers, rows, title=f"[{scene}]", precision=_SCENE_PRECISION,
        ))

    # Aggregate: geomean speedup, total traffic and energy over the suite.
    agg_rows = []
    for name in result.strategies:
        speedups = []
        totals = {"stack_global": 0.0, "stack_shared": 0.0,
                  "l1d_kb": 0.0, "dram_kb": 0.0, "energy_uj": 0.0}
        for per_strategy in result.per_scene.values():
            base = _metrics(per_strategy[base_name])
            m = _metrics(per_strategy[name])
            if base["ipc"]:
                speedups.append(m["ipc"] / base["ipc"])
            for key in totals:
                totals[key] += m[key]
        agg_rows.append((
            name,
            geomean(speedups) if speedups else "-",
            int(totals["stack_global"]),
            int(totals["stack_shared"]),
            totals["l1d_kb"],
            totals["dram_kb"],
            totals["energy_uj"],
        ))
    blocks.append(format_table(
        ["strategy", f"IPC geomean vs {base_name}", "stack gbl",
         "stack shd", "L1D KB", "DRAM KB", "uJ"],
        agg_rows,
        title=f"[aggregate over {len(result.per_scene)} scenes, "
              f"base config {result.base_label}]",
        precision=_AGGREGATE_PRECISION,
    ))
    return "\n\n".join(blocks)
