"""Shared experiment plumbing.

The expensive phase (path tracing each scene) is configuration-independent,
so a :class:`WorkloadCache` traces each scene once and every experiment
reuses the traces across all timing configurations — the same split the
library API exposes (``trace_scene`` / ``time_traces``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.bvh.api import build_bvh
from repro.bvh.stats import BVHStats, compute_stats
from repro.bvh.wide import WideBVH
from repro.core.api import time_traces
from repro.core.results import SimulationResult
from repro.gpu.config import GPUConfig
from repro.scene.scene import Scene
from repro.trace.events import RayTrace
from repro.trace.path import generate_workload
from repro.workloads.lumibench import SCENE_NAMES, load_scene
from repro.workloads.params import DEFAULT_PARAMS, WorkloadParams


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the conventional average for normalized IPC)."""
    values = list(values)
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


@dataclass
class TracedScene:
    """One scene's cached functional-trace results."""

    scene: Scene
    bvh: WideBVH
    traces: List[RayTrace]
    bvh_stats: BVHStats


@dataclass
class WorkloadCache:
    """Traces scenes once; hands the traces to every timing config.

    ``scene_names=None`` means the full Table II suite.  ``params``
    controls resolution; experiments pass a scaled-down copy for quick
    smoke runs.

    The in-memory layer is LRU-bounded: ``max_traced`` caps how many
    traced scenes stay resident (``None`` keeps all — the historical
    behavior, right for one-shot sweeps).  Long-running processes (the
    sharded service, notebook sessions) set a bound so memory stays
    flat; evictions are counted in ``evictions`` and surfaced through
    :class:`~repro.runtime.metrics.RuntimeMetrics` and the service's
    ``/metrics`` endpoint.
    """

    params: WorkloadParams = field(default_factory=lambda: DEFAULT_PARAMS)
    scene_names: Optional[Sequence[str]] = None
    max_bounces: Optional[int] = None
    #: LRU capacity of the traced-scene cache (``None`` = unbounded).
    max_traced: Optional[int] = None
    #: Timing backend every simulation in this cache requests
    #: (``"stepped"`` or ``"vector"``); backends are bit-identical by
    #: contract, so this only changes wall-clock, never results.
    backend: str = "stepped"
    #: Traced scenes evicted by the LRU bound since construction.
    evictions: int = 0
    _cache: "OrderedDict[str, TracedScene]" = field(
        default_factory=OrderedDict
    )

    @property
    def names(self) -> List[str]:
        """Scene names this cache covers."""
        return list(self.scene_names) if self.scene_names else list(SCENE_NAMES)

    def traced(self, name: str) -> TracedScene:
        """Trace (or fetch cached traces for) one scene."""
        key = name.upper()
        if key in self._cache:
            self._cache.move_to_end(key)
        else:
            scene = load_scene(key)
            bvh = build_bvh(scene)
            width, height, spp = self.params.for_scene(key)
            bounces = (
                self.max_bounces
                if self.max_bounces is not None
                else self.params.max_bounces
            )
            workload = generate_workload(
                bvh,
                width=width,
                height=height,
                spp=spp,
                max_bounces=bounces,
                seed=self.params.seed,
            )
            self._cache[key] = TracedScene(
                scene=scene,
                bvh=bvh,
                traces=workload.all_traces,
                bvh_stats=compute_stats(bvh),
            )
            if self.max_traced is not None:
                while len(self._cache) > max(1, self.max_traced):
                    self._cache.popitem(last=False)
                    self.evictions += 1
                    self._on_evict()
        return self._cache[key]

    def _on_evict(self) -> None:
        """Hook for subclasses that meter evictions (runtime cache)."""

    def simulate(
        self, name: str, config: GPUConfig, verify_pops: bool = False
    ) -> SimulationResult:
        """Time one scene under one configuration."""
        traced = self.traced(name)
        return time_traces(
            traced.traces,
            config=config,
            scene_name=traced.scene.name,
            verify_pops=verify_pops,
            backend=self.backend,
        )

    def sweep(
        self, configs: Sequence[GPUConfig], verify_pops: bool = False
    ) -> Dict[str, Dict[str, SimulationResult]]:
        """Run every (scene, config) pair.

        Returns ``{scene_name: {config_label: result}}`` with config
        labels from :meth:`GPUConfig.describe` (made unique with an index
        suffix if two configs share a label).
        """
        results: Dict[str, Dict[str, SimulationResult]] = {}
        labels = _unique_labels(configs)
        for name in self.names:
            per_scene: Dict[str, SimulationResult] = {}
            for label, config in zip(labels, configs):
                per_scene[label] = self.simulate(name, config, verify_pops)
            results[name] = per_scene
        return results


def _unique_labels(configs: Sequence[GPUConfig]) -> List[str]:
    labels: List[str] = []
    for config in configs:
        label = config.describe()
        if label in labels:
            label = f"{label}#{len(labels)}"
        labels.append(label)
    return labels


def normalized_ipc(
    results: Dict[str, Dict[str, SimulationResult]], baseline_label: str
) -> Dict[str, Dict[str, float]]:
    """Per-scene IPC normalized to ``baseline_label`` (paper convention)."""
    normalized: Dict[str, Dict[str, float]] = {}
    for scene, per_scene in results.items():
        base = per_scene[baseline_label].ipc
        normalized[scene] = {
            label: (result.ipc / base if base else 0.0)
            for label, result in per_scene.items()
        }
    return normalized


def mean_row(per_scene: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    """Geometric-mean row across scenes for each config label."""
    if not per_scene:
        return {}
    labels = next(iter(per_scene.values())).keys()
    return {
        label: geomean(per_scene[scene][label] for scene in per_scene)
        for label in labels
    }
