"""Energy comparison of the stack architectures.

Not a paper figure, but the paper's recurring motivation: on-chip storage
and off-chip traffic are the power-hungry pieces ([14], [16], [22], [26]).
This study applies the per-event energy model to the same sweep as
Fig. 13 and reports total and stack-only energy, normalized to RB_8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.presets import baseline_config, full_stack_config, sms_config
from repro.experiments.common import WorkloadCache, geomean
from repro.experiments.report import format_table
from repro.gpu.energy import EnergyModel, estimate_energy


@dataclass
class EnergyStudyResult:
    """Normalized energy per configuration (geomean over scenes)."""

    total_energy: Dict[str, float]
    stack_energy_share: Dict[str, float]  # stack energy / total, per config


def run(cache: Optional[WorkloadCache] = None) -> EnergyStudyResult:
    """Run the Fig. 13 ladder and convert counters to energy."""
    cache = cache or WorkloadCache()
    configs = [
        baseline_config(),
        sms_config(skewed=False, realloc=False),
        sms_config(skewed=True, realloc=True),
        full_stack_config(),
    ]
    results = cache.sweep(configs)
    model = EnergyModel()

    labels = list(next(iter(results.values())).keys())
    ratios: Dict[str, list] = {label: [] for label in labels}
    shares: Dict[str, list] = {label: [] for label in labels}
    for scene, per_config in results.items():
        base_report = estimate_energy(per_config["RB_8"].counters, model)
        for label, result in per_config.items():
            report = estimate_energy(result.counters, model)
            ratios[label].append(report.total_nj / base_report.total_nj)
            shares[label].append(
                report.stack_nj / report.total_nj if report.total_nj else 0.0
            )
    return EnergyStudyResult(
        total_energy={label: geomean(values) for label, values in ratios.items()},
        stack_energy_share={
            label: sum(values) / len(values) for label, values in shares.items()
        },
    )


def render(result: EnergyStudyResult) -> str:
    """Energy table normalized to the baseline."""
    rows = [
        (
            label,
            result.total_energy[label],
            f"{result.stack_energy_share[label]:.1%}",
        )
        for label in result.total_energy
    ]
    return format_table(
        ["config", "energy (norm to RB_8)", "stack share of energy"],
        rows,
        title="Energy study: traversal memory-system energy per configuration",
    )
