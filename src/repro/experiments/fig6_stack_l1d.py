"""Fig. 6 — IPC under varying (a) RB stack sizes and (b) L1D sizes.

Paper values, normalized to RB_8 / 64 KB: stacks {4: 0.816, 16: 1.199,
32: 1.252}; L1D {16KB: 0.904, 32KB: 0.955, 128KB: 1.045, 256KB: 1.126}.
The asymmetry between the two sweeps — 8 KB more stack beats 192 KB more
L1D — is the paper's core motivation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.presets import baseline_config
from repro.experiments.common import (
    WorkloadCache,
    mean_row,
    normalized_ipc,
)
from repro.experiments.report import format_bar_series, format_table

KB = 1024

#: RB stack sizes of Fig. 6a (None = the paper's "FULL" bar).
STACK_SIZES = (4, 8, 16, 32)
#: L1D sizes of Fig. 6b; the library default 64 KB is scaled alongside
#: the suite's scenes, so the sweep keeps the paper's 4x around it.
L1D_FACTORS = (0.25, 0.5, 1.0, 2.0, 4.0)

PAPER_STACK = {"RB_4": 0.816, "RB_8": 1.0, "RB_16": 1.199, "RB_32": 1.252}
PAPER_L1D = {"x0.25": 0.904, "x0.5": 0.955, "x1.0": 1.0, "x2.0": 1.045, "x4.0": 1.126}


@dataclass
class Fig6Result:
    """Geomean normalized IPC for both sweeps."""

    stack_sweep: Dict[str, float]
    l1d_sweep: Dict[str, float]
    per_scene_stack: Dict[str, Dict[str, float]]
    per_scene_l1d: Dict[str, Dict[str, float]]


def run(cache: Optional[WorkloadCache] = None) -> Fig6Result:
    """Run both sweeps over the workload suite."""
    cache = cache or WorkloadCache()

    stack_configs = [baseline_config(rb_entries=n) for n in STACK_SIZES]
    stack_results = cache.sweep(stack_configs)
    per_scene_stack = normalized_ipc(stack_results, "RB_8")

    base = baseline_config()
    l1d_configs = []
    for factor in L1D_FACTORS:
        l1d_configs.append(
            base.with_(
                l1d_bytes_override=int(base.unified_cache_bytes * factor)
            )
        )
    l1d_results = cache.sweep(l1d_configs)
    # All l1d configs share the RB_8 label; they were disambiguated with
    # index suffixes, the x1.0 run being the baseline.
    labels = list(next(iter(l1d_results.values())).keys())
    baseline_label = labels[L1D_FACTORS.index(1.0)]
    per_scene_l1d_raw = normalized_ipc(l1d_results, baseline_label)
    per_scene_l1d = {
        scene: {
            f"x{factor}": values[label]
            for factor, label in zip(L1D_FACTORS, labels)
        }
        for scene, values in per_scene_l1d_raw.items()
    }
    return Fig6Result(
        stack_sweep=mean_row(per_scene_stack),
        l1d_sweep=mean_row(per_scene_l1d),
        per_scene_stack=per_scene_stack,
        per_scene_l1d=per_scene_l1d,
    )


def render(result: Fig6Result) -> str:
    """Both sweeps as tables with the paper's values alongside."""
    stack_rows = [
        (label, value, PAPER_STACK.get(label, float("nan")))
        for label, value in result.stack_sweep.items()
    ]
    l1d_rows = [
        (label, value, PAPER_L1D.get(label, float("nan")))
        for label, value in result.l1d_sweep.items()
    ]
    part_a = format_table(
        ["config", "IPC (norm)", "paper"],
        stack_rows,
        title="Fig. 6a: IPC vs RB stack size (normalized to RB_8)",
    )
    part_b = format_table(
        ["L1D scale", "IPC (norm)", "paper"],
        l1d_rows,
        title="Fig. 6b: IPC vs L1D size (normalized to the default)",
    )
    bars = format_bar_series(result.stack_sweep, title="Fig. 6a bars")
    return part_a + "\n\n" + part_b + "\n\n" + bars
