"""Fig. 15 — impact of the primary RB stack size, with and without SMS.

(a) IPC and (b) off-chip memory accesses for RB sizes 2/4/8/16, each
with and without the full SMS design, normalized to the RB_8 baseline.
Paper headline: RB_2 alone loses 28.3% IPC and adds 62.3% off-chip
accesses; adding SMS recovers 39.7 PP of IPC and 79.2 PP of traffic —
so even a 2-entry primary stack with SMS beats the 8-entry baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.presets import baseline_config, sms_config
from repro.experiments.common import (
    WorkloadCache,
    geomean,
    mean_row,
    normalized_ipc,
)
from repro.experiments.report import format_table

RB_SIZES = (2, 4, 8, 16)
PAPER_IPC = {
    "RB_2": 0.717,
    "RB_4": 0.816,
    "RB_8": 1.0,
    "RB_16": 1.199,
    "RB_2+SH_8+SK+RA": 1.114,
}
PAPER_OFFCHIP = {"RB_2": 1.623, "RB_2+SH_8+SK+RA": 0.831}


@dataclass
class Fig15Result:
    """IPC and off-chip access ratios for the RB sweep, +/- SMS."""

    ipc_means: Dict[str, float]
    offchip_means: Dict[str, float]
    per_scene_ipc: Dict[str, Dict[str, float]]
    per_scene_offchip: Dict[str, Dict[str, float]]


def run(cache: Optional[WorkloadCache] = None) -> Fig15Result:
    """Run the 8-config sweep (4 RB sizes x with/without SMS)."""
    cache = cache or WorkloadCache()
    configs = []
    for size in RB_SIZES:
        configs.append(baseline_config(rb_entries=size))
        configs.append(sms_config(rb_entries=size))
    results = cache.sweep(configs)
    per_scene_ipc = normalized_ipc(results, "RB_8")
    per_scene_offchip: Dict[str, Dict[str, float]] = {}
    for scene, per_config in results.items():
        base = per_config["RB_8"].offchip_accesses
        per_scene_offchip[scene] = {
            label: (res.offchip_accesses / base if base else 0.0)
            for label, res in per_config.items()
        }
    offchip_means = {
        label: geomean(per_scene_offchip[s][label] for s in per_scene_offchip)
        for label in next(iter(per_scene_offchip.values()))
    }
    return Fig15Result(
        ipc_means=mean_row(per_scene_ipc),
        offchip_means=offchip_means,
        per_scene_ipc=per_scene_ipc,
        per_scene_offchip=per_scene_offchip,
    )


def render(result: Fig15Result) -> str:
    """Both panels as tables with the paper's values alongside."""
    rows = []
    for label in result.ipc_means:
        rows.append(
            (
                label,
                result.ipc_means[label],
                PAPER_IPC.get(label, float("nan")),
                result.offchip_means[label],
                PAPER_OFFCHIP.get(label, float("nan")),
            )
        )
    return format_table(
        ["config", "IPC (norm)", "paper IPC", "off-chip (norm)", "paper off-chip"],
        rows,
        title="Fig. 15: primary stack size impact, with and without SMS "
        "(normalized to RB_8)",
    )
