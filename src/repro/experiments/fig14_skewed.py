"""Fig. 14 — effect of skewed bank access on bank-conflict delay cycles.

The paper compares the delay cycles caused by shared-memory bank
conflicts before (RB_8+SH_8) and after (+SK) skewing, reporting a 27.3%
average reduction.  We measure the same counter
(``Counters.bank_conflict_delay_cycles``) under both configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.presets import sms_config
from repro.experiments.common import WorkloadCache
from repro.experiments.report import format_table

PAPER_REDUCTION = 0.273


@dataclass
class Fig14Result:
    """Delay cycles per scene with and without skewing."""

    delay_no_skew: Dict[str, int]
    delay_skew: Dict[str, int]

    @property
    def reduction(self) -> float:
        """Aggregate fractional reduction in delay cycles.

        Computed over summed delays so scenes with near-zero conflict
        activity (where a 4 -> 0 change is a meaningless "100%") do not
        dominate the average.
        """
        before = sum(self.delay_no_skew.values())
        after = sum(self.delay_skew.values())
        if before == 0:
            return 0.0
        return 1.0 - after / before


def run(cache: Optional[WorkloadCache] = None) -> Fig14Result:
    """Measure bank-conflict delays with and without skewed access."""
    cache = cache or WorkloadCache()
    no_skew = sms_config(skewed=False, realloc=False)
    skew = sms_config(skewed=True, realloc=False)
    delay_no_skew: Dict[str, int] = {}
    delay_skew: Dict[str, int] = {}
    for name in cache.names:
        delay_no_skew[name] = cache.simulate(
            name, no_skew
        ).counters.bank_conflict_delay_cycles
        delay_skew[name] = cache.simulate(
            name, skew
        ).counters.bank_conflict_delay_cycles
    return Fig14Result(delay_no_skew=delay_no_skew, delay_skew=delay_skew)


def render(result: Fig14Result) -> str:
    """Per-scene delay cycles and the average reduction."""
    rows = []
    for scene, before in result.delay_no_skew.items():
        after = result.delay_skew[scene]
        change = (1.0 - after / before) if before else 0.0
        rows.append((scene, before, after, f"{change:+.1%}"))
    table = format_table(
        ["scene", "delay (SH_8)", "delay (+SK)", "reduction"],
        rows,
        title="Fig. 14: bank-conflict delay cycles, before/after skewed access",
    )
    summary = (
        f"\nmean reduction: {result.reduction:.1%} "
        f"(paper: {PAPER_REDUCTION:.1%})"
    )
    return table + summary
