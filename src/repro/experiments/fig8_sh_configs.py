"""Fig. 8 — IPC with different L1D / shared-memory splits of the 64 KB SRAM.

Paper values, normalized to RB_8: RB_8+SH_4 +11.0%, RB_8+SH_8 +17.4%,
RB_8+SH_16 +21.2%, RB_FULL +25.3%.  Every SH entry carved out of the
unified SRAM shrinks the L1D correspondingly (the config derives the
split automatically), which is the resource trade-off this figure
studies.  Note the figure evaluates the plain SH stack *without* the SK
and RA optimizations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.presets import baseline_config, full_stack_config, sms_config
from repro.experiments.common import WorkloadCache, mean_row, normalized_ipc
from repro.experiments.report import format_bar_series, format_table

SH_SIZES = (4, 8, 16)
PAPER = {
    "RB_8": 1.0,
    "RB_8+SH_4": 1.110,
    "RB_8+SH_8": 1.174,
    "RB_8+SH_16": 1.212,
    "RB_FULL": 1.253,
}


@dataclass
class Fig8Result:
    """Geomean normalized IPC per configuration."""

    means: Dict[str, float]
    per_scene: Dict[str, Dict[str, float]]
    shared_memory_bytes: Dict[str, int]


def run(cache: Optional[WorkloadCache] = None) -> Fig8Result:
    """Run the SH-size sweep over the workload suite."""
    cache = cache or WorkloadCache()
    configs = [baseline_config()]
    configs += [
        sms_config(sh_entries=n, skewed=False, realloc=False) for n in SH_SIZES
    ]
    configs.append(full_stack_config())
    results = cache.sweep(configs)
    per_scene = normalized_ipc(results, "RB_8")
    return Fig8Result(
        means=mean_row(per_scene),
        per_scene=per_scene,
        shared_memory_bytes={
            config.describe(): config.shared_memory_bytes for config in configs
        },
    )


def render(result: Fig8Result) -> str:
    """The figure's bars with the paper's values and the SRAM split."""
    rows = []
    for label, value in result.means.items():
        shared = result.shared_memory_bytes.get(label, 0)
        l1d = 64 * 1024 - shared
        rows.append(
            (
                label,
                value,
                PAPER.get(label, float("nan")),
                f"{l1d // 1024}KB L1D + {shared // 1024}KB SH",
            )
        )
    table = format_table(
        ["config", "IPC (norm)", "paper", "unified SRAM split"],
        rows,
        title="Fig. 8: IPC with different L1D/shared-memory configurations",
    )
    return table + "\n\n" + format_bar_series(result.means, title="Fig. 8 bars")
