"""Ablation studies beyond the paper's figures (DESIGN.md section 7).

The paper fixes several design constants by heuristic; these sweeps probe
the space around them:

* ``borrow_limit_sweep`` — the paper caps concurrent borrowed SH stacks at
  4 (section VI-B); how much do fewer/more buy?
* ``flush_limit_sweep`` — the paper caps consecutive flushes at 3.
* ``skew_scaling`` — section V-A claims skewed access "ensures consistent
  performance gains across different stack sizes"; measure the
  bank-conflict-delay reduction per SH size.
* ``spill_policy_study`` — how much of the baseline's loss is specifically
  *uncacheable* spill traffic (the paper's regime) versus spills that
  enjoy cache residency (the small-scene regime).
* ``stackless_comparison`` — related-work context (section VIII-A): the
  node-visit overhead of stackless restart-trail traversal, which SMS
  avoids by keeping a real stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.presets import baseline_config, sms_config
from repro.experiments.common import WorkloadCache, geomean, mean_row, normalized_ipc
from repro.experiments.report import format_table
from repro.trace.restart import restart_trail_trace
from repro.trace.path import _default_camera


@dataclass
class SweepResult:
    """Geomean normalized IPC per swept value."""

    means: Dict[str, float]
    per_scene: Dict[str, Dict[str, float]]


def borrow_limit_sweep(
    cache: Optional[WorkloadCache] = None, limits=(0, 1, 2, 4, 8)
) -> SweepResult:
    """IPC vs the intra-warp reallocation borrow limit."""
    cache = cache or WorkloadCache()
    configs = [baseline_config()]
    for limit in limits:
        configs.append(
            sms_config(realloc=limit > 0).with_(max_borrows=max(limit, 1))
        )
    results = cache.sweep(configs)
    per_scene_raw = normalized_ipc(results, "RB_8")
    labels = list(next(iter(results.values())).keys())[1:]
    renamed = {
        scene: {
            f"borrows={limit}": values[label]
            for limit, label in zip(limits, labels)
        }
        for scene, values in per_scene_raw.items()
    }
    return SweepResult(means=mean_row(renamed), per_scene=renamed)


def flush_limit_sweep(
    cache: Optional[WorkloadCache] = None, limits=(0, 1, 3, 6)
) -> SweepResult:
    """IPC vs the consecutive-flush limit (paper fixes 3)."""
    cache = cache or WorkloadCache()
    configs = [baseline_config()]
    for limit in limits:
        configs.append(sms_config().with_(max_flushes=max(limit, 0)))
    results = cache.sweep(configs)
    per_scene_raw = normalized_ipc(results, "RB_8")
    labels = list(next(iter(results.values())).keys())[1:]
    renamed = {
        scene: {
            f"flushes={limit}": values[label]
            for limit, label in zip(limits, labels)
        }
        for scene, values in per_scene_raw.items()
    }
    return SweepResult(means=mean_row(renamed), per_scene=renamed)


def skew_scaling(
    cache: Optional[WorkloadCache] = None, sizes=(4, 8, 16)
) -> Dict[str, float]:
    """Bank-conflict delay reduction from skewing, per SH stack size.

    Returns ``{"SH_N": fractional reduction}`` — the paper's scalability
    claim predicts consistent reductions across sizes.
    """
    cache = cache or WorkloadCache()
    reductions: Dict[str, float] = {}
    for size in sizes:
        plain = sms_config(sh_entries=size, skewed=False, realloc=False)
        skewed = sms_config(sh_entries=size, skewed=True, realloc=False)
        ratios = []
        for name in cache.names:
            before = cache.simulate(name, plain).counters.bank_conflict_delay_cycles
            after = cache.simulate(name, skewed).counters.bank_conflict_delay_cycles
            if before > 0:
                ratios.append(after / before)
        reductions[f"SH_{size}"] = 1.0 - geomean(ratios) if ratios else 0.0
    return reductions


def spill_policy_study(cache: Optional[WorkloadCache] = None) -> Dict[str, float]:
    """Baseline IPC under each spill cacheability (normalized to uncached).

    Quantifies how much of the stack-traffic penalty depends on spills
    actually reaching DRAM — the scale-regime question DESIGN.md section 2
    documents.
    """
    cache = cache or WorkloadCache()
    configs = [
        baseline_config(spill_cache_policy=policy)
        for policy in ("uncached", "l2", "l1")
    ]
    results = cache.sweep(configs)
    labels = list(next(iter(results.values())).keys())
    per_scene = normalized_ipc(results, labels[0])
    means = mean_row(per_scene)
    return {
        policy: means[label]
        for policy, label in zip(("uncached", "l2", "l1"), labels)
    }


@dataclass
class StacklessResult:
    """Visit overhead of restart-trail traversal per scene."""

    overhead: Dict[str, float]      # restart visits / DFS visits
    restarts_per_ray: Dict[str, float]


def stackless_comparison(
    cache: Optional[WorkloadCache] = None, rays_per_scene: int = 128
) -> StacklessResult:
    """Node-visit overhead of stackless restart-trail traversal."""
    cache = cache or WorkloadCache()
    overhead: Dict[str, float] = {}
    restarts: Dict[str, float] = {}
    from repro.trace.tracer import Tracer

    for name in cache.names:
        traced = cache.traced(name)
        bvh = traced.bvh
        camera = _default_camera(bvh, 16, 16)
        all_rays = [ray for _, ray in camera.rays()]
        stride = max(1, len(all_rays) // rays_per_scene)
        sampled = all_rays[::stride][:rays_per_scene]
        dfs_visits = 0
        restart_visits = 0
        restart_count = 0
        rays = len(sampled)
        tracer = Tracer(bvh)
        for ray in sampled:
            dfs_visits += tracer.trace(ray).trace.step_count
            result = restart_trail_trace(bvh, ray)
            restart_visits += result.node_visits
            restart_count += result.restarts
        overhead[name] = restart_visits / dfs_visits if dfs_visits else 0.0
        restarts[name] = restart_count / rays if rays else 0.0
    return StacklessResult(overhead=overhead, restarts_per_ray=restarts)


@dataclass
class ShortStackStudyResult:
    """Restart-trail hybrid: overhead vs on-chip stack capacity."""

    visit_overhead: Dict[int, float]   # capacity -> visits vs DFS
    restarts_per_ray: Dict[int, float]


def short_stack_study(
    scene_names=("CRNVL", "PARTY", "SHIP"),
    capacities=(0, 2, 4, 8, 16),
    rays_per_scene: int = 96,
    resolution: int = 16,
) -> ShortStackStudyResult:
    """Laine's short-stack+restart scheme across stack capacities.

    Quantifies the paper's VIII-A remark that backing a short stack with
    more on-chip entries (exactly what the SMS SH stack provides) shrinks
    restart overhead: each added entry removes restart replays until, at
    the workload's pending-sibling depth, restarts vanish entirely.
    """
    from repro.bvh.api import build_bvh
    from repro.trace.restart import short_stack_restart_trace
    from repro.trace.tracer import Tracer
    from repro.workloads.lumibench import load_scene

    visits: Dict[int, int] = {c: 0 for c in capacities}
    restart_totals: Dict[int, int] = {c: 0 for c in capacities}
    dfs_visits = 0
    total_rays = 0
    for name in scene_names:
        scene = load_scene(name)
        bvh = build_bvh(scene)
        tracer = Tracer(bvh)
        camera = _default_camera(bvh, resolution, resolution)
        all_rays = [ray for _, ray in camera.rays()]
        stride = max(1, len(all_rays) // rays_per_scene)
        sampled = all_rays[::stride][:rays_per_scene]
        total_rays += len(sampled)
        for ray in sampled:
            dfs_visits += tracer.trace(ray).trace.step_count
            for capacity in capacities:
                result = short_stack_restart_trace(
                    bvh, ray, stack_entries=capacity
                )
                visits[capacity] += result.node_visits
                restart_totals[capacity] += result.restarts
    return ShortStackStudyResult(
        visit_overhead={
            c: visits[c] / dfs_visits if dfs_visits else 0.0 for c in capacities
        },
        restarts_per_ray={
            c: restart_totals[c] / total_rays if total_rays else 0.0
            for c in capacities
        },
    )


def inter_warp_study(
    cache: Optional[WorkloadCache] = None,
) -> SweepResult:
    """Inter-warp vs intra-warp reallocation (paper V-B's rejected design).

    The paper limits borrowing to the same warp, predicting inter-warp
    tracking complexity for little benefit.  This study measures that
    benefit at the paper's design point (RB_8+SH_8) and at an
    under-provisioned one (RB_2+SH_2), where cross-warp borrowing has
    more to offer.
    """
    cache = cache or WorkloadCache()
    configs = [
        baseline_config(),
        sms_config(),
        sms_config(inter_warp=True),
        sms_config(rb_entries=2, sh_entries=2),
        sms_config(rb_entries=2, sh_entries=2, inter_warp=True),
    ]
    results = cache.sweep(configs)
    per_scene = normalized_ipc(results, "RB_8")
    return SweepResult(means=mean_row(per_scene), per_scene=per_scene)


@dataclass
class SizeConsistencyResult:
    """SMS speedup at multiple workload resolutions (paper VII-A claim)."""

    speedups: Dict[str, Dict[str, float]]  # resolution label -> scene -> ratio

    def spread(self) -> float:
        """Largest cross-resolution speedup difference over all scenes."""
        worst = 0.0
        scenes = next(iter(self.speedups.values())).keys()
        for scene in scenes:
            values = [self.speedups[label][scene] for label in self.speedups]
            worst = max(worst, max(values) - min(values))
        return worst


def size_consistency_study(
    scene_names=("CRNVL", "PARTY", "SHIP", "SPNZA"),
    resolutions=(16, 24, 32),
) -> SizeConsistencyResult:
    """Validate the paper's VII-A claim that trends hold across sizes.

    The paper evaluates complex scenes at reduced resolution, arguing
    "performance trends have been observed to remain consistent across
    varying workload sizes."  This study measures the SMS-vs-baseline
    speedup per scene at several resolutions and reports the spread.
    """
    from repro.bvh.api import build_bvh
    from repro.core.api import time_traces
    from repro.trace.path import generate_workload
    from repro.workloads.lumibench import load_scene

    base_config = baseline_config()
    sms = sms_config()
    speedups: Dict[str, Dict[str, float]] = {}
    for resolution in resolutions:
        label = f"{resolution}x{resolution}"
        speedups[label] = {}
        for name in scene_names:
            scene = load_scene(name)
            bvh = build_bvh(scene)
            workload = generate_workload(
                bvh, width=resolution, height=resolution, max_bounces=3
            )
            traces = workload.all_traces
            base = time_traces(traces, base_config, scene_name=name)
            fast = time_traces(traces, sms, scene_name=name)
            speedups[label][name] = fast.ipc / base.ipc if base.ipc else 0.0
    return SizeConsistencyResult(speedups=speedups)


def warp_occupancy_sweep(
    cache: Optional[WorkloadCache] = None, slots=(1, 2, 4, 8)
) -> SweepResult:
    """IPC vs resident warps per RT unit (Table I fixes 4).

    Latency hiding is what turns spill traffic from a latency problem
    into a bandwidth problem; this sweep shows how much of the baseline's
    performance depends on multi-warp overlap.
    """
    cache = cache or WorkloadCache()
    configs = [baseline_config(max_warps_per_rt_unit=n) for n in slots]
    results = cache.sweep(configs)
    labels = list(next(iter(results.values())).keys())
    baseline_label = labels[slots.index(4)] if 4 in slots else labels[0]
    per_scene_raw = normalized_ipc(results, baseline_label)
    renamed = {
        scene: {
            f"warps={n}": values[label] for n, label in zip(slots, labels)
        }
        for scene, values in per_scene_raw.items()
    }
    return SweepResult(means=mean_row(renamed), per_scene=renamed)


@dataclass
class WidthStudyResult:
    """Per BVH branching factor: depth statistics and SMS benefit."""

    avg_depth: Dict[int, float]
    max_depth: Dict[int, int]
    sms_gain: Dict[int, float]  # SMS IPC / baseline IPC at that width


def bvh_width_study(
    scene_names=("CRNVL", "PARTY", "SHIP"),
    widths=(2, 4, 6, 8),
    resolution: int = 16,
) -> WidthStudyResult:
    """How the wide-BVH branching factor drives stack pressure.

    The paper's Fig. 3 walkthrough uses BVH6 because wide nodes push up to
    ``k - 1`` siblings per visit; this sweep quantifies that: higher
    branching factors deepen the stack-demand distribution and therefore
    raise the benefit of the SMS secondary stack.
    """
    from repro.bvh.api import build_bvh
    from repro.core.api import time_traces
    from repro.trace.depth import depth_statistics
    from repro.trace.path import generate_workload
    from repro.workloads.lumibench import load_scene

    avg_depth: Dict[int, list] = {w: [] for w in widths}
    max_depth: Dict[int, int] = {w: 0 for w in widths}
    gains: Dict[int, list] = {w: [] for w in widths}
    for name in scene_names:
        scene = load_scene(name)
        for width in widths:
            bvh = build_bvh(scene, width=width)
            workload = generate_workload(
                bvh, width=resolution, height=resolution, max_bounces=2
            )
            stats = depth_statistics(workload.all_traces)
            avg_depth[width].append(stats.avg_depth)
            max_depth[width] = max(max_depth[width], stats.max_depth)
            base = time_traces(
                workload.all_traces, baseline_config(), scene_name=name
            )
            sms = time_traces(
                workload.all_traces, sms_config(), scene_name=name
            )
            gains[width].append(sms.ipc / base.ipc if base.ipc else 0.0)
    return WidthStudyResult(
        avg_depth={w: sum(v) / len(v) for w, v in avg_depth.items()},
        max_depth=max_depth,
        sms_gain={w: geomean(v) for w, v in gains.items()},
    )


@dataclass
class WarpFormationResult:
    """Linear vs tiled warp formation, per scene."""

    fetch_lines_linear: Dict[str, int]
    fetch_lines_tiled: Dict[str, int]
    ipc_gain: Dict[str, float]  # tiled IPC / linear IPC


def warp_formation_study(
    scene_names=("CRNVL", "LANDS", "SPNZA"), resolution: int = 24
) -> WarpFormationResult:
    """Does tile-major warp formation improve fetch coalescing?

    Real GPUs pack primary rays in screen tiles; this study reorders the
    primary wave into 8x4 tiles (one warp per tile) and measures the
    change in unique node-fetch lines and IPC under the default SMS
    configuration.
    """
    from repro.bvh.api import build_bvh
    from repro.core.api import time_traces
    from repro.trace.ordering import reorder_wave_tiled
    from repro.trace.path import generate_workload
    from repro.workloads.lumibench import load_scene

    fetch_linear: Dict[str, int] = {}
    fetch_tiled: Dict[str, int] = {}
    gains: Dict[str, float] = {}
    config = sms_config()
    for name in scene_names:
        scene = load_scene(name)
        bvh = build_bvh(scene)
        workload = generate_workload(
            bvh, width=resolution, height=resolution, max_bounces=2
        )
        linear_traces = workload.all_traces
        tiled_primary = reorder_wave_tiled(
            workload.waves[0], resolution, resolution
        )
        tiled_traces = tiled_primary + [
            t for wave in workload.waves[1:] for t in wave
        ]
        linear = time_traces(linear_traces, config, scene_name=name)
        tiled = time_traces(tiled_traces, config, scene_name=name)
        fetch_linear[name] = linear.counters.node_fetch_lines
        fetch_tiled[name] = tiled.counters.node_fetch_lines
        gains[name] = tiled.ipc / linear.ipc if linear.ipc else 0.0
    return WarpFormationResult(
        fetch_lines_linear=fetch_linear,
        fetch_lines_tiled=fetch_tiled,
        ipc_gain=gains,
    )


@dataclass
class PacketStudyResult:
    """Shared-stack packet traversal vs per-ray traversal, per wave kind."""

    stack_push_ratio: Dict[str, float]  # packet pushes / sum of solo pushes
    visit_ratio: Dict[str, float]       # packet visits / sum of solo visits


def packet_study(
    scene_name: str = "CRNVL", resolution: int = 16, group_size: int = 8
) -> PacketStudyResult:
    """Quantify the paper's VIII-B trade-off on coherent vs bounce rays.

    Groups consecutive rays of the primary wave (coherent) and of the
    first bounce wave (incoherent) into packets sharing one stack, and
    compares stack pushes and node visits against per-ray traversal.
    Expected shape: packets slash stack entries on coherent rays but lose
    their advantage — and inflate visits per ray — on incoherent ones.
    """
    from repro.bvh.api import build_bvh
    from repro.geometry.ray import Ray
    from repro.geometry.vec import normalize
    from repro.scene.camera import PinholeCamera
    from repro.trace.packet import packet_trace
    from repro.trace.path import _default_camera, generate_workload
    from repro.trace.rng import DeterministicRng
    from repro.trace.tracer import Tracer
    from repro.workloads.lumibench import load_scene
    import numpy as np

    scene = load_scene(scene_name)
    bvh = build_bvh(scene)
    tracer = Tracer(bvh)
    camera = _default_camera(bvh, resolution, resolution)
    rng = DeterministicRng(7)

    primary = [ray for _, ray in camera.rays()]
    # Build an incoherent set: bounce rays from primary hit points.
    bounce = []
    for pixel, ray in enumerate(primary):
        solo = tracer.trace(ray)
        if not solo.hit:
            continue
        tri = scene.triangle(solo.hit_prim)
        normal = tri.normal()
        if float(np.dot(normal, ray.direction)) > 0.0:
            normal = -normal
        direction = rng.cosine_hemisphere(normal, pixel)
        bounce.append(
            Ray(origin=ray.at(solo.hit_t) + normal * 1e-4, direction=direction)
        )

    push_ratio: Dict[str, float] = {}
    visit_ratio: Dict[str, float] = {}
    for label, rays in (("primary", primary), ("bounce", bounce)):
        packet_pushes = packet_visits = 0
        solo_pushes = solo_visits = 0
        for start in range(0, len(rays) - group_size + 1, group_size):
            group = rays[start : start + group_size]
            packet = packet_trace(bvh, group)
            packet_pushes += packet.stack_pushes
            packet_visits += packet.node_visits
            for ray in group:
                trace = tracer.trace(ray).trace
                solo_pushes += sum(len(s.pushes) for s in trace.steps)
                solo_visits += trace.step_count
        push_ratio[label] = packet_pushes / solo_pushes if solo_pushes else 0.0
        visit_ratio[label] = packet_visits / solo_visits if solo_visits else 0.0
    return PacketStudyResult(stack_push_ratio=push_ratio, visit_ratio=visit_ratio)


def render_sweep(result: SweepResult, title: str) -> str:
    """Render a sweep's mean row."""
    rows = [(label, value) for label, value in result.means.items()]
    return format_table(["config", "IPC (norm to RB_8)"], rows, title=title)
