"""Fig. 5 — average stack-depth distribution across all workloads.

The paper's summary: depths 1-8 cover ~81% of traversal steps, 9-16
another 17.0%, and only 1.9% exceed 16 — the quantitative basis for the
8-entry SH stack choice (8 RB + 8 SH covers 98% of steps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.common import WorkloadCache
from repro.experiments.report import format_table
from repro.trace.depth import bucket_fractions, depth_histogram

#: The paper's summary buckets.
BUCKETS: Tuple[Tuple[int, int], ...] = ((1, 8), (9, 16), (17, 10**9))
PAPER_FRACTIONS = (0.811, 0.170, 0.019)


@dataclass
class Fig5Result:
    """Depth histogram and bucket fractions."""

    histogram: Dict[int, int]
    fractions: List[float]
    per_scene_fractions: Dict[str, List[float]]


def run(cache: Optional[WorkloadCache] = None) -> Fig5Result:
    """Aggregate depth histogram over the workload suite."""
    cache = cache or WorkloadCache()
    combined: Dict[int, int] = {}
    per_scene: Dict[str, List[float]] = {}
    for name in cache.names:
        traced = cache.traced(name)
        histogram = depth_histogram(traced.traces)
        per_scene[name] = bucket_fractions(histogram, BUCKETS)
        for depth, count in histogram.items():
            combined[depth] = combined.get(depth, 0) + count
    return Fig5Result(
        histogram=combined,
        fractions=bucket_fractions(combined, BUCKETS),
        per_scene_fractions=per_scene,
    )


def render(result: Fig5Result) -> str:
    """Bucket fractions next to the paper's values, plus the histogram."""
    rows = []
    labels = ["1-8", "9-16", ">16"]
    for label, measured, paper in zip(labels, result.fractions, PAPER_FRACTIONS):
        rows.append((label, f"{measured:.1%}", f"{paper:.1%}"))
    table = format_table(
        ["depth bucket", "measured", "paper"],
        rows,
        title="Fig. 5: stack depth distribution across all workloads",
    )
    total = sum(c for d, c in result.histogram.items() if d >= 1)
    hist_rows = [
        (depth, count, f"{count / total:.2%}")
        for depth, count in sorted(result.histogram.items())
        if depth >= 1
    ]
    histogram = format_table(
        ["depth", "samples", "fraction"], hist_rows, title="full histogram"
    )
    return table + "\n\n" + histogram
