"""Fig. 10 — per-thread stack depth over time for PARTY warps.

The paper's heatmap shows, for two warps of the PARTY scene, each
thread's stack depth at every stack access: threads finish at different
times and need very different peak depths — the two observations that
motivate dynamic intra-warp reallocation.  We regenerate the underlying
matrix (threads x accesses, value = depth) and summarize the imbalance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.experiments.common import WorkloadCache
from repro.experiments.report import format_table
from repro.trace.depth import per_thread_depth_series


@dataclass
class Fig10Result:
    """Depth series for the sampled warps plus imbalance metrics."""

    scene: str
    warp_series: List[List[List[int]]]  # warp -> lane -> depth profile
    finish_spread: float  # ratio of shortest to longest lane profile
    peak_spread: float    # ratio of smallest to largest peak depth


def run(
    cache: Optional[WorkloadCache] = None,
    scene: str = "PARTY",
    warps: int = 2,
    warp_size: int = 32,
) -> Fig10Result:
    """Extract per-lane depth series for the ``warps`` busiest warps.

    The paper plots two representative warps; picking the busiest ones
    skips warps whose rays all miss the scene (e.g. image corners).
    """
    cache = cache or WorkloadCache(scene_names=[scene])
    traced = cache.traced(scene)
    series = per_thread_depth_series(traced.traces)
    groups = [
        series[start : start + warp_size]
        for start in range(0, len(series), warp_size)
    ]
    groups.sort(key=lambda lanes: -sum(len(lane) for lane in lanes))
    warp_series: List[List[List[int]]] = [
        lanes for lanes in groups[:warps] if lanes
    ]
    lengths = [len(lane) for warp in warp_series for lane in warp if lane]
    peaks = [max(lane) for warp in warp_series for lane in warp if lane]
    finish_spread = min(lengths) / max(lengths) if lengths else 0.0
    peak_spread = min(peaks) / max(peaks) if peaks else 0.0
    return Fig10Result(
        scene=scene,
        warp_series=warp_series,
        finish_spread=finish_spread,
        peak_spread=peak_spread,
    )


def render(result: Fig10Result) -> str:
    """An ASCII rendering of the heatmap plus imbalance summary."""
    lines = [
        f"Fig. 10: per-thread stack depth across accesses ({result.scene})",
        f"finish-time spread (shortest/longest lane): {result.finish_spread:.2f}",
        f"peak-depth spread (smallest/largest peak):  {result.peak_spread:.2f}",
        "",
    ]
    glyphs = " .:-=+*#%@"
    for w, warp in enumerate(result.warp_series):
        lines.append(f"warp {w} (rows = threads, columns = stack accesses):")
        width = max((len(lane) for lane in warp), default=0)
        step = max(1, width // 64)
        for lane_index, lane in enumerate(warp):
            cells = []
            for x in range(0, width, step):
                if x < len(lane):
                    depth = lane[x]
                    cells.append(glyphs[min(len(glyphs) - 1, depth * (len(glyphs) - 1) // 30)])
                else:
                    cells.append(" ")
            lines.append(f"  t{lane_index:02d} |{''.join(cells)}|")
        lines.append("")
    rows = []
    for w, warp in enumerate(result.warp_series):
        peaks = [max(lane) if lane else 0 for lane in warp]
        lengths = [len(lane) for lane in warp]
        rows.append(
            (
                f"warp {w}",
                int(np.max(peaks)),
                float(np.mean(peaks)),
                int(np.max(lengths)),
                int(np.min(lengths)),
            )
        )
    lines.append(
        format_table(
            ["warp", "max peak", "mean peak", "longest", "shortest"],
            rows,
            title="imbalance summary",
        )
    )
    return "\n".join(lines)
