"""One-call regeneration of every table and figure.

``run_experiment("fig13")`` runs one driver; ``run_all()`` regenerates
the whole evaluation section, sharing a single workload cache so each
scene is traced exactly once.

Both default to a :class:`~repro.runtime.cache.CachedWorkloadCache`, so
every driver's sweep runs on the runtime's process pool and is served
from the persistent result store on repeat runs; pass ``jobs=1`` or
``use_cache=False`` (or a plain :class:`WorkloadCache`) to opt out.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import ExperimentError
from repro.experiments import (
    fig4_stack_depths,
    fig5_depth_distribution,
    fig6_stack_l1d,
    fig8_sh_configs,
    fig10_thread_depths,
    fig13_sms_ipc,
    fig14_skewed,
    fig15_rb_sizes,
    table1,
    table2,
)
from repro.experiments.common import WorkloadCache

#: Experiment id -> driver module.  Every driver has run()/render().
EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "fig4": fig4_stack_depths,
    "fig5": fig5_depth_distribution,
    "fig6": fig6_stack_l1d,
    "fig8": fig8_sh_configs,
    "fig10": fig10_thread_depths,
    "fig13": fig13_sms_ipc,
    "fig14": fig14_skewed,
    "fig15": fig15_rb_sizes,
}

#: Extra (non-paper) studies runnable through the same interface.
from repro.experiments import ablate, compare_strategies, energy_study

EXTRA_EXPERIMENTS = {
    "energy": energy_study,
    "compare": compare_strategies,
    "ablate": ablate,
}

#: Drivers that take no workload cache.
_CACHELESS = ("table1",)


def _default_cache() -> WorkloadCache:
    """The runtime-backed cache experiments get when none is supplied."""
    from repro.runtime.cache import runtime_cache

    return runtime_cache()


def run_experiment(name: str, cache: Optional[WorkloadCache] = None) -> str:
    """Run one experiment and return its rendered report."""
    key = name.lower()
    if key in EXTRA_EXPERIMENTS:
        driver = EXTRA_EXPERIMENTS[key]
        return driver.render(driver.run(cache or _default_cache()))
    if key not in EXPERIMENTS:
        available = ", ".join(list(EXPERIMENTS) + list(EXTRA_EXPERIMENTS))
        raise ExperimentError(
            f"unknown experiment {name!r}; available: {available}"
        )
    driver = EXPERIMENTS[key]
    if key in _CACHELESS:
        return driver.render(driver.run())
    return driver.render(driver.run(cache or _default_cache()))


def run_all(
    cache: Optional[WorkloadCache] = None,
    jobs: Optional[int] = None,
    use_cache: bool = True,
    cache_dir=None,
    progress: bool = False,
) -> Dict[str, str]:
    """Regenerate every table and figure; returns id -> rendered report.

    ``jobs``/``use_cache``/``cache_dir``/``progress`` configure the
    runtime cache built when no ``cache`` is supplied (worker count,
    persistent store, store location, live progress line).
    """
    if cache is None:
        from repro.runtime.cache import runtime_cache

        cache = runtime_cache(
            jobs=jobs, use_cache=use_cache, cache_dir=cache_dir,
            progress=progress,
        )
    reports: Dict[str, str] = {}
    for name in EXPERIMENTS:
        reports[name] = run_experiment(name, cache)
    return reports
