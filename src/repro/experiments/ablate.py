"""Mechanism-ablation study as an experiment driver.

Runs the declared ``mechanisms`` knob space (the 2^3 corner cube around
the paper's proposed design: SH tier x skewing x intra-warp
reallocation on an RB_8 base) through the ablation engine and renders
the sweep, the ranked importance attribution of the +21.9% IPC claim,
and the IPC-vs-SRAM Pareto frontier.

``repro experiment ablate`` runs it alongside the paper figures; the
full engine (arbitrary spaces, JSON reports, run directories, service
execution) lives behind ``repro ablate``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.experiments.common import WorkloadCache

# repro.ablation imports repro.experiments.common (geomean, table
# style), so the ablation modules load lazily inside run()/render() to
# keep this driver importable from the experiments package __init__.


def run(cache: Optional[WorkloadCache] = None):
    """Execute the ``mechanisms`` space over the cache's scene suite."""
    from repro.ablation.engine import execute_matrix
    from repro.ablation.matrix import generate_matrix
    from repro.ablation.spaces import named_space

    cache = cache or WorkloadCache()
    space = replace(named_space("mechanisms"), scenes=tuple(cache.names))
    return execute_matrix(
        generate_matrix(space), params=cache.params, cache=cache
    )


def render(result) -> str:
    """Sweep + importance + Pareto tables (shared table style)."""
    from repro.ablation.report import render_text

    return render_text(result)
