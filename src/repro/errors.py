"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything this package raises with a single ``except`` clause.

Simulation-side errors (:class:`SimulationError`, :class:`StackError` and
their subclasses) carry structured diagnostic fields — the cycle, SM, warp,
lane and component where the inconsistency was observed — so a failure deep
inside a long campaign pinpoints itself instead of printing a bare message.
The fields are keyword-only and optional; plain ``StackError("message")``
construction keeps working everywhere.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GeometryError(ReproError):
    """Invalid geometric input (degenerate triangle, empty bounds, ...)."""


class SceneError(ReproError):
    """Invalid scene construction or unknown workload name."""


class BVHError(ReproError):
    """BVH construction or validation failure."""


class TraversalError(ReproError):
    """Inconsistent traversal trace or stack event stream."""


class DiagnosticError(ReproError):
    """A repro error annotated with where in the simulation it happened.

    ``cycle``/``sm_id``/``warp_id``/``lane``/``component`` are optional;
    whichever are set render into ``str(error)`` as a bracketed suffix,
    e.g. ``push into full SH region [cycle=812, sm=0, warp=3, lane=17,
    component=stack]``.
    """

    def __init__(
        self,
        message: str = "",
        *,
        cycle: Optional[int] = None,
        sm_id: Optional[int] = None,
        warp_id: Optional[int] = None,
        lane: Optional[int] = None,
        component: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.cycle = cycle
        self.sm_id = sm_id
        self.warp_id = warp_id
        self.lane = lane
        self.component = component

    def diagnostics(self) -> Dict[str, Any]:
        """The diagnostic fields that are set, as a plain dict."""
        pairs = (
            ("cycle", self.cycle),
            ("sm", self.sm_id),
            ("warp", self.warp_id),
            ("lane", self.lane),
            ("component", self.component),
        )
        return {key: value for key, value in pairs if value is not None}

    def __str__(self) -> str:
        details = self.diagnostics()
        if not details:
            return self.message
        rendered = ", ".join(f"{key}={value}" for key, value in details.items())
        return f"{self.message} [{rendered}]"

    def __reduce__(self):
        # Exceptions pickle as cls(*args) by default, which would drop the
        # keyword-only diagnostic fields on the trip back from a worker
        # process; rebuild through the state dict instead.
        return (_rebuild_error, (type(self), self.message, self.__dict__.copy()))


def _rebuild_error(cls, message, state):
    """Unpickle helper: restore a :class:`DiagnosticError` subclass."""
    error = cls(message)
    error.__dict__.update(state)
    return error


class StackError(DiagnosticError):
    """Traversal stack protocol violation (pop from empty, bad reload, ...)."""


class ConfigError(ReproError):
    """Invalid simulator configuration parameters."""


class SimulationError(DiagnosticError):
    """Timing simulation reached an inconsistent state."""


class GuardViolationError(SimulationError):
    """A simulation integrity guard tripped.

    Deterministic by construction — the same job fails the same way every
    time — so the runtime executor does not retry these and records them
    as structured failures in the result store instead of caching a
    partial result.
    """


class InvariantViolationError(GuardViolationError):
    """An SMS conservation law or structural invariant was violated."""


class SimulationStallError(GuardViolationError):
    """The forward-progress watchdog detected a livelock or budget overrun.

    Carries the evidence needed to diagnose the stall: per-lane stack
    snapshots of the offending warp and the last N scheduler decisions
    leading up to it.
    """

    def __init__(
        self,
        message: str = "",
        *,
        cycle: Optional[int] = None,
        sm_id: Optional[int] = None,
        warp_id: Optional[int] = None,
        lane: Optional[int] = None,
        component: Optional[str] = None,
        stack_snapshots: Optional[Dict[int, Dict[str, Any]]] = None,
        decisions: Optional[List[Dict[str, Any]]] = None,
    ) -> None:
        super().__init__(
            message,
            cycle=cycle,
            sm_id=sm_id,
            warp_id=warp_id,
            lane=lane,
            component=component,
        )
        self.stack_snapshots = stack_snapshots or {}
        self.decisions = decisions or []


class ExperimentError(ReproError):
    """Experiment driver misuse (unknown figure id, missing results, ...)."""


class AblationError(ReproError):
    """Invalid ablation input (bad knob space, missing run directory, ...).

    Everything the design-space engine rejects — malformed knob-space
    files, unknown knob names, empty ranges, matrices whose importance
    corners were filtered out, reports read from a directory that holds
    none — raises this type, so the CLI turns it into a structured
    ``error:`` message with exit code 2 rather than a traceback.
    """


class JobExecutionError(ReproError):
    """A runtime job kept failing after exhausting its retry budget."""


class ServiceError(ReproError):
    """Serving-layer failure (:mod:`repro.service`)."""


class ServiceOverloadError(ServiceError):
    """The service shed this submission instead of queuing it unboundedly.

    Raised by admission control when the token bucket is empty or every
    shard queue is full.  ``retry_after`` is the server's hint (seconds)
    for when capacity should be available again; ``reason`` names which
    limit tripped (``"rate"`` or ``"queue"``).  Clients are expected to
    back off and resubmit — the work was *not* accepted.
    """

    def __init__(
        self,
        message: str = "",
        *,
        retry_after: float = 0.0,
        reason: str = "queue",
    ) -> None:
        super().__init__(message)
        self.message = message
        self.retry_after = retry_after
        self.reason = reason


class ShardFailureError(ServiceError):
    """A worker shard crashed, hung, or returned a corrupt payload.

    Internal to the coordinator's redelivery machinery: the affected job
    is requeued (up to the redelivery budget) rather than failed, so
    clients normally never see this type.  ``shard_id`` and ``reason``
    (``"crash"``, ``"hung"``, ``"corrupt"``) feed the circuit breaker
    and the structured metrics.
    """

    def __init__(
        self,
        message: str = "",
        *,
        shard_id: Optional[int] = None,
        reason: str = "crash",
    ) -> None:
        super().__init__(message)
        self.message = message
        self.shard_id = shard_id
        self.reason = reason
