"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything this package raises with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GeometryError(ReproError):
    """Invalid geometric input (degenerate triangle, empty bounds, ...)."""


class SceneError(ReproError):
    """Invalid scene construction or unknown workload name."""


class BVHError(ReproError):
    """BVH construction or validation failure."""


class TraversalError(ReproError):
    """Inconsistent traversal trace or stack event stream."""


class StackError(ReproError):
    """Traversal stack protocol violation (pop from empty, bad reload, ...)."""


class ConfigError(ReproError):
    """Invalid simulator configuration parameters."""


class SimulationError(ReproError):
    """Timing simulation reached an inconsistent state."""


class ExperimentError(ReproError):
    """Experiment driver misuse (unknown figure id, missing results, ...)."""


class JobExecutionError(ReproError):
    """A runtime job kept failing after exhausting its retry budget."""
