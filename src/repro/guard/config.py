"""Guard layer configuration.

A :class:`GuardConfig` switches the integrity subsystem on for one
simulation: invariant checking on every drain step, the forward-progress
watchdog on the RT unit's resident-warp loop, and (for the chaos harness)
one injected fault.  Guards are pure observers — with no fault injected,
a guarded run produces bit-identical counters to an unguarded one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.guard.chaos import FaultSpec

#: Default number of consecutive no-progress warp iterations tolerated
#: before the watchdog declares a livelock.  Healthy iterations always
#: advance at least one lane cursor, so any window of pure non-progress
#: indicates a stuck warp; the margin only exists to keep the diagnosis
#: unambiguous in the error message.
DEFAULT_STALL_WINDOW = 64

#: Default ring-buffer size for the watchdog's scheduler-decision log.
DEFAULT_HISTORY = 32


@dataclass(frozen=True)
class GuardConfig:
    """What the integrity layer checks during one simulation.

    ``invariants`` wraps every stack model in a
    :class:`~repro.guard.invariants.GuardedStack` and verifies the SMS
    conservation laws after every warp iteration.  ``watchdog`` arms the
    forward-progress monitor; ``max_cycles`` additionally bounds the
    simulated clock (``None`` = unbounded).  ``deep_check`` compares the
    full logical stack contents against the shadow stack on every drain
    step (value-exact LIFO); switching it off keeps only the O(1)
    accounting checks.  ``chaos`` injects one deterministic fault — used
    by the chaos harness, never in production runs.
    """

    invariants: bool = True
    watchdog: bool = True
    max_cycles: Optional[int] = None
    stall_window: int = DEFAULT_STALL_WINDOW
    history: int = DEFAULT_HISTORY
    deep_check: bool = True
    chaos: Optional[FaultSpec] = None

    def __post_init__(self) -> None:
        from repro.errors import ConfigError

        if self.stall_window < 1:
            raise ConfigError("stall_window must be >= 1")
        if self.history < 1:
            raise ConfigError("history must be >= 1")
        if self.max_cycles is not None and self.max_cycles < 1:
            raise ConfigError("max_cycles must be >= 1 (or None)")
