"""Simulation integrity layer: invariant checking, watchdog, chaos.

Three pillars (see ``docs/architecture.md``):

* :mod:`repro.guard.invariants` — wraps every stack model and asserts
  the SMS conservation laws on every drain step;
* :mod:`repro.guard.watchdog` — converts livelocks and cycle-budget
  overruns in the RT unit's scheduler loop into structured
  :class:`~repro.errors.SimulationStallError` instead of hangs;
* :mod:`repro.guard.chaos` — deterministically injects faults and
  proves the two detectors above actually fire.

Enable with ``GPUSimulator(config, guard=GuardConfig())`` or the CLI's
``--guard`` flag; guards are pure observers, so a guarded run is
bit-identical to an unguarded one.
"""

from repro.guard.chaos import (
    FAULT_CLASSES,
    ChaosReport,
    FaultOutcome,
    FaultSpec,
    fault_families,
    run_chaos_campaign,
)
from repro.guard.config import GuardConfig
from repro.guard.invariants import GuardedStack, InvariantChecker
from repro.guard.watchdog import ProgressWatchdog

__all__ = [
    "GuardConfig",
    "GuardedStack",
    "InvariantChecker",
    "ProgressWatchdog",
    "FaultSpec",
    "FaultOutcome",
    "ChaosReport",
    "FAULT_CLASSES",
    "fault_families",
    "run_chaos_campaign",
]
