"""Invariant checking for traversal stack models.

Two pieces:

* :class:`GuardedStack` wraps one warp slot's stack model and shadows
  every logical operation with an unbounded reference stack.  It enforces
  the SMS conservation laws **as the operations happen** (phantom pops,
  lost entries, LIFO-order corruption) and, on every drain step, the
  structural and accounting laws (entry conservation across RB/SH/global,
  ``borrow <= max_borrows``, ``flush <= max_flushes`` before the forced
  path, value-exact LIFO recovery under borrow/flush rotation).
* :class:`InvariantChecker` owns the guarded stacks of one RT unit plus
  the counter-coherence law: the shared/global stack requests priced into
  :class:`~repro.gpu.counters.Counters` must exactly equal the requests
  the stack models emitted.

Guards are pure observers: they never mutate the wrapped model, generate
no memory operations and touch no counters, so a guarded run is
bit-identical to an unguarded one (asserted in ``tests/guard``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import InvariantViolationError, StackError
from repro.stack.ops import MemSpace, OpKind, StackActivity
from repro.stack.sms import SmsStack


@dataclass
class GuardContext:
    """Where the simulation currently is (shared mutable context).

    The RT unit updates this once per warp iteration so that violations
    raised from deep inside a stack operation can still name the cycle
    and warp they happened in.
    """

    sm_id: int = 0
    cycle: int = 0
    warp_id: Optional[int] = None


class GuardedStack:
    """Integrity-checking proxy around one warp slot's stack model.

    Implements the :class:`~repro.stack.base.StackModel` protocol by
    delegation; every push/pop is mirrored into a per-lane shadow stack
    and cross-checked immediately.  Accumulated accounting (entries
    pushed/popped/discarded, shared/global requests observed) feeds the
    drain-step verification in :meth:`verify`.
    """

    def __init__(
        self,
        inner,
        context: GuardContext,
        component: str = "stack",
        deep_check: bool = True,
    ) -> None:
        self.inner = inner
        self.ctx = context
        self.component = component
        self.deep_check = deep_check
        self.warp_size = inner.warp_size
        #: Structural-only mode: the wrapped model declares it keeps no
        #: traversal stack (``has_stack = False``, e.g. the stackless
        #: strategy's lane state).  Conservation laws are vacuous there;
        #: what the guard enforces instead is that no stack operation and
        #: no stack traffic exist at all.
        self.structural_only = not getattr(inner, "has_stack", True)
        self._shadow: List[List[int]] = [[] for _ in range(self.warp_size)]
        # Logical-entry accounting (conservation law).
        self.pushed = 0
        self.popped = 0
        self.discarded = 0
        # Memory requests observed in the activities the model returned.
        self.shared_loads = 0
        self.shared_stores = 0
        self.global_loads = 0
        self.global_stores = 0
        # Entries abandoned while resident in SH / global at finish().
        self.discarded_shared = 0
        self.discarded_global = 0

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    @property
    def unwrapped(self):
        """The innermost real stack model (through any chaos wrapper)."""
        return getattr(self.inner, "unwrapped", self.inner)

    @property
    def _sms(self) -> Optional[SmsStack]:
        """The wrapped model as an SmsStack, when the SMS laws apply.

        Inter-warp slot views share one model across slots, so their
        SMS-specific occupancy laws are not per-slot; only the generic
        checks apply to them.
        """
        model = self.unwrapped
        return model if isinstance(model, SmsStack) else None

    def _violation(self, message: str, lane: Optional[int] = None) -> None:
        raise InvariantViolationError(
            message,
            cycle=self.ctx.cycle,
            sm_id=self.ctx.sm_id,
            warp_id=self.ctx.warp_id,
            lane=lane,
            component=self.component,
        )

    def _tally(self, activity: StackActivity) -> None:
        for op in activity.ops:
            if op.space is MemSpace.SHARED:
                if op.kind is OpKind.LOAD:
                    self.shared_loads += 1
                else:
                    self.shared_stores += 1
            else:
                if op.kind is OpKind.LOAD:
                    self.global_loads += 1
                else:
                    self.global_stores += 1

    def _check_depth(self, lane: int) -> None:
        """The conservation law, per lane: model depth must equal
        pushed - popped - discarded (the shadow stack's length)."""
        depth = self.inner.depth(lane)
        expected = len(self._shadow[lane])
        if depth != expected:
            self._violation(
                f"entry conservation violated: model holds {depth} "
                f"entries but pushed - popped - discarded = {expected}",
                lane,
            )

    # ------------------------------------------------------------------
    # StackModel protocol
    # ------------------------------------------------------------------

    def push(self, lane: int, value: int) -> StackActivity:
        if self.structural_only:
            self._violation(
                f"stack push ({value:#x}) issued under a stackless "
                f"strategy — no traversal stack exists",
                lane,
            )
        activity = self.inner.push(lane, value)
        self._shadow[lane].append(value)
        self.pushed += 1
        self._tally(activity)
        self._check_depth(lane)
        return activity

    def pop(self, lane: int):
        if self.structural_only:
            self._violation(
                "stack pop issued under a stackless strategy — no "
                "traversal stack exists",
                lane,
            )
        shadow = self._shadow[lane]
        try:
            value, activity = self.inner.pop(lane)
        except StackError as error:
            if shadow:
                self._violation(
                    f"entries lost: model reports empty but "
                    f"{len(shadow)} logical entries remain",
                    lane,
                )
            raise error
        if not shadow:
            self._violation(
                f"phantom pop: model returned {value:#x} from a "
                f"logically empty stack",
                lane,
            )
        expected = shadow.pop()
        self.popped += 1
        self._tally(activity)
        if value != expected:
            self._violation(
                f"LIFO order violated: popped {value:#x}, expected "
                f"{expected:#x}",
                lane,
            )
        self._check_depth(lane)
        return value, activity

    def depth(self, lane: int) -> int:
        return self.inner.depth(lane)

    def contents(self, lane: int) -> List[int]:
        return self.inner.contents(lane)

    def finish(self, lane: int) -> None:
        self._account_abandoned(lane)
        self.inner.finish(lane)
        self._shadow[lane].clear()

    def reset(self) -> None:
        for lane in range(self.warp_size):
            self._account_abandoned(lane)
            self._shadow[lane].clear()
        self.inner.reset()

    def _account_abandoned(self, lane: int) -> None:
        """Entries discarded with the lane keep the conservation and
        occupancy balances closed (an any-hit ray abandons its stack)."""
        self.discarded += len(self._shadow[lane])
        sms = self._sms
        if sms is not None:
            self.discarded_shared += sms.sh_occupancy(lane)
            self.discarded_global += sms.global_occupancy(lane)

    # ------------------------------------------------------------------
    # drain-step verification
    # ------------------------------------------------------------------

    def verify(self, forced_flushes: int = 0) -> None:
        """Assert every per-stack law; called after each warp iteration.

        ``forced_flushes`` is how many forced (over-budget) flushes the
        RT unit has recorded so far — a region whose flush count exceeds
        ``max_flushes`` without a recorded forced flush means the
        graceful-degradation path was bypassed silently.

        Structural-only mode (no-stack strategies) replaces the
        conservation laws with their degenerate form: no operations, no
        traffic, every lane permanently at depth zero.
        """
        if self.structural_only:
            if self.pushed or self.popped or self.discarded:
                self._violation(
                    f"stackless strategy accumulated stack operations "
                    f"(pushed={self.pushed}, popped={self.popped}, "
                    f"discarded={self.discarded})"
                )
            traffic = (
                self.shared_loads + self.shared_stores
                + self.global_loads + self.global_stores
            )
            if traffic:
                self._violation(
                    f"stackless strategy emitted {traffic} stack memory "
                    f"requests; spill traffic must be zero"
                )
            for lane in range(self.warp_size):
                if self.inner.depth(lane) != 0:
                    self._violation(
                        f"stackless lane reports depth "
                        f"{self.inner.depth(lane)}, expected 0",
                        lane,
                    )
            return
        for lane in range(self.warp_size):
            shadow = self._shadow[lane]
            if self.inner.depth(lane) != len(shadow):
                self._check_depth(lane)  # raises with the full message
            if self.deep_check:
                actual = self.inner.contents(lane)
                if actual != shadow:
                    self._violation(
                        f"stack contents diverged from logical LIFO "
                        f"order: model {actual}, expected {shadow}",
                        lane,
                    )
        sms = self._sms
        if sms is None:
            return
        # Borrow bound: at most max_borrows concurrent borrowed regions.
        for lane in range(sms.warp_size):
            borrows = sms.chain_length(lane) - 1
            if borrows > sms.max_borrows:
                self._violation(
                    f"borrow bound violated: {borrows} concurrent "
                    f"borrows > max_borrows={sms.max_borrows}",
                    lane,
                )
        # Flush bound: beyond max_flushes only via the (counted) forced path.
        for lane in range(sms.warp_size):
            for region in sms._chain[lane]:
                if region.flush_count > sms.max_flushes and forced_flushes == 0:
                    self._violation(
                        f"flush bound violated: region of lane "
                        f"{region.owner} flushed {region.flush_count} "
                        f"times > max_flushes={sms.max_flushes} with no "
                        f"forced flush recorded",
                        lane,
                    )
        # Structural invariants (chain membership, ownership, occupancy).
        try:
            sms.check_invariants()
        except StackError as error:
            self._violation(f"structural invariant violated: {error}")
        # Occupancy balance: every spill stored once, every reload loaded
        # once, so (stores - loads) must equal what is still resident
        # plus what was abandoned at finish.
        sh_resident = sum(sms.sh_occupancy(lane) for lane in range(sms.warp_size))
        sh_balance = self.shared_stores - self.shared_loads
        if sh_balance != sh_resident + self.discarded_shared:
            self._violation(
                f"shared-memory balance violated: stores - loads = "
                f"{sh_balance} but resident + discarded = "
                f"{sh_resident + self.discarded_shared}"
            )
        global_resident = sum(
            sms.global_occupancy(lane) for lane in range(sms.warp_size)
        )
        global_balance = self.global_stores - self.global_loads
        if global_balance != global_resident + self.discarded_global:
            self._violation(
                f"global-memory balance violated: stores - loads = "
                f"{global_balance} but resident + discarded = "
                f"{global_resident + self.discarded_global}"
            )


class InvariantChecker:
    """All integrity checks of one RT unit.

    Owns the unit's :class:`GuardedStack` wrappers and the shared
    :class:`GuardContext`, and verifies the cross-stack counter-coherence
    law against the unit's :class:`~repro.gpu.counters.Counters` (as a
    delta from construction time, since the counter object is shared by
    every SM of the simulated GPU).
    """

    def __init__(self, counters, sm_id: int = 0, deep_check: bool = True) -> None:
        self.counters = counters
        self.sm_id = sm_id
        self.deep_check = deep_check
        self.ctx = GuardContext(sm_id=sm_id)
        self.stacks: List[GuardedStack] = []
        self._base = self._snapshot()

    def _snapshot(self):
        counters = self.counters
        return (
            counters.stack_shared_loads,
            counters.stack_shared_stores,
            counters.stack_global_loads,
            counters.stack_global_stores,
            counters.forced_flushes,
        )

    def wrap(self, stack, slot: int) -> GuardedStack:
        """Wrap one warp slot's stack model; returns the guarded proxy."""
        guarded = GuardedStack(
            stack,
            self.ctx,
            component=f"stack[slot={slot}]",
            deep_check=self.deep_check,
        )
        self.stacks.append(guarded)
        return guarded

    def begin_iteration(self, cycle: int, warp_id: Optional[int]) -> None:
        """Stamp the context before a warp iteration replays its ops."""
        self.ctx.cycle = cycle
        self.ctx.warp_id = warp_id

    def verify(self, cycle: int, warp_id: Optional[int], slot: int) -> None:
        """The drain-step check: one warp iteration just completed."""
        self.ctx.cycle = cycle
        self.ctx.warp_id = warp_id
        base = self._base
        forced = self.counters.forced_flushes - base[4]
        self.stacks[slot].verify(forced_flushes=forced)
        observed = (
            sum(g.shared_loads for g in self.stacks),
            sum(g.shared_stores for g in self.stacks),
            sum(g.global_loads for g in self.stacks),
            sum(g.global_stores for g in self.stacks),
        )
        counted = (
            self.counters.stack_shared_loads - base[0],
            self.counters.stack_shared_stores - base[1],
            self.counters.stack_global_loads - base[2],
            self.counters.stack_global_stores - base[3],
        )
        if observed != counted:
            names = ("shared loads", "shared stores",
                     "global loads", "global stores")
            details = ", ".join(
                f"{name}: counted {c} vs emitted {o}"
                for name, o, c in zip(names, observed, counted)
                if o != c
            )
            raise InvariantViolationError(
                f"counter coherence violated — stack traffic counters "
                f"disagree with the requests the stack models emitted "
                f"({details})",
                cycle=cycle,
                sm_id=self.sm_id,
                warp_id=warp_id,
                component="counters",
            )
