"""Vector-path invariant sampling.

The full guard layer (shadow stacks, watchdog, chaos) wraps every
stack-model call and therefore only runs on the stepped oracle — a
guarded run is one of the vector backend's fallback conditions.  To
keep the vector path from becoming an unchecked fast lane, the plan
builder (:func:`repro.gpu.vector.plan.warp_plan`) samples warps
(``warp_id % SAMPLE_STRIDE == 0``) and cross-checks the canonical
stack-model replay against the independent SoA mirror:

* the model's per-lane depth must equal the vectorized depth matrix
  (cumulative pushes minus pops) at sampled iterations;
* SMS RB occupancy (via :meth:`~repro.stack.sms.SmsStack.soa_state`)
  must respect the configured register-stack bound;
* the finished plan's counter totals must satisfy the conservation
  laws the full guard asserts per drain step (loads never exceed
  stores, warp steps equal the structural iteration count).

Violations raise :class:`~repro.errors.InvariantViolationError`, the
same error type the full guard uses, so executor/service handling
(fail fast, no retry) applies unchanged.
"""

from __future__ import annotations

from repro.errors import InvariantViolationError
from repro.gpu.config import GPUConfig

__all__ = ["VectorPlanSampler"]


class VectorPlanSampler:
    """Spot-checks one sampled warp's plan replay against its SoA mirror."""

    #: Check every this-many iterations of a sampled warp's replay.
    stride = 16

    def __init__(self, warp_id: int, config: GPUConfig) -> None:
        self.warp_id = warp_id
        self.config = config

    def check_iteration(self, model, state, k: int) -> None:
        """Depth and occupancy invariants after replaying iteration ``k``."""
        lens = state.lens
        depth_col = state.depth[:, k]
        for row, lane in enumerate(state.lanes):
            if lens[row] <= k:
                continue
            expected = int(depth_col[row])
            actual = model.depth(lane)
            if actual != expected:
                raise InvariantViolationError(
                    f"vector replay diverged from the SoA mirror: lane "
                    f"{lane} depth {actual} != mirrored {expected} at "
                    f"iteration {k}",
                    warp_id=self.warp_id, lane=lane, component="vector",
                )
        soa_state = getattr(model, "soa_state", None)
        if soa_state is None:
            return
        occupancy = soa_state()
        rb_limit = self.config.rb_stack_entries
        if rb_limit is not None and int(occupancy["rb"].max()) > rb_limit:
            raise InvariantViolationError(
                f"vector replay overfilled an RB stack: occupancy "
                f"{int(occupancy['rb'].max())} > {rb_limit} entries at "
                f"iteration {k}",
                warp_id=self.warp_id, component="vector",
            )
        if int(occupancy["sh"].min()) < 0 or int(occupancy["global"].min()) < 0:
            raise InvariantViolationError(
                "vector replay produced negative stack occupancy",
                warp_id=self.warp_id, component="vector",
            )

    def check_totals(self, totals: dict, state) -> None:
        """Conservation laws over the finished plan's counter totals."""
        if totals["stack_shared_loads"] > totals["stack_shared_stores"]:
            raise InvariantViolationError(
                f"vector plan loads {totals['stack_shared_loads']} shared "
                f"entries but only {totals['stack_shared_stores']} were "
                f"ever stored",
                warp_id=self.warp_id, component="vector",
            )
        if totals["stack_global_loads"] > totals["stack_global_stores"]:
            raise InvariantViolationError(
                f"vector plan reloads {totals['stack_global_loads']} "
                f"spilled entries but only "
                f"{totals['stack_global_stores']} were ever spilled",
                warp_id=self.warp_id, component="vector",
            )
        if totals["warp_steps"] != state.n_iters:
            raise InvariantViolationError(
                f"vector plan priced {totals['warp_steps']} iterations "
                f"for a {state.n_iters}-iteration warp",
                warp_id=self.warp_id, component="vector",
            )
