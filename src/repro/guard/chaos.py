"""Deterministic fault injection — proves the guard layer detects bugs.

Trusting an invariant checker requires evidence that it *fails* when the
simulation is wrong, not only that it passes when the simulation is
right.  This module injects seeded faults into a live simulation —
corrupted stack entries, dropped reloads, phantom entries, skewed
counters, stuck warps, borrow-chain cycles — and
:func:`run_chaos_campaign` verifies that every injected fault class is
flagged by the invariant checker or the watchdog with a structured
error, while a fault-free guarded run stays bit-identical to the
unguarded baseline.

Faults are deterministic: a :class:`FaultSpec` derives its trigger point
from a seed, the workload is synthetic and seeded, and the simulator has
no other randomness, so a detected fault reproduces exactly.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError, GuardViolationError
from repro.stack.sms import SmsStack
from repro.trace.events import NodeKind, RayKind, RayTrace, Step

#: Fault classes injected at the stack-model layer.
STACK_FAULTS = ("corrupt_entry", "drop_reload", "phantom_entry", "borrow_cycle")

#: Fault classes injected at the RT-unit layer.
UNIT_FAULTS = ("skew_counter", "stuck_warp")

#: Every injectable fault class.
FAULT_CLASSES = STACK_FAULTS + UNIT_FAULTS


def fault_families() -> Dict[str, Tuple[str, ...]]:
    """Every chaos family the toolkit can inject, by layer.

    ``guard`` faults attack the simulation model (this module);
    ``service`` faults attack the serving layer
    (:mod:`repro.service.faults`).  Imported lazily so the guard
    package never pays for the service package at import time.
    """
    from repro.service.faults import SERVICE_FAULT_CLASSES

    return {
        "guard": FAULT_CLASSES,
        "service": SERVICE_FAULT_CLASSES,
    }

#: XOR mask applied by ``corrupt_entry`` (flips address bits).
_CORRUPT_MASK = 0x5_A5A0

#: Value pushed by ``phantom_entry`` alongside the legitimate one.
_PHANTOM_MASK = 0x0DD0_F00D


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault: what to inject and when.

    ``trigger`` counts stack operations (for stack faults) or warp
    iterations (for unit faults) before the fault fires; every fault
    fires exactly once, except ``stuck_warp`` which stays stuck.
    """

    kind: str
    trigger: int = 32
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_CLASSES:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; "
                f"choose from {', '.join(FAULT_CLASSES)}"
            )
        if self.trigger < 1:
            raise ConfigError("fault trigger must be >= 1")

    @classmethod
    def seeded(cls, kind: str, seed: int = 0) -> "FaultSpec":
        """Derive a trigger point deterministically from ``seed``.

        Stack faults count individual stack operations (hundreds per
        warp iteration), unit faults count warp iterations; both ranges
        are sized so the fault lands mid-campaign on the
        :func:`chaos_traces` workload.
        """
        digest = hashlib.sha256(f"{kind}:{seed}".encode()).digest()
        if kind in UNIT_FAULTS:
            trigger = 16 + digest[0] % 48
        else:
            trigger = 200 + ((digest[0] << 8) | digest[1]) % 800
        return cls(kind=kind, trigger=trigger, seed=seed)


class ChaosController:
    """Injects one fault into one RT unit's execution."""

    def __init__(self, fault: FaultSpec) -> None:
        self.fault = fault
        self.fired = False
        self._iterations = 0

    def wrap_stack(self, stack, slot: int):
        """Interpose the fault on slot 0's stack model (stack faults only)."""
        if self.fault.kind in STACK_FAULTS and slot == 0:
            return ChaosStack(stack, self.fault, self)
        return stack

    def tick(self, counters) -> None:
        """Called once per warp iteration; fires counter-level faults."""
        self._iterations += 1
        if (
            self.fault.kind == "skew_counter"
            and not self.fired
            and self._iterations >= self.fault.trigger
        ):
            # An accounting bug: traffic counted that no model emitted.
            # Violating counter ownership is this fault's entire point.
            counters.stack_global_stores += 3  # simlint: disable=SL203
            self.fired = True

    def stuck(self, warp) -> bool:
        """True when ``warp`` should stop making progress (stuck fault)."""
        if self.fault.kind != "stuck_warp":
            return False
        if self._iterations >= self.fault.trigger:
            self.fired = True
            return True
        return False


class ChaosStack:
    """Stack-model proxy that injects one fault, then behaves normally.

    Sits *inside* the :class:`~repro.guard.invariants.GuardedStack`
    wrapper, so the guard observes the faulty behavior exactly as it
    would observe a real bookkeeping bug.
    """

    def __init__(self, inner, fault: FaultSpec, controller: ChaosController) -> None:
        self.inner = inner
        self.fault = fault
        self.controller = controller
        self.warp_size = inner.warp_size
        self._ops = 0

    @property
    def unwrapped(self):
        """The real stack model beneath the fault injector."""
        return getattr(self.inner, "unwrapped", self.inner)

    def _due(self) -> bool:
        return not self.controller.fired and self._ops >= self.fault.trigger

    def push(self, lane: int, value: int):
        self._ops += 1
        activity = self.inner.push(lane, value)
        if self.fault.kind == "phantom_entry" and self._due():
            # A duplicated push: an entry the protocol never issued.
            activity = activity.merge(
                self.inner.push(lane, value ^ _PHANTOM_MASK)
            )
            self.controller.fired = True
        elif self.fault.kind == "borrow_cycle" and self._due():
            if self._inject_borrow_cycle():
                self.controller.fired = True
        return activity

    def pop(self, lane: int):
        self._ops += 1
        value, activity = self.inner.pop(lane)
        if self.fault.kind == "corrupt_entry" and self._due():
            # A flipped bit pattern in the returned stack entry.
            value ^= _CORRUPT_MASK
            self.controller.fired = True
        elif self.fault.kind == "drop_reload" and self._due():
            # A reload that never arrived: the next entry vanishes.
            if self.inner.depth(lane) > 0:
                self.inner.pop(lane)
                self.controller.fired = True
        elif self.fault.kind == "borrow_cycle" and self._due():
            if self._inject_borrow_cycle():
                self.controller.fired = True
        return value, activity

    def _inject_borrow_cycle(self) -> bool:
        """Link one lane's SH region into another lane's chain.

        Duplicate chain membership is exactly the ownership cycle the
        paper's Next-TID tracking must never create.
        """
        sms = self.unwrapped
        if not isinstance(sms, SmsStack):
            return False
        owners = [lane for lane in range(sms.warp_size) if sms._chain[lane]]
        if len(owners) < 2:
            return False
        victim, donor = owners[0], owners[1]
        sms._chain[victim].append(sms._chain[donor][-1])
        return True

    def depth(self, lane: int) -> int:
        return self.inner.depth(lane)

    def contents(self, lane: int):
        return self.inner.contents(lane)

    def finish(self, lane: int) -> None:
        self.inner.finish(lane)

    def reset(self) -> None:
        self.inner.reset()


# ----------------------------------------------------------------------
# campaign
# ----------------------------------------------------------------------


@dataclass
class FaultOutcome:
    """How one injected fault class fared against the guard layer."""

    fault: FaultSpec
    detected: bool
    error_type: Optional[str] = None
    message: str = ""
    diagnostics: Dict[str, Any] = field(default_factory=dict)

    @property
    def structured(self) -> bool:
        """The error named the cycle, warp and component, as required."""
        return {"cycle", "warp", "component"} <= set(self.diagnostics)


@dataclass
class ChaosReport:
    """Result of one fault-injection campaign."""

    outcomes: List[FaultOutcome]
    #: Fault-free guarded run produced bit-identical counters to the
    #: unguarded baseline.
    clean_identical: bool

    @property
    def all_detected(self) -> bool:
        """Every fault flagged with a fully structured error, and the
        guards themselves perturbed nothing."""
        return self.clean_identical and all(
            outcome.detected and outcome.structured for outcome in self.outcomes
        )

    def summary(self) -> str:
        """Human-readable campaign table."""
        lines = [
            f"{'fault':<16} {'trigger':>7}  {'detected by':<28} where",
        ]
        for outcome in self.outcomes:
            where = ", ".join(
                f"{key}={value}" for key, value in outcome.diagnostics.items()
            )
            lines.append(
                f"{outcome.fault.kind:<16} {outcome.fault.trigger:>7}  "
                f"{outcome.error_type or 'NOT DETECTED':<28} {where}"
            )
        lines.append(
            "clean guarded run bit-identical to unguarded: "
            + ("yes" if self.clean_identical else "NO")
        )
        lines.append(
            "verdict: " + ("all faults detected" if self.all_detected
                           else "GUARD GAP — see above")
        )
        return "\n".join(lines)


def chaos_traces(
    rays: int = 128, max_depth: int = 24, seed: int = 0
) -> List[RayTrace]:
    """A synthetic deep-stack workload that exercises all three levels.

    Each ray walks a DFS-shaped sawtooth: the stack grows to ``depth``
    pushing two children and popping one per step, then drains one pop
    per step.  Ops spread across every iteration (unlike a single
    push-everything root step), so seeded fault triggers land mid-drain,
    and small RB/SH configurations spill into shared and global memory,
    borrow, flush and reload — the state space the faults hide in.
    Every 8th ray uses the full ``max_depth`` so warp iteration counts
    are workload-independent lower-bounded.
    """
    rng = random.Random(seed)
    traces: List[RayTrace] = []
    base = 0x1000_0000
    for ray in range(rays):
        depth = (
            max_depth if ray % 8 == 0
            else rng.randint(max(2, max_depth // 2), max_depth)
        )
        root = base + 0x40000 * ray
        next_index = 0

        def fresh_address() -> int:
            nonlocal next_index
            next_index += 1
            return root + 0x40 * next_index

        trace = RayTrace(ray_id=ray, pixel=ray, kind=RayKind.PRIMARY)
        current = root
        resident: List[int] = []
        grown = 0
        while True:
            pushes: List[int] = []
            if grown < depth:
                for _ in range(min(2, depth - grown)):
                    pushes.append(fresh_address())
                    grown += 1
                resident.extend(pushes)
            popped = bool(resident)
            trace.steps.append(
                Step(
                    address=current,
                    size_bytes=64,
                    kind=NodeKind.INTERNAL if pushes else NodeKind.LEAF,
                    tests=max(1, len(pushes)),
                    pushes=pushes,
                    popped=popped,
                )
            )
            if not popped:
                break
            current = resident.pop()
        traces.append(trace)
    return traces


def default_chaos_config():
    """A small SMS configuration that keeps all three levels busy."""
    from repro.gpu.config import GPUConfig

    return GPUConfig(
        num_sms=1,
        rb_stack_entries=2,
        sh_stack_entries=2,
        skewed_bank_access=True,
        intra_warp_realloc=True,
    )


def run_chaos_campaign(
    kinds: Optional[Sequence[str]] = None,
    seed: int = 0,
    rays: int = 128,
    max_depth: int = 24,
    config=None,
    stall_window: int = 48,
) -> ChaosReport:
    """Inject every fault class and verify the guard layer catches it.

    Returns a :class:`ChaosReport`; ``report.all_detected`` is the
    pass/fail verdict the chaos CI job asserts.
    """
    from repro.gpu.simulator import GPUSimulator
    from repro.guard.config import GuardConfig

    kinds = tuple(kinds) if kinds else FAULT_CLASSES
    for kind in kinds:
        if kind not in FAULT_CLASSES:
            raise ConfigError(
                f"unknown fault kind {kind!r}; "
                f"choose from {', '.join(FAULT_CLASSES)}"
            )
    config = config or default_chaos_config()
    traces = chaos_traces(rays=rays, max_depth=max_depth, seed=seed)

    plain = GPUSimulator(config, verify_pops=False).run_traces(traces)
    clean_guard = GuardConfig(stall_window=stall_window)
    guarded = GPUSimulator(
        config, verify_pops=False, guard=clean_guard
    ).run_traces(traces)
    clean_identical = (
        plain.counters.as_dict() == guarded.counters.as_dict()
        and plain.per_sm_cycles == guarded.per_sm_cycles
    )

    outcomes: List[FaultOutcome] = []
    for kind in kinds:
        fault = FaultSpec.seeded(kind, seed)
        guard = GuardConfig(stall_window=stall_window, chaos=fault)
        try:
            GPUSimulator(config, verify_pops=False, guard=guard).run_traces(traces)
        except GuardViolationError as error:
            outcomes.append(FaultOutcome(
                fault=fault,
                detected=True,
                error_type=type(error).__name__,
                message=str(error),
                diagnostics=error.diagnostics(),
            ))
        else:
            outcomes.append(FaultOutcome(
                fault=fault, detected=False,
                message="fault escaped every guard",
            ))
    return ChaosReport(outcomes=outcomes, clean_identical=clean_identical)
