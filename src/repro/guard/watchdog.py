"""Forward-progress watchdog for the RT unit's resident-warp loop.

The RT unit schedules resident warps until all complete.  Healthy
iterations always advance at least one lane cursor, so the loop
terminates; a bookkeeping bug (or an injected stuck-warp fault) that
stops cursors from advancing would otherwise spin forever, with the
simulated clock climbing and no ray retiring.  The watchdog observes
every scheduler decision and converts two failure shapes into a
structured :class:`~repro.errors.SimulationStallError` instead of a
hang:

* **livelock** — ``stall_window`` consecutive iterations in which no
  observed warp advanced any cursor;
* **budget overrun** — the simulated clock exceeded ``max_cycles``.

The error carries the cycle, SM, warp, per-lane stack snapshots of the
offending warp and the last N scheduler decisions (a ring buffer), so a
stall deep into a campaign is diagnosable from the exception alone.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.errors import SimulationStallError

#: Lanes shown per snapshot and entries shown per lane, to keep stall
#: errors readable (full contents are available from the live model).
_SNAPSHOT_TOP_ENTRIES = 4


class ProgressWatchdog:
    """Detects livelock and cycle-budget overruns in one RT unit."""

    def __init__(
        self,
        sm_id: int = 0,
        max_cycles: Optional[int] = None,
        stall_window: int = 64,
        history: int = 32,
    ) -> None:
        self.sm_id = sm_id
        self.max_cycles = max_cycles
        self.stall_window = stall_window
        self.decisions: Deque[Dict[str, Any]] = deque(maxlen=history)
        self._cursor_sums: Dict[int, int] = {}
        self._no_progress = 0

    def observe(self, warp, slot: int, start: int, end: int, stack=None) -> None:
        """Record one scheduler decision and check both stall conditions.

        Raises:
            SimulationStallError: on livelock or budget overrun.
        """
        cursor_sum = sum(warp.cursors)
        self.decisions.append({
            "warp": warp.warp_id,
            "slot": slot,
            "start": start,
            "end": end,
            "active_lanes": len(warp.active_lanes()),
            "cursor_sum": cursor_sum,
        })
        previous = self._cursor_sums.get(warp.warp_id)
        if previous is None or cursor_sum > previous or warp.done:
            self._no_progress = 0
        else:
            self._no_progress += 1
        self._cursor_sums[warp.warp_id] = cursor_sum
        if self._no_progress >= self.stall_window:
            self._stall(
                f"no forward progress in {self._no_progress} consecutive "
                f"warp iterations (livelock)",
                warp, end, stack,
            )
        if self.max_cycles is not None and end > self.max_cycles:
            self._stall(
                f"cycle budget exceeded: simulated clock reached {end} > "
                f"max_cycles={self.max_cycles}",
                warp, end, stack,
            )

    def _stall(self, message: str, warp, cycle: int, stack) -> None:
        raise SimulationStallError(
            message,
            cycle=cycle,
            sm_id=self.sm_id,
            warp_id=warp.warp_id,
            component="scheduler",
            stack_snapshots=self._snapshots(warp, stack),
            decisions=list(self.decisions),
        )

    def _snapshots(self, warp, stack) -> Dict[int, Dict[str, Any]]:
        """Per-lane state of the stalled warp: cursor plus stack top."""
        snapshots: Dict[int, Dict[str, Any]] = {}
        for lane in range(warp.lane_count):
            entry: Dict[str, Any] = {
                "cursor": warp.cursors[lane],
                "active": warp.lane_active(lane),
            }
            if stack is not None:
                try:
                    entry["depth"] = stack.depth(lane)
                    entry["top"] = stack.contents(lane)[-_SNAPSHOT_TOP_ENTRIES:]
                except Exception as masked:
                    # A corrupted model must not mask the stall — but the
                    # corruption itself is evidence, so it rides on the
                    # stall report instead of vanishing.
                    entry["depth"] = None
                    entry["top"] = []
                    entry["snapshot_error"] = (
                        f"{type(masked).__name__}: {masked}"
                    )
            snapshots[lane] = entry
        return snapshots
