"""One-call measurement campaigns: sweep, summarize, export.

A :class:`Campaign` wraps the scene-by-configuration sweep the experiment
drivers use, but returns the raw :class:`SimulationResult` objects and
offers CSV/JSON/markdown export — the entry point for users running their
own studies rather than regenerating the paper's figures.

Campaigns execute through :mod:`repro.runtime`: the (scene x config)
matrix runs on a process pool sized by ``jobs`` and every cell is served
from the persistent result store when its content key matches a previous
run.  The simulation is deterministic, so parallel and cached runs are
bit-identical to serial ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.export import results_markdown, write_csv, write_json
from repro.core.presets import named_config
from repro.core.results import SimulationResult
from repro.experiments.common import WorkloadCache, geomean
from repro.gpu.config import GPUConfig
from repro.runtime.executor import ExecutionPolicy, run_jobs
from repro.runtime.job import SimulationJob
from repro.runtime.metrics import RuntimeMetrics
from repro.runtime.store import ResultStore
from repro.workloads.lumibench import SCENE_NAMES
from repro.workloads.params import DEFAULT_PARAMS, WorkloadParams


@dataclass
class CampaignResult:
    """All runs of one campaign plus summary helpers."""

    results: List[SimulationResult]
    baseline_label: str
    #: Executor counters for the run (``None`` on the legacy cache path).
    metrics: Optional[RuntimeMetrics] = None

    def normalized_means(self) -> Dict[str, float]:
        """Geomean normalized IPC per configuration label."""
        by_scene: Dict[str, Dict[str, SimulationResult]] = {}
        for result in self.results:
            by_scene.setdefault(result.scene_name, {})[result.label] = result
        ratios: Dict[str, List[float]] = {}
        for per_scene in by_scene.values():
            base = per_scene.get(self.baseline_label)
            if base is None or base.ipc == 0:
                continue
            for label, result in per_scene.items():
                ratios.setdefault(label, []).append(result.ipc / base.ipc)
        return {label: geomean(values) for label, values in ratios.items()}

    def to_csv(self, path) -> Path:
        """Export all runs as CSV."""
        return write_csv(self.results, path)

    def to_json(self, path) -> Path:
        """Export all runs as JSON."""
        return write_json(self.results, path)

    def to_markdown(self) -> str:
        """Normalized-IPC markdown table."""
        return results_markdown(self.results, self.baseline_label)


@dataclass
class Campaign:
    """A sweep specification: which scenes under which configurations.

    The runtime knobs mirror the CLI: ``jobs`` is the worker-process
    count (``None`` auto-sizes to the machine, ``1`` forces serial
    in-process execution), ``use_cache``/``cache_dir`` control the
    persistent result store, ``timeout``/``retries`` bound each job, and
    ``progress`` draws a live stderr progress line.
    """

    configs: Sequence = ("RB_8", "RB_8+SH_8+SK+RA", "RB_FULL")
    scenes: Optional[Sequence[str]] = None
    params: WorkloadParams = field(default_factory=lambda: DEFAULT_PARAMS)
    baseline_label: str = "RB_8"
    jobs: Optional[int] = None
    use_cache: bool = True
    cache_dir: Optional[Path] = None
    timeout: Optional[float] = None
    retries: int = 2
    progress: bool = False

    def _resolved_configs(self) -> List[GPUConfig]:
        return [
            config if isinstance(config, GPUConfig) else named_config(config)
            for config in self.configs
        ]

    def run(
        self,
        cache: Optional[WorkloadCache] = None,
        service=None,
    ) -> CampaignResult:
        """Execute every (scene, config) pair.

        Passing an explicit ``cache`` keeps the legacy serial path (the
        cache's pre-traced scenes are authoritative); otherwise the sweep
        goes through the runtime executor and result store.

        ``service`` routes the sweep to a running ``repro serve``
        instance instead: pass a
        :class:`~repro.service.client.ServiceClient` or a
        ``http://host:port`` URL.  The service path aggregates
        bit-identically to local execution (the simulation is
        deterministic, and the server sheds rather than drops), so the
        two are interchangeable; campaign shedding is absorbed by the
        client's backoff-and-resubmit loop.
        """
        resolved = self._resolved_configs()
        if cache is not None:
            results = [
                cache.simulate(name, config)
                for name in cache.names
                for config in resolved
            ]
            return CampaignResult(
                results=results, baseline_label=self.baseline_label
            )
        names = list(self.scenes) if self.scenes else list(SCENE_NAMES)
        sweep = [
            SimulationJob.from_params(name, config, params=self.params)
            for name in names
            for config in resolved
        ]
        if service is not None:
            if isinstance(service, str):
                from repro.service.client import ServiceClient

                service = ServiceClient.from_url(service)
            return CampaignResult(
                results=service.run_jobs(sweep),
                baseline_label=self.baseline_label,
            )
        report = run_jobs(
            sweep,
            store=ResultStore(self.cache_dir) if self.use_cache else None,
            policy=ExecutionPolicy(
                workers=self.jobs,
                timeout=self.timeout,
                retries=self.retries,
                progress=self.progress,
            ),
        )
        return CampaignResult(
            results=report.results,
            baseline_label=self.baseline_label,
            metrics=report.metrics,
        )
