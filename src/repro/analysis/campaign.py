"""One-call measurement campaigns: sweep, summarize, export.

A :class:`Campaign` wraps the scene-by-configuration sweep the experiment
drivers use, but returns the raw :class:`SimulationResult` objects and
offers CSV/JSON/markdown export — the entry point for users running their
own studies rather than regenerating the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.export import results_markdown, write_csv, write_json
from repro.core.presets import named_config
from repro.core.results import SimulationResult
from repro.experiments.common import WorkloadCache, geomean
from repro.gpu.config import GPUConfig
from repro.workloads.params import DEFAULT_PARAMS, WorkloadParams


@dataclass
class CampaignResult:
    """All runs of one campaign plus summary helpers."""

    results: List[SimulationResult]
    baseline_label: str

    def normalized_means(self) -> Dict[str, float]:
        """Geomean normalized IPC per configuration label."""
        by_scene: Dict[str, Dict[str, SimulationResult]] = {}
        for result in self.results:
            by_scene.setdefault(result.scene_name, {})[result.label] = result
        ratios: Dict[str, List[float]] = {}
        for per_scene in by_scene.values():
            base = per_scene.get(self.baseline_label)
            if base is None or base.ipc == 0:
                continue
            for label, result in per_scene.items():
                ratios.setdefault(label, []).append(result.ipc / base.ipc)
        return {label: geomean(values) for label, values in ratios.items()}

    def to_csv(self, path) -> Path:
        """Export all runs as CSV."""
        return write_csv(self.results, path)

    def to_json(self, path) -> Path:
        """Export all runs as JSON."""
        return write_json(self.results, path)

    def to_markdown(self) -> str:
        """Normalized-IPC markdown table."""
        return results_markdown(self.results, self.baseline_label)


@dataclass
class Campaign:
    """A sweep specification: which scenes under which configurations."""

    configs: Sequence = ("RB_8", "RB_8+SH_8+SK+RA", "RB_FULL")
    scenes: Optional[Sequence[str]] = None
    params: WorkloadParams = field(default_factory=lambda: DEFAULT_PARAMS)
    baseline_label: str = "RB_8"

    def run(self, cache: Optional[WorkloadCache] = None) -> CampaignResult:
        """Execute every (scene, config) pair."""
        cache = cache or WorkloadCache(params=self.params, scene_names=self.scenes)
        resolved: List[GPUConfig] = [
            config if isinstance(config, GPUConfig) else named_config(config)
            for config in self.configs
        ]
        results: List[SimulationResult] = []
        for name in cache.names:
            for config in resolved:
                results.append(cache.simulate(name, config))
        return CampaignResult(results=results, baseline_label=self.baseline_label)
