"""Flat export of simulation results (CSV / JSON / markdown)."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Sequence

from repro.core.results import SimulationResult

#: Column order for tabular exports.
COLUMNS = [
    "scene",
    "config",
    "ipc",
    "cycles",
    "instructions",
    "offchip_accesses",
    "stack_global_ops",
    "stack_shared_ops",
    "bank_conflict_delay_cycles",
    "borrows",
    "flushes",
    "l1_hit_rate",
    "ray_count",
]


def results_to_rows(results: Sequence[SimulationResult]) -> List[Dict]:
    """Flatten results into one dict per (scene, config) run."""
    rows = []
    for result in results:
        counters = result.counters
        rows.append(
            {
                "scene": result.scene_name,
                "config": result.label,
                "ipc": result.ipc,
                "cycles": result.cycles,
                "instructions": counters.instructions,
                "offchip_accesses": result.offchip_accesses,
                "stack_global_ops": counters.stack_global_ops,
                "stack_shared_ops": counters.stack_shared_ops,
                "bank_conflict_delay_cycles": counters.bank_conflict_delay_cycles,
                "borrows": counters.borrows,
                "flushes": counters.flushes,
                "l1_hit_rate": counters.l1_hit_rate,
                "ray_count": result.ray_count,
            }
        )
    return rows


def write_csv(results: Sequence[SimulationResult], path) -> Path:
    """Write results as CSV; returns the path written."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=COLUMNS)
        writer.writeheader()
        for row in results_to_rows(results):
            writer.writerow(row)
    return path


def write_json(results: Sequence[SimulationResult], path) -> Path:
    """Write results as a JSON list; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(results_to_rows(results), indent=2))
    return path


def results_markdown(
    results: Sequence[SimulationResult], baseline_label: str = "RB_8"
) -> str:
    """A markdown table of IPC per scene/config, normalized to a baseline.

    Rows are scenes, columns configurations; cells are normalized IPC.
    """
    by_scene: Dict[str, Dict[str, SimulationResult]] = {}
    for result in results:
        by_scene.setdefault(result.scene_name, {})[result.label] = result
    labels: List[str] = []
    for per_scene in by_scene.values():
        for label in per_scene:
            if label not in labels:
                labels.append(label)
    lines = ["| scene | " + " | ".join(labels) + " |",
             "|---" * (len(labels) + 1) + "|"]
    for scene, per_scene in by_scene.items():
        base = per_scene.get(baseline_label)
        cells = []
        for label in labels:
            result = per_scene.get(label)
            if result is None:
                cells.append("—")
            elif base is None or base.ipc == 0:
                cells.append(f"{result.ipc:.3f}")
            else:
                cells.append(f"{result.ipc / base.ipc:.3f}")
        lines.append(f"| {scene} | " + " | ".join(cells) + " |")
    return "\n".join(lines)
