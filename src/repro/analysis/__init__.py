"""Result analysis and export.

Turns :class:`~repro.core.results.SimulationResult` collections into
portable artifacts: CSV/JSON files for downstream plotting and a
markdown summary for reports.  The campaign runner wraps a full
scene-by-configuration sweep with export in one call.
"""

from repro.analysis.export import (
    results_to_rows,
    write_csv,
    write_json,
    results_markdown,
)
from repro.analysis.campaign import Campaign, CampaignResult

__all__ = [
    "results_to_rows",
    "write_csv",
    "write_json",
    "results_markdown",
    "Campaign",
    "CampaignResult",
]
