"""Intersection kernels: slab ray/AABB and Moeller-Trumbore ray/triangle.

These are the two tests the paper's RT unit performs in hardware (its
ray-box and ray-triangle operation units, Fig. 2).  The batch AABB variant
tests one ray against the ``k`` child bounds of a wide BVH node in a single
numpy call, which is what keeps the functional tracer fast enough for the
paper's full workload sweep.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.geometry.aabb import AABB
from repro.geometry.ray import Ray
from repro.geometry.triangle import Triangle


def ray_aabb_intersect(ray: Ray, box: AABB) -> Optional[Tuple[float, float]]:
    """Slab test of one ray against one box.

    Returns the entry/exit parameters ``(t_enter, t_exit)`` clipped to the
    ray's interval, or ``None`` when there is no overlap.  A ray originating
    inside the box reports ``t_enter == ray.t_min``.
    """
    if box.is_empty():
        return None
    t1 = (box.lo - ray.origin) * ray.inv_direction
    t2 = (box.hi - ray.origin) * ray.inv_direction
    t_near = np.minimum(t1, t2)
    t_far = np.maximum(t1, t2)
    # NaNs arise when a zero direction component meets a coincident slab
    # (0 * inf); treating them as non-constraining matches robust slab tests.
    t_enter = float(np.nanmax(np.append(t_near, ray.t_min)))
    t_exit = float(np.nanmin(np.append(t_far, ray.t_max)))
    if t_enter > t_exit:
        return None
    return t_enter, t_exit


def slab_test(
    origin: np.ndarray,
    inv_direction: np.ndarray,
    t_min,
    t_max,
    los: np.ndarray,
    his: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Shared slab kernel: one or many rays against ``k`` boxes.

    Shapes broadcast over a leading ray axis: pass ``(3,)`` vectors with
    scalar ``t_min`` / ``t_max`` and ``(k, 3)`` boxes for the per-ray
    form, or ``(m, 1, 3)`` vectors with ``(m, 1)`` intervals for a
    wavefront of ``m`` rays against the same node's children.  Both forms
    compute bitwise-identical entry/exit parameters per ray (the
    broadcast evaluates the same scalar expressions elementwise), which
    is what lets the batched tracer reproduce the scalar tracer's event
    stream byte for byte.

    Callers are expected to hoist ``np.errstate(invalid="ignore")``
    around traversal loops; NaNs from ``0 * inf`` slab degeneracies are
    ignored by the nan-reductions either way.
    """
    t1 = (los - origin) * inv_direction
    t2 = (his - origin) * inv_direction
    t_near = np.minimum(t1, t2)
    t_far = np.maximum(t1, t2)
    # fmax/fmin ignore NaN operands exactly like nanmax/nanmin (verified
    # bitwise) but skip the python-level wrapper, which dominates on the
    # small arrays this kernel sees.  All-NaN rows cannot occur: a ray
    # direction has at least one non-zero component.
    t_enter = np.maximum(np.fmax.reduce(t_near, axis=-1), t_min)
    t_exit = np.minimum(np.fmin.reduce(t_far, axis=-1), t_max)
    return t_enter <= t_exit, t_enter


def ray_aabb_intersect_batch(
    ray: Ray, los: np.ndarray, his: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Slab test of one ray against ``k`` boxes at once.

    Args:
        ray: the ray to test.
        los: ``(k, 3)`` array of box minimum corners.
        his: ``(k, 3)`` array of box maximum corners.

    Returns:
        ``(hit, t_enter)`` — a boolean mask of shape ``(k,)`` and the entry
        parameter for each box (meaningful only where ``hit`` is True).
    """
    with np.errstate(invalid="ignore"):
        return slab_test(
            ray.origin, ray.inv_direction, ray.t_min, ray.t_max, los, his
        )


def moeller_trumbore(
    origin: np.ndarray,
    d0: float,
    d1: float,
    d2: float,
    direction: np.ndarray,
    t_min: float,
    t_max: float,
    a: np.ndarray,
    e1: np.ndarray,
    e2: np.ndarray,
    e1f,
    e2f,
) -> Optional[float]:
    """Moeller-Trumbore core on precomputed edge vectors.

    ``e1`` / ``e2`` are ``b - a`` / ``c - a`` as float64 rows (fed to
    ``np.dot``); ``e1f`` / ``e2f`` are the same values as python-float
    triples (fed to the expanded cross products, which are bitwise
    identical to ``np.cross`` on IEEE doubles).  The four dot products
    stay on ``np.dot``: its reduction order is not reproducible by plain
    scalar multiply-adds, and the bit-exactness contract pins this kernel
    to the historical ``np.dot``-based results.
    """
    f0, f1, f2 = e2f
    pvec = np.array((d1 * f2 - d2 * f1, d2 * f0 - d0 * f2, d0 * f1 - d1 * f0))
    det = float(np.dot(e1, pvec))
    if abs(det) < 1e-12:
        return None
    inv_det = 1.0 / det
    tvec = origin - a
    u = float(np.dot(tvec, pvec)) * inv_det
    if u < 0.0 or u > 1.0:
        return None
    tv0, tv1, tv2 = tvec
    g0, g1, g2 = e1f
    qvec = np.array(
        (tv1 * g2 - tv2 * g1, tv2 * g0 - tv0 * g2, tv0 * g1 - tv1 * g0)
    )
    v = float(np.dot(direction, qvec)) * inv_det
    if v < 0.0 or u + v > 1.0:
        return None
    t = float(np.dot(e2, qvec)) * inv_det
    if t < t_min or t > t_max:
        return None
    return t


def ray_triangle_intersect(ray: Ray, tri: Triangle) -> Optional[float]:
    """Moeller-Trumbore test; returns hit parameter ``t`` or ``None``.

    Backface hits are reported (no culling), matching what an RT core's
    triangle unit does by default for closest-hit traversal.  Boxed-
    triangle convenience wrapper over :func:`moeller_trumbore`.
    """
    e1 = tri.b - tri.a
    e2 = tri.c - tri.a
    direction = ray.direction
    return moeller_trumbore(
        ray.origin,
        float(direction[0]),
        float(direction[1]),
        float(direction[2]),
        direction,
        ray.t_min,
        ray.t_max,
        tri.a,
        e1,
        e2,
        (float(e1[0]), float(e1[1]), float(e1[2])),
        (float(e2[0]), float(e2[1]), float(e2[2])),
    )
