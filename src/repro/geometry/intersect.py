"""Intersection kernels: slab ray/AABB and Moeller-Trumbore ray/triangle.

These are the two tests the paper's RT unit performs in hardware (its
ray-box and ray-triangle operation units, Fig. 2).  The batch AABB variant
tests one ray against the ``k`` child bounds of a wide BVH node in a single
numpy call, which is what keeps the functional tracer fast enough for the
paper's full workload sweep.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.geometry.aabb import AABB
from repro.geometry.ray import Ray
from repro.geometry.triangle import Triangle


def ray_aabb_intersect(ray: Ray, box: AABB) -> Optional[Tuple[float, float]]:
    """Slab test of one ray against one box.

    Returns the entry/exit parameters ``(t_enter, t_exit)`` clipped to the
    ray's interval, or ``None`` when there is no overlap.  A ray originating
    inside the box reports ``t_enter == ray.t_min``.
    """
    if box.is_empty():
        return None
    t1 = (box.lo - ray.origin) * ray.inv_direction
    t2 = (box.hi - ray.origin) * ray.inv_direction
    t_near = np.minimum(t1, t2)
    t_far = np.maximum(t1, t2)
    # NaNs arise when a zero direction component meets a coincident slab
    # (0 * inf); treating them as non-constraining matches robust slab tests.
    t_enter = float(np.nanmax(np.append(t_near, ray.t_min)))
    t_exit = float(np.nanmin(np.append(t_far, ray.t_max)))
    if t_enter > t_exit:
        return None
    return t_enter, t_exit


def ray_aabb_intersect_batch(
    ray: Ray, los: np.ndarray, his: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Slab test of one ray against ``k`` boxes at once.

    Args:
        ray: the ray to test.
        los: ``(k, 3)`` array of box minimum corners.
        his: ``(k, 3)`` array of box maximum corners.

    Returns:
        ``(hit, t_enter)`` — a boolean mask of shape ``(k,)`` and the entry
        parameter for each box (meaningful only where ``hit`` is True).
    """
    t1 = (los - ray.origin) * ray.inv_direction
    t2 = (his - ray.origin) * ray.inv_direction
    t_near = np.minimum(t1, t2)
    t_far = np.maximum(t1, t2)
    with np.errstate(invalid="ignore"):
        t_enter = np.maximum(np.nanmax(t_near, axis=1), ray.t_min)
        t_exit = np.minimum(np.nanmin(t_far, axis=1), ray.t_max)
    hit = t_enter <= t_exit
    return hit, t_enter


def ray_triangle_intersect(ray: Ray, tri: Triangle) -> Optional[float]:
    """Moeller-Trumbore test; returns hit parameter ``t`` or ``None``.

    Backface hits are reported (no culling), matching what an RT core's
    triangle unit does by default for closest-hit traversal.
    """
    edge1 = tri.b - tri.a
    edge2 = tri.c - tri.a
    pvec = np.cross(ray.direction, edge2)
    det = float(np.dot(edge1, pvec))
    if abs(det) < 1e-12:
        return None
    inv_det = 1.0 / det
    tvec = ray.origin - tri.a
    u = float(np.dot(tvec, pvec)) * inv_det
    if u < 0.0 or u > 1.0:
        return None
    qvec = np.cross(tvec, edge1)
    v = float(np.dot(ray.direction, qvec)) * inv_det
    if v < 0.0 or u + v > 1.0:
        return None
    t = float(np.dot(edge2, qvec)) * inv_det
    if t < ray.t_min or t > ray.t_max:
        return None
    return t
