"""Three-component vector helpers.

Vectors are plain ``numpy.ndarray`` objects of shape ``(3,)`` and dtype
``float64``.  Using bare arrays (rather than a wrapper class) keeps batched
geometry kernels free of boxing overhead; ``Vec3`` is exported as a type
alias for documentation purposes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError

#: Type alias used in signatures throughout the geometry layer.
Vec3 = np.ndarray


def vec3(x: float, y: float, z: float) -> Vec3:
    """Build a float64 3-vector from components."""
    return np.array([x, y, z], dtype=np.float64)


def dot(a: Vec3, b: Vec3) -> float:
    """Dot product of two 3-vectors."""
    return float(a[0] * b[0] + a[1] * b[1] + a[2] * b[2])


def cross(a: Vec3, b: Vec3) -> Vec3:
    """Cross product of two 3-vectors."""
    return vec3(
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    )


def length(a: Vec3) -> float:
    """Euclidean length of a 3-vector."""
    return float(np.sqrt(dot(a, a)))


def normalize(a: Vec3) -> Vec3:
    """Return ``a`` scaled to unit length.

    Raises:
        GeometryError: if ``a`` is (numerically) the zero vector.
    """
    norm = length(a)
    if norm < 1e-300:
        raise GeometryError("cannot normalize a zero-length vector")
    return a / norm


def lerp(a: Vec3, b: Vec3, t: float) -> Vec3:
    """Linear interpolation ``a + t * (b - a)``."""
    return a + t * (b - a)


def reflect(direction: Vec3, normal: Vec3) -> Vec3:
    """Reflect ``direction`` about a unit ``normal``."""
    return direction - 2.0 * dot(direction, normal) * normal
