"""Rays.

A ray is a half-line ``origin + t * direction`` for ``t`` in
``[t_min, t_max]``.  Precomputed reciprocal directions make the slab
ray/AABB test branch-free; zero direction components map to ``+/-inf``
reciprocals, which the slab test handles correctly via IEEE semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GeometryError
from repro.geometry.vec import Vec3, length

#: Default far plane for rays (effectively unbounded).
T_MAX_DEFAULT = 1e30


@dataclass
class Ray:
    """A parametric ray with a valid interval ``[t_min, t_max]``."""

    origin: Vec3
    direction: Vec3
    t_min: float = 1e-4
    t_max: float = T_MAX_DEFAULT
    inv_direction: Vec3 = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.origin = np.asarray(self.origin, dtype=np.float64)
        self.direction = np.asarray(self.direction, dtype=np.float64)
        if length(self.direction) < 1e-300:
            raise GeometryError("ray direction must be non-zero")
        if self.t_min > self.t_max:
            raise GeometryError(
                f"ray interval is empty: t_min={self.t_min} > t_max={self.t_max}"
            )
        with np.errstate(divide="ignore"):
            self.inv_direction = np.where(
                self.direction != 0.0, 1.0 / self.direction, np.inf
            )

    def at(self, t: float) -> Vec3:
        """Point on the ray at parameter ``t``."""
        return self.origin + t * self.direction
