"""Axis-aligned bounding boxes.

AABBs are the bounding volumes used by every BVH node (paper Fig. 1).  A box
is stored as two corner vectors ``lo`` and ``hi``.  An *empty* box has
``lo > hi`` in every axis and absorbs nothing when intersected, everything
when unioned — the standard identity element for bound accumulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.vec import Vec3, vec3

_INF = float("inf")


@dataclass
class AABB:
    """An axis-aligned box spanning ``[lo, hi]`` in each axis."""

    lo: Vec3 = field(default_factory=lambda: vec3(_INF, _INF, _INF))
    hi: Vec3 = field(default_factory=lambda: vec3(-_INF, -_INF, -_INF))

    @staticmethod
    def empty() -> "AABB":
        """The identity element for :func:`union`."""
        return AABB()

    @staticmethod
    def from_points(points: np.ndarray) -> "AABB":
        """Tight bound over an ``(n, 3)`` array of points."""
        pts = np.asarray(points, dtype=np.float64).reshape(-1, 3)
        if pts.shape[0] == 0:
            return AABB.empty()
        return AABB(lo=pts.min(axis=0), hi=pts.max(axis=0))

    def is_empty(self) -> bool:
        """True when the box contains no points at all."""
        return bool(np.any(self.lo > self.hi))

    def contains_point(self, point: Vec3) -> bool:
        """True when ``point`` lies inside or on the boundary."""
        return bool(np.all(point >= self.lo) and np.all(point <= self.hi))

    def contains_box(self, other: "AABB") -> bool:
        """True when ``other`` is fully inside this box (empty boxes fit)."""
        if other.is_empty():
            return True
        return bool(np.all(other.lo >= self.lo) and np.all(other.hi <= self.hi))

    def grown(self, point: Vec3) -> "AABB":
        """A new box extended to also cover ``point``."""
        return AABB(lo=np.minimum(self.lo, point), hi=np.maximum(self.hi, point))

    def centroid(self) -> Vec3:
        """Center point of the box (undefined for empty boxes)."""
        return 0.5 * (self.lo + self.hi)

    def extent(self) -> Vec3:
        """Per-axis side lengths; zero vector for empty boxes."""
        if self.is_empty():
            return vec3(0.0, 0.0, 0.0)
        return self.hi - self.lo

    def longest_axis(self) -> int:
        """Index (0/1/2) of the longest side."""
        return int(np.argmax(self.extent()))

    def overlaps(self, other: "AABB") -> bool:
        """True when the two boxes share at least one point."""
        if self.is_empty() or other.is_empty():
            return False
        return bool(np.all(self.lo <= other.hi) and np.all(other.lo <= self.hi))


def union(a: AABB, b: AABB) -> AABB:
    """Smallest box covering both ``a`` and ``b``."""
    return AABB(lo=np.minimum(a.lo, b.lo), hi=np.maximum(a.hi, b.hi))


def surface_area(box: AABB) -> float:
    """Surface area of the box; 0 for empty boxes (SAH cost convention)."""
    if box.is_empty():
        return 0.0
    ext = box.extent()
    return float(2.0 * (ext[0] * ext[1] + ext[1] * ext[2] + ext[2] * ext[0]))
