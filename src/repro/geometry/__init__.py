"""Geometric primitives and intersection kernels.

This subpackage is the lowest layer of the reproduction: 3-vectors, rays,
axis-aligned bounding boxes (AABBs), triangles, and the two intersection
tests every BVH traversal relies on — the slab ray/AABB test and the
Moeller-Trumbore ray/triangle test.  Everything is numpy-backed and supports
both scalar use (one ray, one box) and batched use (one ray against the
``k`` children of a wide BVH node at once).
"""

from repro.geometry.vec import (
    Vec3,
    cross,
    dot,
    normalize,
    vec3,
)
from repro.geometry.aabb import AABB, union, surface_area
from repro.geometry.ray import Ray
from repro.geometry.triangle import Triangle, triangle_aabb, triangle_centroid
from repro.geometry.intersect import (
    ray_aabb_intersect,
    ray_aabb_intersect_batch,
    ray_triangle_intersect,
)

__all__ = [
    "Vec3",
    "vec3",
    "dot",
    "cross",
    "normalize",
    "AABB",
    "union",
    "surface_area",
    "Ray",
    "Triangle",
    "triangle_aabb",
    "triangle_centroid",
    "ray_aabb_intersect",
    "ray_aabb_intersect_batch",
    "ray_triangle_intersect",
]
