"""Triangles — the only scene primitive, as in the paper's benchmarks."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.aabb import AABB
from repro.geometry.vec import Vec3, cross, length, normalize


@dataclass
class Triangle:
    """A triangle with vertices ``a``, ``b``, ``c`` and a primitive id.

    ``prim_id`` is the index of the triangle inside its scene; leaf BVH
    nodes refer to triangles by this id.
    """

    a: Vec3
    b: Vec3
    c: Vec3
    prim_id: int = 0

    def vertices(self) -> np.ndarray:
        """The three vertices stacked into a ``(3, 3)`` array."""
        return np.stack([self.a, self.b, self.c])

    def is_degenerate(self, eps: float = 1e-12) -> bool:
        """True when the triangle has (numerically) zero area."""
        return self.area() < eps

    def area(self) -> float:
        """Surface area of the triangle."""
        return 0.5 * length(cross(self.b - self.a, self.c - self.a))

    def normal(self) -> Vec3:
        """Unit geometric normal (right-handed winding ``a -> b -> c``)."""
        return normalize(cross(self.b - self.a, self.c - self.a))


def triangle_aabb(tri: Triangle) -> AABB:
    """Tight bounding box of a triangle."""
    return AABB.from_points(tri.vertices())


def triangle_centroid(tri: Triangle) -> Vec3:
    """Barycenter of a triangle, used as the BVH split key."""
    return (tri.a + tri.b + tri.c) / 3.0
