"""Command-line interface.

Installed as ``python -m repro``.  Commands:

``scenes``
    List the benchmark workloads with their BVH statistics.
``simulate``
    Trace one scene and time it under one configuration.
``compare``
    Trace one scene once and time it under several configurations; or,
    with ``--strategies``, run the traversal-strategy head-to-head
    engine across the whole workload suite.
``experiment``
    Regenerate one paper table/figure (or ``all``).  Sweeps run on a
    worker-process pool (``--jobs``) and are served from the persistent
    result store (``--no-cache`` / ``--cache-dir`` to control it).
``ablate``
    Design-space exploration over the SMS knobs.  ``ablate run``
    expands a declared knob space (named, or a JSON file of ``fixed``
    knobs plus ``ranges``) into a deterministic run matrix, executes it
    (process pool, or ``--service`` against a running ``repro serve``),
    and derives per-mechanism importance plus the IPC-vs-SRAM Pareto
    frontier; ``ablate report`` / ``ablate pareto`` re-render a saved
    run directory without re-simulating.
``overhead``
    Print the SMS hardware-overhead analysis (paper VI-C).
``cache``
    Inspect or clear the persistent result store.
``chaos``
    Run a fault-injection campaign.  ``--family guard`` (default)
    verifies the guard detects every simulation fault class;
    ``--family service`` verifies the serving layer survives shard
    crashes, hangs, corrupt payloads and floods bit-identically;
    ``--family all`` runs both.
``serve``
    Run the sharded simulation service: worker-process shards behind an
    HTTP/JSON API with admission control, failover and graceful
    degradation (see ``docs/architecture.md`` §12).
``bench``
    Run the pinned benchmark matrix (trace generation and timing
    simulation measured separately), write ``BENCH_<tag>.json``, and
    optionally gate against a committed baseline payload.
``lint``
    Run the simlint determinism/invariant static analysis over source
    trees; exit 0 clean, 1 on findings, 2 on unusable input.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.api import time_traces, trace_scene
from repro.core.overhead import sms_hardware_overhead
from repro.core.presets import named_config
from repro.errors import ReproError


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SMS shared-memory traversal stacks (ISPASS 2025) "
        "reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("scenes", help="list benchmark workloads")

    sim = sub.add_parser("simulate", help="simulate one scene/config pair")
    _add_workload_args(sim)
    sim.add_argument("--config", default="RB_8+SH_8+SK+RA",
                     help="configuration label, e.g. RB_8 or RB_8+SH_8+SK+RA")
    _add_guard_args(sim)
    _add_backend_arg(sim)

    cmp_cmd = sub.add_parser(
        "compare",
        help="compare configurations on one scene, or traversal "
        "strategies across the workload suite (--strategies)",
    )
    _add_workload_args(cmp_cmd)
    cmp_cmd.add_argument(
        "--configs",
        default="RB_8,RB_8+SH_8,RB_8+SH_8+SK+RA,RB_FULL",
        help="comma-separated configuration labels",
    )
    cmp_cmd.add_argument(
        "--strategies",
        default="",
        help="comma-separated traversal strategies (e.g. "
        "sms,stackless,reorder); selects the suite-wide head-to-head "
        "engine — --scene/--width/... are ignored in this mode",
    )
    cmp_cmd.add_argument(
        "--base-config", default="RB_8+SH_8+SK+RA",
        help="base configuration each strategy adapts (strategy mode)",
    )
    cmp_cmd.add_argument("--scale", type=float, default=1.0,
                         help="workload resolution scale (strategy mode)")
    cmp_cmd.add_argument("--suite-scenes", default="",
                         help="comma-separated scene subset for the "
                         "strategy engine (default: full suite)")
    _add_runtime_args(cmp_cmd)

    exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp.add_argument("name", help="experiment id (table1, fig13, ...) or 'all'")
    exp.add_argument("--scale", type=float, default=1.0,
                     help="workload resolution scale (default 1.0)")
    exp.add_argument("--scenes", default="",
                     help="comma-separated scene subset (default: full suite)")
    _add_runtime_args(exp)

    ablate = sub.add_parser(
        "ablate",
        help="design-space exploration / ablation over the SMS knobs",
    )
    ablate_sub = ablate.add_subparsers(dest="action", required=True)

    ablate_run = ablate_sub.add_parser(
        "run", help="expand a knob space, execute it, derive the report"
    )
    ablate_run.add_argument(
        "--space", default="mechanisms",
        help="declared space name or knob-space JSON file "
        "(default mechanisms; see --list-spaces)",
    )
    ablate_run.add_argument("--list-spaces", action="store_true",
                            help="list the declared spaces and exit")
    ablate_run.add_argument("--out", default=None,
                            help="run directory to write report.json into")
    ablate_run.add_argument("--scenes", default="",
                            help="comma-separated scene subset (overrides "
                            "the space's own scene list)")
    ablate_run.add_argument("--scale", type=float, default=1.0,
                            help="workload resolution scale (default 1.0)")
    ablate_run.add_argument("--guard", action="store_true",
                            help="run every cell under the integrity guard")
    ablate_run.add_argument("--service", default=None, metavar="URL",
                            help="execute on a running 'repro serve' "
                            "instance (http://host:port) instead of the "
                            "local worker pool")
    ablate_run.add_argument("--format", choices=("text", "json"),
                            default="text",
                            help="report format on stdout (default text)")
    _add_runtime_args(ablate_run)

    ablate_report = ablate_sub.add_parser(
        "report", help="re-render a saved ablation run directory"
    )
    ablate_report.add_argument("run_dir", help="directory written by "
                               "'repro ablate run --out'")
    ablate_report.add_argument("--format", choices=("text", "json"),
                               default="text",
                               help="report format (default text)")

    ablate_pareto = ablate_sub.add_parser(
        "pareto", help="print a saved run's IPC-vs-SRAM Pareto frontier"
    )
    ablate_pareto.add_argument("run_dir", help="directory written by "
                               "'repro ablate run --out'")
    ablate_pareto.add_argument("--format", choices=("text", "json"),
                               default="text",
                               help="frontier format (default text)")

    sub.add_parser("overhead", help="print the SMS hardware overhead analysis")

    cache_cmd = sub.add_parser("cache", help="inspect the persistent result store")
    cache_cmd.add_argument("--cache-dir", default=None,
                           help="result store directory (default "
                           "~/.cache/repro-sms or $REPRO_CACHE_DIR)")
    cache_cmd.add_argument("--clear", action="store_true",
                           help="delete every stored result")

    chaos = sub.add_parser(
        "chaos", help="run a fault-injection campaign (guard or service)"
    )
    chaos.add_argument("--family", choices=("guard", "service", "all"),
                       default="guard",
                       help="fault family: guard attacks the simulation "
                       "model, service attacks the serving layer "
                       "(default guard)")
    chaos.add_argument("--faults", default="",
                       help="comma-separated fault classes (default: all "
                       "in the selected family)")
    chaos.add_argument("--seed", type=int, default=0,
                       help="campaign seed (fault trigger points)")
    chaos.add_argument("--rays", type=int, default=128,
                       help="synthetic workload size (guard family)")

    serve = sub.add_parser(
        "serve", help="run the sharded simulation service (HTTP/JSON API)"
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8642,
                       help="bind port (default 8642; 0 = ephemeral)")
    serve.add_argument("--shards", type=int, default=2,
                       help="worker shard processes (default 2)")
    serve.add_argument("--queue-depth", type=int, default=16,
                       help="per-shard queue bound (default 16)")
    serve.add_argument("--rate", type=float, default=500.0,
                       help="admission rate, submissions/s (default 500)")
    serve.add_argument("--burst", type=int, default=128,
                       help="admission burst capacity (default 128)")
    serve.add_argument("--no-cache", action="store_true",
                       help="bypass the persistent result store")
    serve.add_argument("--cache-dir", default=None,
                       help="result store directory (default "
                       "~/.cache/repro-sms or $REPRO_CACHE_DIR)")

    bench = sub.add_parser(
        "bench", help="run the pinned benchmark matrix and gate regressions"
    )
    bench.add_argument("--tag", default="local",
                       help="payload tag (written to BENCH_<tag>.json)")
    bench.add_argument("--out", default=None,
                       help="output path (default BENCH_<tag>.json)")
    bench.add_argument("--compare", default=None,
                       help="baseline BENCH_*.json to gate against")
    bench.add_argument("--tolerance", type=float, default=None,
                       help="allowed calibrated slowdown (default 0.15)")
    bench.add_argument("--repeats", type=int, default=2,
                       help="repetitions per case; fastest wins (default 2)")

    lint = sub.add_parser(
        "lint", help="run the simlint static analysis over source trees"
    )
    lint.add_argument("paths", nargs="*", default=None,
                      help="files or directories to lint (default: src)")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text", help="report format (default text)")
    lint.add_argument("--out", default=None,
                      help="also write the report to this file")
    lint.add_argument("--config", default=None,
                      help="pyproject.toml to read [tool.simlint] from "
                      "(default: ./pyproject.toml)")
    lint.add_argument("--changed", action="store_true",
                      help="lint only files changed in the git working "
                      "tree (falls back to a full scan outside git)")
    lint.add_argument("--cache", default=None,
                      help="incremental analysis cache file (default: the "
                      "configured [tool.simlint] cache, if any)")
    lint.add_argument("--no-cache", action="store_true",
                      help="ignore any configured analysis cache")
    lint.add_argument("--baseline", default=None,
                      help="baseline file (default: the configured one)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="ignore the baseline; report every finding")
    lint.add_argument("--write-baseline", action="store_true",
                      help="grandfather all current findings into the "
                      "baseline file and exit 0")
    lint.add_argument("--show-baselined", action="store_true",
                      help="include baselined findings in text output")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog and exit")
    return parser


def _add_guard_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--guard", action="store_true",
                        help="enable the simulation integrity layer "
                        "(invariant checks + watchdog)")
    parser.add_argument("--max-cycles", type=int, default=None,
                        help="watchdog cycle budget (implies --guard)")


def _add_runtime_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for sweeps (default: one per "
                        "CPU; 1 = serial in-process)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the persistent result store")
    parser.add_argument("--cache-dir", default=None,
                        help="result store directory (default "
                        "~/.cache/repro-sms or $REPRO_CACHE_DIR)")
    parser.add_argument("--progress", action="store_true",
                        help="draw a live progress line on stderr")
    _add_backend_arg(parser)


def _add_backend_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--backend", choices=("stepped", "vector"),
                        default="stepped",
                        help="timing backend: the reference per-cycle loop "
                        "('stepped') or the plan-driven vectorized core "
                        "('vector', bit-identical and several times faster; "
                        "falls back to stepped for unsupported configs)")


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scene", default="CRNVL", help="workload name")
    parser.add_argument("--width", type=int, default=24)
    parser.add_argument("--height", type=int, default=24)
    parser.add_argument("--spp", type=int, default=1)
    parser.add_argument("--bounces", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)


def _cmd_scenes() -> int:
    from repro.bvh.api import build_bvh
    from repro.bvh.stats import compute_stats
    from repro.workloads.lumibench import SCENE_NAMES, load_scene, scene_recipe

    print(f"{'scene':<7} {'triangles':>10} {'BVH MB':>8} {'depth':>6}  paper")
    for name in SCENE_NAMES:
        scene = load_scene(name)
        stats = compute_stats(build_bvh(scene))
        recipe = scene_recipe(name)
        print(
            f"{name:<7} {stats.triangle_count:>10} {stats.megabytes:>8.2f} "
            f"{stats.max_depth:>6}  {recipe.paper_triangles} tris, "
            f"{recipe.paper_bvh_mb} MB"
        )
    return 0


def _trace(args) -> "tuple":
    from repro.workloads.lumibench import load_scene

    scene = load_scene(args.scene)
    workload = trace_scene(
        scene,
        width=args.width,
        height=args.height,
        spp=args.spp,
        max_bounces=args.bounces,
        seed=args.seed,
    )
    print(
        f"scene {scene.name}: {scene.triangle_count} triangles, "
        f"{workload.ray_count} rays, {workload.total_steps} node visits"
    )
    return scene, workload


def _cmd_simulate(args) -> int:
    scene, workload = _trace(args)
    guard = None
    if args.guard or args.max_cycles is not None:
        from repro.guard import GuardConfig

        guard = GuardConfig(max_cycles=args.max_cycles)
    result = time_traces(
        workload.all_traces, named_config(args.config), scene_name=scene.name,
        guard=guard, backend=args.backend,
    )
    counters = result.counters
    print(f"config   : {result.label}")
    if args.backend != "stepped" or result.backend != "stepped":
        note = (
            "" if result.backend == args.backend
            else f" (requested {args.backend}, fell back)"
        )
        print(f"backend  : {result.backend}{note}")
    if guard is not None:
        budget = (
            f", max_cycles={args.max_cycles}" if args.max_cycles else ""
        )
        print(f"guard    : invariants + watchdog{budget} (no violations)")
    print(f"IPC      : {result.ipc:.4f}  ({result.cycles} cycles)")
    print(f"off-chip : {result.offchip_accesses} DRAM transactions")
    print(
        f"stack ops: {counters.stack_global_ops} global, "
        f"{counters.stack_shared_ops} shared "
        f"(bank-conflict delay {counters.bank_conflict_delay_cycles} cycles)"
    )
    if counters.borrows or counters.flushes:
        print(f"realloc  : {counters.borrows} borrows, {counters.flushes} flushes")
    return 0


def _cmd_compare(args) -> int:
    if args.strategies.strip():
        return _cmd_compare_strategies(args)
    scene, workload = _trace(args)
    labels = [label.strip() for label in args.configs.split(",") if label.strip()]
    results = [
        time_traces(workload.all_traces, named_config(label),
                    scene_name=scene.name, backend=args.backend)
        for label in labels
    ]
    base = results[0]
    print(
        f"\n{'config':<20} {'backend':>8} {'IPC':>8} "
        f"{'vs ' + base.label:>10} {'off-chip':>9}"
    )
    for result in results:
        print(
            f"{result.label:<20} {result.backend:>8} {result.ipc:>8.4f} "
            f"{result.ipc / base.ipc:>10.3f} {result.offchip_accesses:>9}"
        )
    return 0


def _cmd_compare_strategies(args) -> int:
    """The suite-wide strategy head-to-head (``compare --strategies``)."""
    from repro.experiments import compare_strategies
    from repro.runtime.cache import runtime_cache
    from repro.workloads.params import DEFAULT_PARAMS

    strategies = [s.strip() for s in args.strategies.split(",") if s.strip()]
    params = (
        DEFAULT_PARAMS if args.scale == 1.0 else DEFAULT_PARAMS.scaled(args.scale)
    )
    scene_names = (
        [s.strip() for s in args.suite_scenes.split(",") if s.strip()] or None
    )
    cache = runtime_cache(
        params=params,
        scene_names=scene_names,
        jobs=args.jobs,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        progress=args.progress,
        backend=args.backend,
    )
    result = compare_strategies.run(
        cache,
        strategies=strategies,
        base_config=named_config(args.base_config),
    )
    print(compare_strategies.render(result))
    if cache.metrics.jobs_total:
        print(f"[repro] {cache.metrics.summary()}", file=sys.stderr)
    return 0


def _cmd_experiment(args) -> int:
    from repro.experiments.runner import run_all, run_experiment
    from repro.runtime.cache import runtime_cache
    from repro.workloads.params import DEFAULT_PARAMS

    params = (
        DEFAULT_PARAMS if args.scale == 1.0 else DEFAULT_PARAMS.scaled(args.scale)
    )
    scene_names = (
        [s.strip() for s in args.scenes.split(",") if s.strip()] or None
    )
    cache = runtime_cache(
        params=params,
        scene_names=scene_names,
        jobs=args.jobs,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        progress=args.progress,
        backend=args.backend,
    )
    if args.name.lower() == "all":
        for name, text in run_all(cache).items():
            print(f"\n===== {name} =====")
            print(text)
    else:
        print(run_experiment(args.name, cache))
    if cache.metrics.jobs_total:
        print(f"[repro] {cache.metrics.summary()}", file=sys.stderr)
    return 0


def _cmd_ablate(args) -> int:
    """``repro ablate run|report|pareto``."""
    if args.action == "run":
        return _cmd_ablate_run(args)
    import json

    from repro.ablation import load_report, render_json, render_pareto, render_text

    report = load_report(args.run_dir)
    if args.action == "pareto":
        if args.format == "json":
            print(json.dumps([point.to_dict() for point in report.pareto],
                             sort_keys=True, indent=2))
        else:
            print(render_pareto(report))
        return 0
    print(render_json(report) if args.format == "json" else render_text(report))
    return 0


def _cmd_ablate_run(args) -> int:
    """Expand, execute and report one knob space."""
    from dataclasses import replace

    from repro.ablation import (
        execute_matrix,
        generate_matrix,
        render_json,
        render_text,
        resolve_space,
        space_catalog,
        write_report,
    )
    from repro.workloads.params import DEFAULT_PARAMS

    if args.list_spaces:
        catalog = space_catalog()
        for name in sorted(catalog):
            print(f"{name:<12} {catalog[name]}")
        return 0
    space = resolve_space(args.space)
    scenes = [s.strip() for s in args.scenes.split(",") if s.strip()]
    if scenes:
        space = replace(space, scenes=tuple(scenes))
    params = (
        DEFAULT_PARAMS if args.scale == 1.0 else DEFAULT_PARAMS.scaled(args.scale)
    )
    matrix = generate_matrix(space)
    cache = None
    if args.service:
        report = execute_matrix(
            matrix, params=params, guard=args.guard, service=args.service,
            backend=args.backend,
        )
    else:
        from repro.runtime.cache import runtime_cache

        cache = runtime_cache(
            params=params,
            jobs=args.jobs,
            use_cache=not args.no_cache,
            cache_dir=args.cache_dir,
            progress=args.progress,
            backend=args.backend,
        )
        report = execute_matrix(
            matrix, params=params, guard=args.guard, cache=cache,
            backend=args.backend,
        )
    print(render_json(report) if args.format == "json" else render_text(report))
    if args.out:
        path = write_report(report, args.out)
        print(f"report written to {path}", file=sys.stderr)
    if cache is not None and cache.metrics.jobs_total:
        print(f"[repro] {cache.metrics.summary()}", file=sys.stderr)
    return 0


def _cmd_cache(args) -> int:
    from repro.runtime.store import ResultStore

    store = ResultStore(args.cache_dir)
    if args.clear:
        removed = store.clear()
        print(f"cleared {removed} stored results from {store.root}")
        return 0
    count = len(store)
    failures = sum(1 for _ in store.failures())
    print(f"store    : {store.root}")
    print(f"entries  : {count}")
    print(f"disk     : {store.size_bytes() / 1024:.1f} KB")
    if failures:
        print(f"failures : {failures} recorded guard violations "
              f"(see {store.root / 'failures'})")
    return 0


def _cmd_chaos(args) -> int:
    from repro.guard import fault_families

    families = (
        ("guard", "service") if args.family == "all" else (args.family,)
    )
    known = fault_families()
    kinds = [k.strip() for k in args.faults.split(",") if k.strip()] or None
    if kinds:
        allowed = {
            kind for family in families for kind in known[family]
        }
        unknown = sorted(set(kinds) - allowed)
        if unknown:
            print(
                f"error: unknown fault class(es) {', '.join(unknown)}; "
                f"choose from {', '.join(sorted(allowed))}",
                file=sys.stderr,
            )
            return 2
    failed = 0
    for family in families:
        selected = (
            [kind for kind in kinds if kind in known[family]]
            if kinds else None
        )
        if kinds and not selected:
            continue
        if len(families) > 1:
            print(f"===== {family} faults =====")
        if family == "guard":
            from repro.guard import run_chaos_campaign

            report = run_chaos_campaign(
                kinds=selected, seed=args.seed, rays=args.rays
            )
            print(report.summary())
            failed += 0 if report.all_detected else 1
        else:
            from repro.service import run_service_chaos_campaign

            service_report = run_service_chaos_campaign(
                kinds=selected, seed=args.seed
            )
            print(service_report.summary())
            failed += 0 if service_report.all_passed else 1
    return 1 if failed else 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.runtime.store import ResultStore
    from repro.service import ServiceConfig, ServiceHTTPServer, SimulationService

    config = ServiceConfig(
        shards=args.shards,
        queue_depth=args.queue_depth,
        rate=args.rate,
        burst=args.burst,
    )
    store = None if args.no_cache else ResultStore(args.cache_dir)

    async def _serve() -> None:
        async with SimulationService(config, store=store) as service:
            server = ServiceHTTPServer(service, args.host, args.port)
            await server.start()
            print(f"repro serve: {config.shards} shard(s) on "
                  f"http://{server.host}:{server.port}")
            if store is not None:
                print(f"result store: {store.root}")
            print("endpoints: POST /submit, GET /status|/result|/stream"
                  "/<ticket>, /healthz, /metrics")
            try:
                await server.serve_forever()
            finally:
                await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("repro serve: stopped")
    return 0


def _cmd_bench(args) -> int:
    from repro.perf import (
        compare_benchmarks,
        format_comparison,
        format_payload,
        load_payload,
        run_benchmarks,
        save_payload,
    )
    from repro.perf.bench import DEFAULT_TOLERANCE

    payload = run_benchmarks(
        args.tag, repeats=args.repeats,
        log=lambda message: print(message, file=sys.stderr),
    )
    out = args.out or f"BENCH_{args.tag}.json"
    save_payload(payload, out)
    print(format_payload(payload))
    print(f"written  : {out}")
    if args.compare is None:
        return 0
    tolerance = (
        args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
    )
    baseline = load_payload(args.compare)
    regressions = compare_benchmarks(payload, baseline, tolerance=tolerance)
    print(format_comparison(payload, baseline, regressions, tolerance))
    return 1 if regressions else 0


def _cmd_lint(args) -> int:
    from pathlib import Path

    from repro.simlint import (
        AnalysisCache,
        all_rules,
        changed_python_files,
        lint_paths,
        load_baseline,
        load_config,
        render_json,
        render_sarif,
        render_text,
        write_baseline,
    )

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  [{rule.category}/{rule.severity}] {rule.title}")
            print(f"       {rule.rationale}")
        return 0
    config = load_config(args.config)
    paths = args.paths or ["src"]
    baseline_path = args.baseline or config.baseline_path
    baseline = None
    if baseline_path and not args.no_baseline and not args.write_baseline:
        baseline = load_baseline(baseline_path)
    files = None
    if args.changed:
        files = changed_python_files(paths, config)
        if files is None:
            print("lint --changed: not a git checkout, linting everything",
                  file=sys.stderr)
    cache = None
    if not args.no_cache:
        cache_path = Path(args.cache) if args.cache else config.cache_path
        if cache_path is not None:
            cache = AnalysisCache.load(cache_path, config)
    report = lint_paths(paths, config=config, baseline=baseline,
                        cache=cache, files=files)
    if args.write_baseline:
        if baseline_path is None:
            print("error: no baseline path configured or given",
                  file=sys.stderr)
            return 2
        write_baseline(baseline_path, report.findings)
        print(f"baselined {len(report.findings)} finding(s) into "
              f"{baseline_path}")
        return 0
    if args.format == "json":
        text = render_json(report)
    elif args.format == "sarif":
        text = render_sarif(report)
    else:
        text = render_text(report, show_baselined=args.show_baselined)
    print(text)
    if args.out:
        Path(args.out).write_text(text + "\n")
        print(f"report written to {args.out}", file=sys.stderr)
    return report.exit_code


def _cmd_overhead() -> int:
    print(sms_hardware_overhead().summary())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "scenes":
            return _cmd_scenes()
        if args.command == "simulate":
            return _cmd_simulate(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "experiment":
            return _cmd_experiment(args)
        if args.command == "ablate":
            return _cmd_ablate(args)
        if args.command == "overhead":
            return _cmd_overhead()
        if args.command == "cache":
            return _cmd_cache(args)
        if args.command == "chaos":
            return _cmd_chaos(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "lint":
            return _cmd_lint(args)
        parser.error(f"unknown command {args.command!r}")
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
