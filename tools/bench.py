#!/usr/bin/env python
"""Benchmark trajectory harness — thin wrapper over ``repro bench``.

Run from the repo root::

    PYTHONPATH=src python tools/bench.py --tag pr --compare BENCH_baseline.json

Measures the pinned reference matrix (``repro.perf.workloads``), writes
``BENCH_<tag>.json``, and exits non-zero when the regression gate fails.
Identical to ``python -m repro bench``; this entry point exists so CI and
developers can run the harness without installing the package.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cli import main  # noqa: E402


if __name__ == "__main__":
    sys.exit(main(["bench", *sys.argv[1:]]))
