"""Calibration sweep: compare model ratios against the paper's targets.

Not part of the library — a development tool kept in the repo root for
reproducibility of the calibration recorded in EXPERIMENTS.md.
"""

# Operator-facing sweep: stdout IS the interface (the sweep table is the
# deliverable), and the elapsed-time reads measure the operator's wait,
# never simulator state.
# simlint: disable-file=SL402
# simlint: disable-file=SL101

import itertools
import sys
import time

from repro import named_config, trace_scene, time_traces
from repro.scene import Scene, scatter_mesh

KB = 1024

# Paper targets: normalized IPC vs RB_8 (Figs 6a, 8, 13, 15a) and
# normalized off-chip accesses (Fig 15b).
IPC_TARGETS = {
    "RB_2": 0.717,
    "RB_4": 0.816,
    "RB_16": 1.199,
    "RB_32": 1.252,
    "RB_FULL": 1.253,
    "RB_8+SH_4": 1.110,
    "RB_8+SH_8": 1.151,
    "RB_8+SH_8+SK": 1.194,
    "RB_8+SH_8+SK+RA": 1.232,
    "RB_8+SH_16": 1.212,
    "RB_2+SH_8+SK+RA": 1.114,
}
OFFCHIP_TARGETS = {"RB_2": 1.623, "RB_2+SH_8+SK+RA": 0.831}


def evaluate(traces, **overrides):
    base = time_traces(traces, named_config("RB_8", **overrides), scene_name="cal")
    rows = {}
    err = 0.0
    for name, target in IPC_TARGETS.items():
        r = time_traces(traces, named_config(name, **overrides), scene_name="cal")
        rel = r.ipc / base.ipc
        reloff = r.offchip_accesses / base.offchip_accesses
        rows[name] = (rel, reloff)
        err += (rel - target) ** 2
        if name in OFFCHIP_TARGETS:
            err += 0.25 * (reloff - OFFCHIP_TARGETS[name]) ** 2
    return err, rows


def main():
    scene = Scene(
        "cal",
        scatter_mesh(100000, clusters=32, triangle_size=0.5, bounds_size=12.0, seed=2),
    )
    t0 = time.time()
    wl = trace_scene(scene, width=32, height=32, max_bounces=3)
    print(f"rays={wl.ray_count} steps={wl.total_steps} trace={time.time()-t0:.0f}s")
    traces = wl.all_traces

    grid = {
        "l2_bytes": [256 * KB],
        "shader_pollution_lines": [48, 96],
        "dram_service_cycles": [4, 8, 16],
        "l1_port_cycles": [2, 4],
    }
    best = None
    for values in itertools.product(*grid.values()):
        overrides = dict(zip(grid.keys(), values))
        err, rows = evaluate(traces, **overrides)
        print(f"err={err:7.4f}  {overrides}")
        for name, (rel, reloff) in rows.items():
            print(
                f"    {name:18s} rel={rel:5.3f} (target {IPC_TARGETS[name]:5.3f})"
                f"  reloff={reloff:5.2f}"
            )
        if best is None or err < best[0]:
            best = (err, overrides)
    print("BEST:", best)


if __name__ == "__main__":
    sys.exit(main())
