"""Fig. 4 — stack depth summary per workload.

Paper shape: average/median depths of 4-5, maxima around 30.
"""

from benchmarks.conftest import report
from repro.experiments import fig4_stack_depths as fig4


def test_fig4(benchmark, cache):
    result = benchmark.pedantic(fig4.run, args=(cache,), rounds=1, iterations=1)
    report("Fig. 4: traversal stack depths", fig4.render(result))
    assert 3.0 <= result.overall.avg_depth <= 7.0
    assert 3.0 <= result.overall.median_depth <= 7.0
    assert 20 <= result.overall.max_depth <= 45
    # The deepest scenes must be the heavyweights, as in the paper.
    deepest = max(result.per_scene, key=lambda s: result.per_scene[s].max_depth)
    assert deepest in ("ROBOT", "CAR", "PARK", "PARTY")
