"""Fig. 8 — SH stack size configurations.

Paper shape: SH_4 < SH_8 < SH_16 < FULL, with SH_8 already capturing
most of the benefit (the basis for the proposed 56KB/8KB split).
"""

from benchmarks.conftest import report
from repro.experiments import fig8_sh_configs as fig8


def test_fig8(benchmark, cache):
    result = benchmark.pedantic(fig8.run, args=(cache,), rounds=1, iterations=1)
    report("Fig. 8: L1D/shared-memory configurations", fig8.render(result))
    means = result.means
    assert 1.0 < means["RB_8+SH_4"] < means["RB_8+SH_16"] <= means["RB_FULL"] + 0.01
    assert means["RB_8+SH_8"] >= means["RB_8+SH_4"]
    # SH_8 captures the majority of the FULL-stack headroom.
    headroom = means["RB_FULL"] - 1.0
    assert means["RB_8+SH_8"] - 1.0 >= 0.5 * headroom
    # The carve-out arithmetic the figure rests on.
    assert result.shared_memory_bytes["RB_8+SH_8"] == 8 * 1024
    assert result.shared_memory_bytes["RB_8+SH_16"] == 16 * 1024
