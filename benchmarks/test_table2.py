"""Table II — benchmark scenes and BVH footprints."""

from benchmarks.conftest import report
from repro.experiments import table2


def test_table2(benchmark, cache):
    result = benchmark.pedantic(table2.run, args=(cache,), rounds=1, iterations=1)
    report("Table II: benchmark scenes", table2.render(result))
    assert len(result.stats) == 16
    # ROBOT is the largest stand-in, SHIP among the smallest — as in the paper.
    assert result.stats["ROBOT"].triangle_count == max(
        s.triangle_count for s in result.stats.values()
    )
    assert result.stats["SHIP"].triangle_count < result.stats["PARTY"].triangle_count
