"""Fig. 10 — per-thread stack depths over time (PARTY).

Paper shape: threads finish at very different times and need very
different peak depths — the imbalance motivating intra-warp reallocation.
"""

from benchmarks.conftest import report
from repro.experiments import fig10_thread_depths as fig10


def test_fig10(benchmark, cache):
    result = benchmark.pedantic(
        fig10.run, args=(cache,), kwargs={"scene": "PARTY", "warps": 2},
        rounds=1, iterations=1,
    )
    report("Fig. 10: per-thread stack depth (PARTY)", fig10.render(result))
    assert len(result.warp_series) == 2
    # Strong imbalance: the shortest lane does < 60% of the longest's
    # accesses, and peak depths vary at least 2x.
    assert result.finish_spread < 0.6
    assert result.peak_spread < 0.5
