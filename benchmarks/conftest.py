"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables/figures at the full
16-scene suite and prints the rows/series the paper reports.  The
expensive functional traces are shared session-wide, so each scene is
path-traced exactly once per benchmark session.

Set ``REPRO_BENCH_SCALE`` (e.g. ``0.5``) to shrink the workload
resolution for quick smoke runs; ``1.0`` (default) is the scale used for
the numbers recorded in EXPERIMENTS.md.
"""

import os
import sys

import pytest

from repro.experiments.common import WorkloadCache
from repro.workloads.params import DEFAULT_PARAMS


def _scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def cache() -> WorkloadCache:
    """Session-wide workload cache at the configured benchmark scale."""
    scale = _scale()
    params = DEFAULT_PARAMS if scale == 1.0 else DEFAULT_PARAMS.scaled(scale)
    return WorkloadCache(params=params)


_CAPTURE_MANAGER = [None]


def pytest_configure(config):
    _CAPTURE_MANAGER[0] = config.pluginmanager.getplugin("capturemanager")


def report(title: str, body: str) -> None:
    """Print a figure/table report in a uniform, grep-friendly block.

    Capture is suspended around the print so the regenerated tables
    always reach the terminal / tee'd log — which is the point of the
    benchmark harness.
    """
    manager = _CAPTURE_MANAGER[0]
    if manager is not None:
        with manager.global_and_fixture_disabled():
            _emit(title, body)
    else:
        _emit(title, body)


def _emit(title: str, body: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
    print(body)
    sys.stdout.flush()
