"""Table I — baseline GPU parameters."""

from benchmarks.conftest import report
from repro.experiments import table1


def test_table1(benchmark):
    result = benchmark.pedantic(table1.run, rounds=1, iterations=1)
    report("Table I: baseline GPU parameters", table1.render(result))
    assert result.paper.num_sms == 8
    assert result.paper.l2_bytes == 3 * 1024 * 1024
