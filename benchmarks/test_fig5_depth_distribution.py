"""Fig. 5 — stack depth distribution.

Paper shape: ~81% of steps need 1-8 entries, ~17% need 9-16, ~2% more.
"""

from benchmarks.conftest import report
from repro.experiments import fig5_depth_distribution as fig5


def test_fig5(benchmark, cache):
    result = benchmark.pedantic(fig5.run, args=(cache,), rounds=1, iterations=1)
    report("Fig. 5: stack depth distribution", fig5.render(result))
    low, mid, high = result.fractions
    assert 0.70 <= low <= 0.92
    assert 0.07 <= mid <= 0.25
    assert high <= 0.06
    assert low > mid > high
