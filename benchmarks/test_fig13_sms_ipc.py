"""Fig. 13 — the headline result.

Paper shape: +SH_8 ~ +15%, +SK adds a little, +RA brings SMS within a
couple of points of the impractical RB_FULL (+25.3%); complex scenes
(ROBOT, PARK) and SHIP gain most, REF/BATH least.
"""

from benchmarks.conftest import report
from repro.experiments import fig13_sms_ipc as fig13


def test_fig13(benchmark, cache):
    result = benchmark.pedantic(fig13.run, args=(cache,), rounds=1, iterations=1)
    report("Fig. 13: SMS IPC improvements", fig13.render(result))
    means = result.means
    assert means["RB_8+SH_8"] > 1.05
    assert means["RB_8+SH_8+SK"] >= means["RB_8+SH_8"] - 0.005
    assert means["RB_8+SH_8+SK+RA"] >= means["RB_8+SH_8+SK"]
    # SMS lands close to the full-stack upper bound (the key claim).
    gap = means["RB_FULL"] - means["RB_8+SH_8+SK+RA"]
    assert gap <= 0.5 * (means["RB_FULL"] - 1.0)
    # Scene ordering: heavyweights gain more than the simple scenes.
    sms = {s: v["RB_8+SH_8+SK+RA"] for s, v in result.per_scene.items()}
    heavy_gain = (sms["ROBOT"] + sms["CAR"]) / 2
    light_gain = (sms["REF"] + sms["BATH"]) / 2
    assert heavy_gain > light_gain
