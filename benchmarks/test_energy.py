"""Energy study — the paper's power motivation, quantified.

Not a paper figure; applies a McPAT-style per-event energy model to the
Fig. 13 ladder.  Expected shape: SMS cuts total energy (it removes the
DRAM-resident spill traffic and shortens runtime) and drives the stack's
share of energy toward the full-stack floor.
"""

from benchmarks.conftest import report
from repro.experiments import energy_study


def test_energy(benchmark, cache):
    result = benchmark.pedantic(
        energy_study.run, args=(cache,), rounds=1, iterations=1
    )
    report("Energy study (extension)", energy_study.render(result))
    total = result.total_energy
    assert total["RB_8+SH_8+SK+RA"] < 1.0
    assert total["RB_FULL"] <= total["RB_8"]
    share = result.stack_energy_share
    assert share["RB_8+SH_8+SK+RA"] < share["RB_8"]


def test_bvh_width(benchmark):
    from repro.experiments.ablations import bvh_width_study
    from repro.experiments.report import format_table

    result = benchmark.pedantic(
        bvh_width_study,
        kwargs={"scene_names": ("CRNVL", "PARTY", "SHIP"), "widths": (2, 4, 6, 8)},
        rounds=1, iterations=1,
    )
    rows = [
        (f"BVH{w}", f"{result.avg_depth[w]:.1f}", result.max_depth[w],
         f"{result.sms_gain[w]:.3f}")
        for w in sorted(result.avg_depth)
    ]
    report(
        "Ablation: BVH branching factor vs stack pressure (extension)",
        format_table(
            ["width", "avg depth", "max depth", "SMS gain"], rows
        ),
    )
    # Wider BVHs push more siblings per visit -> deeper stacks -> more
    # benefit from the SMS secondary stack.
    assert result.avg_depth[8] > result.avg_depth[2]
    assert result.sms_gain[8] > result.sms_gain[2]
