"""Fig. 14 — bank-conflict delay cycles, with/without skewed access.

Paper shape: skewing reduces the conflict delay by ~27% on average.
"""

from benchmarks.conftest import report
from repro.experiments import fig14_skewed as fig14


def test_fig14(benchmark, cache):
    result = benchmark.pedantic(fig14.run, args=(cache,), rounds=1, iterations=1)
    report("Fig. 14: skewed bank access", fig14.render(result))
    assert result.reduction > 0.05
    # Skewing must help (or at worst tie) on the large majority of scenes.
    improved = sum(
        1
        for scene, before in result.delay_no_skew.items()
        if result.delay_skew[scene] <= before
    )
    assert improved >= 0.7 * len(result.delay_no_skew)
