"""Ablations beyond the paper's figures (DESIGN.md section 7).

Probes the constants the paper fixes by heuristic (borrow limit 4,
flush limit 3), the skew-scaling claim of section V-A, the spill
cacheability regime, and the stackless-traversal overhead of related
work (section VIII-A).
"""

from benchmarks.conftest import report
from repro.experiments import ablations
from repro.experiments.report import format_table


def test_borrow_limit(benchmark, cache):
    result = benchmark.pedantic(
        ablations.borrow_limit_sweep, args=(cache,), rounds=1, iterations=1
    )
    report(
        "Ablation: intra-warp borrow limit (paper fixes 4)",
        ablations.render_sweep(result, "IPC vs max concurrent borrows"),
    )
    means = result.means
    # Reallocation helps, and the paper's choice of 4 captures nearly all
    # of the benefit (8 adds little).
    assert means["borrows=1"] >= means["borrows=0"] - 0.005
    assert means["borrows=4"] >= means["borrows=1"] - 0.005
    assert abs(means["borrows=8"] - means["borrows=4"]) < 0.02


def test_flush_limit(benchmark, cache):
    result = benchmark.pedantic(
        ablations.flush_limit_sweep, args=(cache,), rounds=1, iterations=1
    )
    report(
        "Ablation: consecutive flush limit (paper fixes 3)",
        ablations.render_sweep(result, "IPC vs flush limit"),
    )
    values = list(result.means.values())
    assert max(values) - min(values) < 0.05  # flushes are rare by design


def test_skew_scaling(benchmark, cache):
    reductions = benchmark.pedantic(
        ablations.skew_scaling, args=(cache,), rounds=1, iterations=1
    )
    rows = [(label, f"{value:+.1%}") for label, value in reductions.items()]
    report(
        "Ablation: skewed-access delay reduction across SH sizes "
        "(paper V-A scalability claim)",
        format_table(["SH size", "conflict-delay reduction"], rows),
    )
    # Skewing reduces conflict delay at every size.
    assert all(value > 0.0 for value in reductions.values())


def test_spill_policy(benchmark, cache):
    means = benchmark.pedantic(
        ablations.spill_policy_study, args=(cache,), rounds=1, iterations=1
    )
    rows = [(policy, value) for policy, value in means.items()]
    report(
        "Ablation: spill cacheability regime (DESIGN.md substitution)",
        format_table(["spill policy", "baseline IPC (norm to uncached)"], rows),
    )
    assert means["l1"] >= means["l2"] >= means["uncached"] - 0.01


def test_warp_occupancy(benchmark, cache):
    result = benchmark.pedantic(
        ablations.warp_occupancy_sweep, args=(cache,), rounds=1, iterations=1
    )
    report(
        "Ablation: resident warps per RT unit (Table I fixes 4)",
        ablations.render_sweep(result, "IPC vs warp slots (norm to 4)"),
    )
    means = result.means
    # Removing latency hiding costs performance; extra slots beyond the
    # workload's occupancy add nothing.  At reduced REPRO_BENCH_SCALE the
    # per-SM warp count can drop to 1, flattening the sweep, so the strict
    # inequality only applies at full scale.
    import os

    if float(os.environ.get("REPRO_BENCH_SCALE", "1.0")) >= 1.0:
        assert means["warps=1"] < means["warps=4"]
    else:
        assert means["warps=1"] <= means["warps=4"] + 1e-9
    assert abs(means["warps=8"] - means["warps=4"]) < 0.02


def test_warp_formation(benchmark):
    from repro.experiments.ablations import warp_formation_study
    from repro.experiments.report import format_table

    result = benchmark.pedantic(
        warp_formation_study, rounds=1, iterations=1
    )
    rows = [
        (scene, result.fetch_lines_linear[scene],
         result.fetch_lines_tiled[scene],
         f"{result.ipc_gain[scene]:.3f}")
        for scene in result.ipc_gain
    ]
    report(
        "Ablation: warp formation — linear vs 8x4 tiled (extension)",
        format_table(
            ["scene", "fetch lines (linear)", "fetch lines (tiled)",
             "tiled IPC / linear"], rows,
        )
        + "\n\nTiling coalesces primary fetches slightly but concentrates "
        "heavy tiles into the same warps/SMs, hurting load balance at "
        "this workload's warp counts — coherence is not free.",
    )
    # Coalescing direction: tiled warps touch no more lines than linear.
    for scene in result.ipc_gain:
        assert (
            result.fetch_lines_tiled[scene]
            <= result.fetch_lines_linear[scene] * 1.02
        )


def test_packet_traversal(benchmark):
    from repro.experiments.ablations import packet_study
    from repro.experiments.report import format_table

    result = benchmark.pedantic(packet_study, rounds=1, iterations=1)
    rows = [
        (label, f"{result.stack_push_ratio[label]:.3f}",
         f"{result.visit_ratio[label]:.3f}")
        for label in result.stack_push_ratio
    ]
    report(
        "Ablation: packet traversal with a group-local stack (section VIII-B)",
        format_table(
            ["wave", "stack pushes vs per-ray", "node visits vs per-ray"], rows
        )
        + "\n\nShared stacks amortize best on coherent primaries; incoherent "
        "bounce rays lose most of the benefit — the paper's argument for "
        "per-ray stacks plus SMS instead.",
    )
    # Coherent rays amortize the shared stack better than incoherent ones.
    assert result.stack_push_ratio["primary"] < result.stack_push_ratio["bounce"]
    assert result.visit_ratio["primary"] < result.visit_ratio["bounce"]


def test_stackless_overhead(benchmark, cache):
    result = benchmark.pedantic(
        ablations.stackless_comparison, args=(cache,), rounds=1, iterations=1
    )
    rows = [
        (scene, f"{result.overhead[scene]:.2f}x",
         f"{result.restarts_per_ray[scene]:.1f}")
        for scene in result.overhead
    ]
    report(
        "Ablation: stackless restart-trail visit overhead (section VIII-A)",
        format_table(["scene", "visits vs DFS", "restarts/ray"], rows),
    )
    # Across the suite, stackless traversal costs extra node visits on
    # average — the overhead SMS avoids by keeping a real stack.
    mean_overhead = sum(result.overhead.values()) / len(result.overhead)
    assert mean_overhead > 1.2


def test_inter_warp_realloc(benchmark, cache):
    result = benchmark.pedantic(
        ablations.inter_warp_study, args=(cache,), rounds=1, iterations=1
    )
    report(
        "Ablation: inter-warp reallocation — the design the paper rejects "
        "(section V-B)",
        ablations.render_sweep(result, "IPC, intra vs inter-warp borrowing"),
    )
    means = result.means
    gain_at_design_point = (
        means["RB_8+SH_8+SK+RA+IW"] - means["RB_8+SH_8+SK+RA"]
    )
    gain_when_starved = (
        means["RB_2+SH_2+SK+RA+IW"] - means["RB_2+SH_2+SK+RA"]
    )
    # At the paper's RB_8+SH_8 design point, cross-warp borrowing buys
    # little (supporting the intra-warp choice); only under-provisioned
    # stacks benefit meaningfully.
    assert gain_at_design_point >= -0.01
    assert gain_at_design_point < 0.05
    assert gain_when_starved > gain_at_design_point


def test_size_consistency(benchmark):
    from repro.experiments.ablations import size_consistency_study
    from repro.experiments.report import format_table

    result = benchmark.pedantic(size_consistency_study, rounds=1, iterations=1)
    labels = list(result.speedups)
    scenes = list(next(iter(result.speedups.values())))
    rows = [
        [scene] + [f"{result.speedups[label][scene]:.3f}" for label in labels]
        for scene in scenes
    ]
    report(
        "Ablation: SMS speedup vs workload size (paper VII-A claim)",
        format_table(["scene"] + labels, rows)
        + "\n\nThe paper's consistency claim holds once the workload "
        "saturates the 8-SM machine; below ~2 warps/SM (16x16 here) the "
        "stack bottleneck fades and gains shrink — scale runs accordingly.",
    )
    # SMS never loses at any size, and gains do not shrink as the
    # workload grows toward machine saturation.
    for label in labels:
        for scene in scenes:
            assert result.speedups[label][scene] >= 0.99
    small, large = labels[0], labels[-1]
    for scene in scenes:
        assert (
            result.speedups[large][scene]
            >= result.speedups[small][scene] - 0.05
        )


def test_short_stack_restart_curve(benchmark):
    from repro.experiments.ablations import short_stack_study
    from repro.experiments.report import format_table

    result = benchmark.pedantic(short_stack_study, rounds=1, iterations=1)
    rows = [
        (capacity, f"{result.visit_overhead[capacity]:.2f}x",
         f"{result.restarts_per_ray[capacity]:.1f}")
        for capacity in sorted(result.visit_overhead)
    ]
    report(
        "Ablation: short stack + restart trail vs on-chip capacity "
        "(section VIII-A)",
        format_table(["stack entries", "visits vs DFS", "restarts/ray"], rows)
        + "\n\nEvery added on-chip entry removes restart replays — the "
        "mechanism by which the SMS shared-memory entries would speed up "
        "stackless schemes too, as the paper notes.",
    )
    capacities = sorted(result.visit_overhead)
    # Monotone improvement with capacity; deepest capacity near DFS cost.
    for small, large in zip(capacities, capacities[1:]):
        assert result.visit_overhead[large] <= result.visit_overhead[small] + 0.01
    assert result.restarts_per_ray[capacities[-1]] < result.restarts_per_ray[capacities[0]]
