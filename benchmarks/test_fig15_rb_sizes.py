"""Fig. 15 — primary stack size impact, with and without SMS.

Paper shape: RB_2 alone loses heavily (-28% IPC, +62% off-chip);
adding SMS recovers it past the RB_8 baseline and removes the traffic;
with RB_16 the SMS gain is small (little overflow left to absorb).
"""

from benchmarks.conftest import report
from repro.experiments import fig15_rb_sizes as fig15


def test_fig15(benchmark, cache):
    result = benchmark.pedantic(fig15.run, args=(cache,), rounds=1, iterations=1)
    report("Fig. 15: RB stack sizes +/- SMS", fig15.render(result))
    ipc = result.ipc_means
    off = result.offchip_means

    # (a) IPC shape.
    assert ipc["RB_2"] < ipc["RB_4"] < 1.0
    assert ipc["RB_2+SH_8+SK+RA"] > 1.0          # tiny stack + SMS beats baseline
    assert ipc["RB_2+SH_8+SK+RA"] - ipc["RB_2"] > 0.2
    sms_gain_at_16 = ipc["RB_16+SH_8+SK+RA"] - ipc["RB_16"]
    sms_gain_at_2 = ipc["RB_2+SH_8+SK+RA"] - ipc["RB_2"]
    assert sms_gain_at_16 < 0.5 * sms_gain_at_2  # diminishing benefit

    # (b) off-chip traffic shape.
    assert off["RB_2"] > 1.3
    assert off["RB_2+SH_8+SK+RA"] < 1.0
    assert off["RB_2"] > off["RB_4"] > 1.0
